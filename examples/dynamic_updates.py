#!/usr/bin/env python3
"""Maintaining a reachability index while the graph changes.

The paper leaves dynamic distributed graphs to future work but builds
on TOL, whose total order is designed for dynamic maintenance.  The
library's DynamicReachabilityIndex keeps the index exactly equal to
what TOL would build from scratch, after every edge insertion or
deletion — this example watches a road-closure / road-opening scenario.

Run:  python examples/dynamic_updates.py
"""

from repro import DynamicReachabilityIndex, tol_index, web_graph


def main() -> None:
    graph = web_graph(1500, seed=3, copy_prob=0.5, out_links=3)
    print(f"link graph: {graph.num_vertices} pages, {graph.num_edges} links")
    dynamic = DynamicReachabilityIndex(graph)
    print(f"initial index: {dynamic.snapshot().num_entries} entries")

    probes = [(1200, 7), (42, 977), (500, 1400)]

    def report(moment: str) -> None:
        answers = ", ".join(
            f"{s}->{t}:{'yes' if dynamic.query(s, t) else 'no'}"
            for s, t in probes
        )
        print(f"  [{moment}] {answers}")

    report("initial")

    # A burst of new links appears...
    new_links = [(7, 42), (977, 500), (1400, 1200), (3, 977)]
    for u, v in new_links:
        dynamic.insert_edge(u, v)
    report("after inserting 4 links")

    # ... then some links are taken down.
    for u, v in new_links[:2]:
        dynamic.delete_edge(u, v)
    report("after deleting 2 of them")

    # The maintained index is *exactly* what a fresh TOL build gives.
    fresh = tol_index(dynamic.current_graph(), dynamic._order)
    assert dynamic.snapshot() == fresh
    print("maintained index identical to a from-scratch TOL rebuild ✓")
    print(f"final index: {dynamic.snapshot().num_entries} entries, "
          f"{dynamic.num_edges} edges")


if __name__ == "__main__":
    main()
