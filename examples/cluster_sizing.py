#!/usr/bin/env python3
"""Capacity planning: how many nodes does an indexing job need?

The cost-model simulator makes "what if we ran this on N nodes?" a
deterministic question.  This example sweeps cluster sizes for a web
graph, prints the speedup curve (the shape of the paper's Fig. 6), and
shows where communication starts to eat the gains.

Run:  python examples/cluster_sizing.py
"""

from repro import build_index, web_graph
from repro.pregel import paper_scale_model


def main() -> None:
    graph = web_graph(3000, seed=19, copy_prob=0.55, out_links=4)
    print(f"web graph: {graph.num_vertices} pages, {graph.num_edges} links")
    cost_model = paper_scale_model(time_limit_seconds=None)

    print(f"{'nodes':>5} | {'total (s)':>10} | {'comp (s)':>9} | "
          f"{'comm (s)':>9} | {'speedup':>7}")
    base = None
    for nodes in (1, 2, 4, 8, 16, 32, 64):
        stats = build_index(
            graph, method="drl-b", num_nodes=nodes, cost_model=cost_model
        ).stats
        total = stats.simulated_seconds
        if base is None:
            base = total
        print(f"{nodes:>5} | {total:>10.5f} | "
              f"{stats.computation_seconds:>9.5f} | "
              f"{stats.communication_seconds:>9.5f} | {base / total:>7.2f}")

    print()
    print("Reading the table: computation shrinks with the node count, "
          "communication grows with it; the knee of the speedup curve "
          "is where adding nodes stops paying for itself.")


if __name__ == "__main__":
    main()
