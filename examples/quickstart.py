#!/usr/bin/env python3
"""Quickstart: build a TOL-identical reachability index with DRL_b and
answer queries without touching the graph again.

Run:  python examples/quickstart.py
"""

from repro import build_index, social_graph, tol_index
from repro.baselines import OnlineSearcher

def main() -> None:
    # A synthetic social network with cycles (follows + follow-backs).
    graph = social_graph(2000, avg_out_degree=3.0, seed=42)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # Build the index with the paper's best method, DRL_b, on a
    # simulated 32-node cluster.
    result = build_index(graph, method="drl-b", num_nodes=32)
    index = result.index
    print(f"index: {index.num_entries} label entries, "
          f"{index.size_bytes() / 1024:.1f} KiB, Δ = {index.largest_label}")
    print(f"build: {result.stats.summary()}")

    # The distributed index is byte-identical to serial TOL's.
    assert index == tol_index(graph)
    print("index is identical to TOL's ✓")

    # Query q(s, t): is there a path from s to t?
    online = OnlineSearcher(graph)  # ground truth via BFS
    for s, t in [(0, 1500), (1500, 0), (7, 1234), (1999, 3)]:
        answer = index.query(s, t)
        assert answer == online.query(s, t)
        verdict = "reaches" if answer else "cannot reach"
        print(f"  vertex {s:4d} {verdict} vertex {t}")

    # Indexes round-trip through disk.
    index.save("/tmp/repro-quickstart.index")
    from repro import ReachabilityIndex
    assert ReachabilityIndex.load("/tmp/repro-quickstart.index") == index
    print("saved, reloaded, and verified the index ✓")


if __name__ == "__main__":
    main()
