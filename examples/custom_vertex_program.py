#!/usr/bin/env python3
"""Writing your own vertex-centric program for the cluster simulator.

The labeling algorithms are built on a small Pregel-style API — this
example uses it directly: a multi-source reachability program that
tracks its frontier size with an aggregator and prints the cost
accounting afterwards.

Run:  python examples/custom_vertex_program.py
"""

from repro import Cluster, VertexProgram, kronecker_graph
from repro.pregel import paper_scale_model, sum_aggregator


class MultiSourceReach(VertexProgram):
    """Marks every vertex reachable from any of the given sources."""

    combine_duplicates = True  # duplicate marks are no-ops: combine them

    def __init__(self, graph, sources):
        self._graph = graph
        self._sources = set(sources)
        self.reached = bytearray(graph.num_vertices)
        self.frontier_sizes = []

    def aggregators(self):
        return {"frontier": sum_aggregator()}

    def compute(self, ctx, v, messages):
        if ctx.superstep == 1:
            if v not in self._sources:
                return
        elif self.reached[v]:
            return
        self.reached[v] = 1
        ctx.aggregate("frontier", 1)
        for w in ctx.graph.out_neighbors(v):
            ctx.charge()
            ctx.send(w, True)


def main() -> None:
    graph = kronecker_graph(11, edge_factor=6, seed=9)
    print(f"kronecker graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges")

    sources = [1, 5, 42]
    program = MultiSourceReach(graph, sources)
    cluster = Cluster(num_nodes=16, cost_model=paper_scale_model())
    stats = cluster.run(graph, program, trace=True)

    reached = sum(program.reached)
    print(f"reachable from {sources}: {reached} vertices "
          f"({100 * reached / graph.num_vertices:.1f}%)")
    print(f"stats: {stats.summary()}")

    print("wavefront (active vertices per super-step):")
    for row in stats.trace:
        bar = "#" * max(1, row.active_vertices // 40)
        print(f"  step {row.superstep:2d}: {row.active_vertices:5d} {bar}")


if __name__ == "__main__":
    main()
