#!/usr/bin/env python3
"""One-command reproduction of the paper's evaluation section.

By default runs a quick sample (Table VI on two datasets plus the
batch-parameter sweeps on one) so it finishes in under a minute; pass
``--full`` for every table and figure on all datasets (several
minutes), which is what ``pytest benchmarks/ --benchmark-only`` also
does with shape assertions.

Run:  python examples/reproduce_paper.py [--full]
"""

import argparse
import sys

from repro.bench import (
    run_fig5_comm_comp,
    run_fig6_speedup,
    run_fig7_scalability,
    run_fig8_batch_size,
    run_fig9_factor_k,
    run_table6,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="all datasets, all experiments")
    args = parser.parse_args(argv)

    if args.full:
        sections = [
            ("Table VI (Exps 1-3)", lambda: run_table6(num_queries=300)),
            ("Fig. 5 (Exp 4)", lambda: (run_fig5_comm_comp(),)),
            ("Fig. 6 (Exp 5)",
             lambda: tuple(run_fig6_speedup().values())),
            ("Fig. 7 (Exp 6)",
             lambda: tuple(run_fig7_scalability().values())),
            ("Fig. 8 (Exp 7)", lambda: (run_fig8_batch_size(),)),
            ("Fig. 9 (Exp 8)", lambda: (run_fig9_factor_k(),)),
        ]
    else:
        sample = ["WEBW", "TW"]
        sections = [
            ("Table VI (sample)",
             lambda: run_table6(dataset_names=sample, num_queries=200)),
            ("Fig. 8 (sample)",
             lambda: (run_fig8_batch_size(dataset_names=["TW"]),)),
            ("Fig. 9 (sample)",
             lambda: (run_fig9_factor_k(dataset_names=["TW"]),)),
        ]

    for title, runner in sections:
        print(f"=== {title} " + "=" * max(0, 60 - len(title)))
        for table in runner():
            print(table.render())
            print()
    print("Interpretation notes and paper-vs-measured comparisons: "
          "see EXPERIMENTS.md.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
