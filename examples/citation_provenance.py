#!/usr/bin/env python3
"""Citation provenance: transitive-citation queries over a paper graph.

Reachability on citation graphs answers "does paper A build
(transitively) on paper B?" — ontology-reasoning style queries from the
paper's introduction.  Citation DAGs are the worst case for label
sizes (deep reachability), which is where TOL's pruning matters most;
this example also contrasts the methods' build costs on such a graph.

Run:  python examples/citation_provenance.py
"""

from repro import build_index, citation_graph
from repro.pregel import paper_scale_model


def main() -> None:
    graph = citation_graph(3000, avg_refs=4.0, seed=13)
    print(f"citation graph: {graph.num_vertices} papers, "
          f"{graph.num_edges} citations (edges point to cited papers)")

    cost_model = paper_scale_model()
    results = {}
    for method in ("tol", "drl", "drl-b"):
        results[method] = build_index(
            graph, method=method, num_nodes=32, cost_model=cost_model
        )
        stats = results[method].stats
        print(f"  {method:6s}: {stats.simulated_seconds:.4f}s simulated, "
              f"{stats.compute_units} units")
    index = results["drl-b"].index
    assert all(r.index == index for r in results.values())
    print("all three methods produced the same index ✓")

    # -- provenance queries -------------------------------------------
    # Papers are numbered by publication time; low ids are foundational.
    recent = range(2990, 3000)
    foundational = range(0, 5)
    print("transitive-citation matrix (rows: recent, cols: foundational):")
    header = "        " + " ".join(f"p{b:03d}" for b in foundational)
    print(header)
    for a in recent:
        row = " ".join(
            "  ✓ " if index.query(a, b) else "  · " for b in foundational
        )
        print(f"  p{a} {row}")

    # -- most influential papers by label appearance -------------------
    # A paper that appears in many in-label sets is a high-order hub
    # that mediates reachability: a cheap influence proxy.
    counts: dict[int, int] = {}
    for v in graph.vertices():
        for hub in index.in_labels(v):
            counts[hub] = counts.get(hub, 0) + 1
    top = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
    print("top mediator papers (hub, #in-label appearances):")
    for hub, count in top:
        print(f"  paper {hub:4d}: mediates reachability for {count} papers")


if __name__ == "__main__":
    main()
