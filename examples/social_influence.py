#!/usr/bin/env python3
"""Social-network influence analysis with a reachability index.

Scenario (the paper's motivating workload): a social graph is sharded
across data centers; analysts ask millions of "can information posted
by u reach w?" queries.  Index-free search must traverse the
distributed graph per query; the DRL_b index answers from one machine.

Run:  python examples/social_influence.py
"""

from repro import build_index, social_graph
from repro.baselines import DistributedOnlineSearcher
from repro.workloads import random_pairs


def main() -> None:
    graph = social_graph(3000, avg_out_degree=3.0, seed=7, reciprocity=0.2)
    print(f"social graph: {graph.num_vertices} users, {graph.num_edges} follows")

    result = build_index(graph, method="drl-b", num_nodes=32)
    index = result.index
    print(f"index built in {result.stats.simulated_seconds:.4f}s simulated "
          f"({result.stats.supersteps} supersteps); "
          f"{index.size_bytes() / 1024:.1f} KiB")

    # -- influence reach of selected users ----------------------------
    users = [0, 5, 100, 2500]
    for u in users:
        reach = sum(index.query(u, w) for w in range(graph.num_vertices))
        pct = 100.0 * reach / graph.num_vertices
        print(f"  user {u:4d} can influence {reach:5d} users ({pct:.1f}%)")

    # -- query latency: index vs distributed online search ------------
    pairs = random_pairs(graph.num_vertices, 200, seed=1)
    searcher = DistributedOnlineSearcher(graph, num_nodes=32)
    online_seconds = 0.0
    for s, t in pairs:
        answer, seconds = searcher.query_with_cost(s, t)
        assert answer == index.query(s, t)
        online_seconds += seconds
    index_seconds = sum(
        (len(index.out_labels(s)) + len(index.in_labels(t)) + 1) * 2.5e-8
        for s, t in pairs
    )
    print(f"200 queries, simulated latency:")
    print(f"  distributed online search: {online_seconds:.5f}s")
    print(f"  DRL_b index (one machine): {index_seconds:.7f}s "
          f"({online_seconds / index_seconds:.0f}x faster)")

    # -- who connects two users? --------------------------------------
    s, t = 2500, 100
    if index.query(s, t):
        hop = index.hop_vertex(s, t)
        print(f"user {s} reaches user {t} via hub user {hop}")


if __name__ == "__main__":
    main()
