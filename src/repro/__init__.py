"""repro — Reachability Labeling for Distributed Graphs (ICDE 2022).

A from-scratch Python reproduction of Zhang et al.'s distributed
reachability labeling system: the serial gold standard **TOL**, the
distributed family **DRL⁻ / DRL / DRL_b / DRL_b^M** (all producing an
index *identical* to TOL's), the **BFL** competitor, and a
vertex-centric BSP cluster simulator with explicit cost accounting.

Quickstart
----------
>>> from repro import build_index, social_graph
>>> graph = social_graph(1000, seed=7)
>>> result = build_index(graph, method="drl-b", num_nodes=32)
>>> result.index.query(0, 42)  # can vertex 0 reach vertex 42?
True
"""

from repro.core import (
    CondensedIndex,
    DynamicReachabilityIndex,
    LabelingResult,
    ReachabilityIndex,
    batch_sequence,
    build_condensed_index,
    build_index,
    drl_basic_index,
    drl_batch_index,
    drl_index,
    drl_multicore_index,
    tol_index,
    tol_index_reference,
)
from repro.distributed import (
    distributed_condensation,
    distributed_scc,
    distributed_wcc,
)
from repro.errors import OutOfMemoryError, ReproError, TimeLimitExceeded
from repro.faults import FaultPlan, FaultSpecError, NodeCrash, Straggler
from repro.graph import (
    DiGraph,
    GraphBuilder,
    VertexOrder,
    citation_graph,
    degree_order,
    knowledge_graph,
    kronecker_graph,
    paper_example_graph,
    random_dag,
    random_digraph,
    social_graph,
    trimmed_bfs,
    web_graph,
)
from repro.pregel import Cluster, CostModel, RunStats, VertexProgram

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "CondensedIndex",
    "CostModel",
    "DiGraph",
    "DynamicReachabilityIndex",
    "FaultPlan",
    "FaultSpecError",
    "GraphBuilder",
    "LabelingResult",
    "NodeCrash",
    "OutOfMemoryError",
    "ReachabilityIndex",
    "ReproError",
    "RunStats",
    "Straggler",
    "TimeLimitExceeded",
    "VertexOrder",
    "VertexProgram",
    "__version__",
    "batch_sequence",
    "build_condensed_index",
    "build_index",
    "citation_graph",
    "degree_order",
    "distributed_condensation",
    "distributed_scc",
    "distributed_wcc",
    "drl_basic_index",
    "drl_batch_index",
    "drl_index",
    "drl_multicore_index",
    "knowledge_graph",
    "kronecker_graph",
    "paper_example_graph",
    "random_dag",
    "random_digraph",
    "social_graph",
    "tol_index",
    "tol_index_reference",
    "trimmed_bfs",
    "web_graph",
]
