"""The `repro serve-bench` runner: cached vs uncached serving.

Builds the index once, shards it, replays the same Zipf-skewed request
stream through a cached and an uncached pipeline, and reports both as
one :class:`~repro.bench.results.ExperimentTable` — which makes the
result (a) directly comparable ("what did caching buy?") and (b)
gate-able by the existing benchmark baseline machinery
(``--save-baseline`` / ``--check-baseline``, see
``docs/observability.md``).

Every number is simulated and therefore deterministic: the committed
``benchmarks/baselines/serve-bench.json`` must reproduce bit-for-bit
on an unchanged tree.
"""

from __future__ import annotations

from repro.bench.results import ExperimentTable
from repro.core.tol import tol_index
from repro.graph.digraph import DiGraph
from repro.graph.partition import PARTITIONER_STRATEGIES
from repro.pregel.cost_model import CostModel
from repro.serve.cache import CachingBackend, QueryCache
from repro.serve.pipeline import QueryServer, ServeReport
from repro.serve.store import ShardedIndexBackend, ShardedLabelStore
from repro.telemetry import trace_span
from repro.workloads.traffic import poisson_arrivals, uniform_arrivals, zipf_pairs

#: Columns of the serve-bench table, in print order.
COLUMNS = [
    "throughput q/s",
    "p50 s",
    "p99 s",
    "p999 s",
    "hit rate",
    "shard skew",
    "shed",
    "served",
]


def run_serve_bench(
    graph: DiGraph,
    *,
    shards: int = 8,
    partitioner: str = "hash",
    requests: int = 20000,
    rate: float = 2_000_000.0,
    arrival: str = "poisson",
    clients: int = 32,
    think_seconds: float = 0.0,
    zipf: float = 1.4,
    cache_size: int = 65536,
    negative_cache: bool = True,
    queue_depth: int = 1024,
    batch_size: int = 32,
    deadline_seconds: float | None = None,
    seed: int = 0,
    with_cache: bool = True,
    without_cache: bool = True,
    cost_model: CostModel | None = None,
) -> tuple[ExperimentTable, dict[str, ServeReport]]:
    """Run the serving benchmark; returns ``(table, reports by row)``.

    ``arrival`` is ``"poisson"`` (open loop, bursty), ``"uniform"``
    (open loop, evenly spaced), or ``"closed"`` (``clients``
    request-on-completion clients; nothing is shed because offered
    load self-limits).  ``partitioner`` is any
    :data:`~repro.graph.partition.PARTITIONER_STRATEGIES` key.
    """
    if partitioner not in PARTITIONER_STRATEGIES:
        raise ValueError(
            f"unknown partitioner {partitioner!r} "
            f"(choose from {sorted(PARTITIONER_STRATEGIES)})"
        )
    if arrival not in ("poisson", "uniform", "closed"):
        raise ValueError("arrival must be 'poisson', 'uniform', or 'closed'")
    with trace_span("serve.build", vertices=graph.num_vertices):
        index = tol_index(graph)
    pairs = zipf_pairs(graph.num_vertices, requests, seed=seed, skew=zipf)
    if arrival == "poisson":
        arrivals = poisson_arrivals(requests, rate, seed=seed + 7)
    elif arrival == "uniform":
        arrivals = uniform_arrivals(requests, rate)
    else:
        arrivals = None

    table = ExperimentTable(
        title=f"serve-bench — n={graph.num_vertices} m={graph.num_edges} "
        f"shards={shards} {arrival} workload ({requests} requests)",
        columns=list(COLUMNS),
        scientific=True,
    )
    rows = []
    if with_cache:
        rows.append(("cached", True))
    if without_cache:
        rows.append(("uncached", False))
    reports: dict[str, ServeReport] = {}
    for row, use_cache in rows:
        store = ShardedLabelStore(
            index,
            num_shards=shards,
            partitioner=PARTITIONER_STRATEGIES[partitioner](
                shards, graph.num_vertices
            ),
            cost_model=cost_model,
        )
        backend = ShardedIndexBackend(store)
        if use_cache:
            backend = CachingBackend(
                backend,
                QueryCache(cache_size, negative_caching=negative_cache),
                cost_model,
            )
        server = QueryServer(
            backend,
            queue_depth=queue_depth,
            batch_size=batch_size,
            deadline_seconds=deadline_seconds,
            cost_model=cost_model,
        )
        if arrivals is None:
            report = server.run_closed(
                pairs, clients=clients, think_seconds=think_seconds
            )
        else:
            report = server.run_open(pairs, arrivals)
        reports[row] = report
        table.set(row, "throughput q/s", report.throughput)
        table.set(row, "p50 s", report.p50_seconds)
        table.set(row, "p99 s", report.p99_seconds)
        table.set(row, "p999 s", report.p999_seconds)
        table.set(row, "hit rate", report.cache_hit_rate)
        table.set(row, "shard skew", report.shard_skew)
        table.set(row, "shed", float(report.shed))
        table.set(row, "served", float(report.served))
    return table, reports


def caching_speedup(reports: dict[str, ServeReport]) -> float | None:
    """Cached/uncached throughput ratio, when both rows were run."""
    cached = reports.get("cached")
    uncached = reports.get("uncached")
    if cached is None or uncached is None or not uncached.throughput:
        return None
    return cached.throughput / uncached.throughput
