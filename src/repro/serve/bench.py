"""The `repro serve-bench` runner: cached vs uncached serving.

Builds the index once, shards it, replays the same Zipf-skewed request
stream through a cached and an uncached pipeline, and reports both as
one :class:`~repro.bench.results.ExperimentTable` — which makes the
result (a) directly comparable ("what did caching buy?") and (b)
gate-able by the existing benchmark baseline machinery
(``--save-baseline`` / ``--check-baseline``, see
``docs/observability.md``).

Every number is simulated and therefore deterministic: the committed
``benchmarks/baselines/serve-bench.json`` must reproduce bit-for-bit
on an unchanged tree.
"""

from __future__ import annotations

from repro.bench.results import ExperimentTable
from repro.core.dynamic import DynamicReachabilityIndex
from repro.core.tol import tol_index
from repro.graph.digraph import DiGraph
from repro.graph.partition import PARTITIONER_STRATEGIES
from repro.pregel.cost_model import CostModel
from repro.serve.cache import CachingBackend, QueryCache
from repro.serve.mutation import MutationBackend
from repro.serve.pipeline import QueryServer, ServeReport
from repro.serve.replica import BoundedStalenessReplicator, ReplicatedLabelStore
from repro.serve.store import ShardedIndexBackend, ShardedLabelStore
from repro.telemetry import trace_span
from repro.workloads.traffic import poisson_arrivals, uniform_arrivals, zipf_pairs
from repro.workloads.updates import mixed_update_stream

#: Columns of the serve-bench table, in print order.
COLUMNS = [
    "throughput q/s",
    "p50 s",
    "p99 s",
    "p999 s",
    "hit rate",
    "shard skew",
    "shed",
    "served",
]

#: Columns of the mixed (read/write) serve-bench table.
MIXED_COLUMNS = [
    "read q/s",
    "update u/s",
    "p50 s",
    "p99 s",
    "write p99 s",
    "staleness s",
    "hit rate",
    "stale reads",
    "served",
    "applied",
]


def run_serve_bench(
    graph: DiGraph,
    *,
    shards: int = 8,
    partitioner: str = "hash",
    requests: int = 20000,
    rate: float = 2_000_000.0,
    arrival: str = "poisson",
    clients: int = 32,
    think_seconds: float = 0.0,
    zipf: float = 1.4,
    cache_size: int = 65536,
    negative_cache: bool = True,
    queue_depth: int = 1024,
    batch_size: int = 32,
    deadline_seconds: float | None = None,
    seed: int = 0,
    with_cache: bool = True,
    without_cache: bool = True,
    cost_model: CostModel | None = None,
) -> tuple[ExperimentTable, dict[str, ServeReport]]:
    """Run the serving benchmark; returns ``(table, reports by row)``.

    ``arrival`` is ``"poisson"`` (open loop, bursty), ``"uniform"``
    (open loop, evenly spaced), or ``"closed"`` (``clients``
    request-on-completion clients; nothing is shed because offered
    load self-limits).  ``partitioner`` is any
    :data:`~repro.graph.partition.PARTITIONER_STRATEGIES` key.
    """
    if partitioner not in PARTITIONER_STRATEGIES:
        raise ValueError(
            f"unknown partitioner {partitioner!r} "
            f"(choose from {sorted(PARTITIONER_STRATEGIES)})"
        )
    if arrival not in ("poisson", "uniform", "closed"):
        raise ValueError("arrival must be 'poisson', 'uniform', or 'closed'")
    with trace_span("serve.build", vertices=graph.num_vertices):
        index = tol_index(graph)
    pairs = zipf_pairs(graph.num_vertices, requests, seed=seed, skew=zipf)
    if arrival == "poisson":
        arrivals = poisson_arrivals(requests, rate, seed=seed + 7)
    elif arrival == "uniform":
        arrivals = uniform_arrivals(requests, rate)
    else:
        arrivals = None

    table = ExperimentTable(
        title=f"serve-bench — n={graph.num_vertices} m={graph.num_edges} "
        f"shards={shards} {arrival} workload ({requests} requests)",
        columns=list(COLUMNS),
        scientific=True,
    )
    rows = []
    if with_cache:
        rows.append(("cached", True))
    if without_cache:
        rows.append(("uncached", False))
    reports: dict[str, ServeReport] = {}
    for row, use_cache in rows:
        store = ShardedLabelStore(
            index,
            num_shards=shards,
            partitioner=PARTITIONER_STRATEGIES[partitioner](
                shards, graph.num_vertices
            ),
            cost_model=cost_model,
        )
        backend = ShardedIndexBackend(store)
        if use_cache:
            backend = CachingBackend(
                backend,
                QueryCache(cache_size, negative_caching=negative_cache),
                cost_model,
            )
        server = QueryServer(
            backend,
            queue_depth=queue_depth,
            batch_size=batch_size,
            deadline_seconds=deadline_seconds,
            cost_model=cost_model,
        )
        if arrivals is None:
            report = server.run_closed(
                pairs, clients=clients, think_seconds=think_seconds
            )
        else:
            report = server.run_open(pairs, arrivals)
        reports[row] = report
        table.set(row, "throughput q/s", report.throughput)
        table.set(row, "p50 s", report.p50_seconds)
        table.set(row, "p99 s", report.p99_seconds)
        table.set(row, "p999 s", report.p999_seconds)
        table.set(row, "hit rate", report.cache_hit_rate)
        table.set(row, "shard skew", report.shard_skew)
        table.set(row, "shed", float(report.shed))
        table.set(row, "served", float(report.served))
    return table, reports


def run_mixed_serve_bench(
    graph: DiGraph,
    *,
    shards: int = 8,
    partitioner: str = "hash",
    requests: int = 20000,
    rate: float = 2_000_000.0,
    zipf: float = 1.4,
    cache_size: int = 65536,
    negative_cache: bool = True,
    queue_depth: int = 1024,
    batch_size: int = 32,
    deadline_seconds: float | None = None,
    seed: int = 0,
    writes: int = 2000,
    write_rate: float = 200_000.0,
    insert_ratio: float = 0.6,
    node_ratio: float = 0.1,
    promote_ratio: float = 0.05,
    replicas: int = 2,
    replication_delay: float = 2e-3,
    max_lag: int = 64,
    drift_threshold: int | None = None,
    with_cache: bool = True,
    without_cache: bool = True,
    cost_model: CostModel | None = None,
) -> tuple[ExperimentTable, dict[str, ServeReport]]:
    """The mixed read/write serving benchmark (``serve-bench --mode mixed``).

    Interleaves a Zipf-skewed read stream (open loop, Poisson arrivals
    at ``rate``) with a Poisson write stream at ``write_rate`` — a
    valid-at-position mix of edge inserts/deletes, node add/deletes
    (``node_ratio``), and order upgrades (``promote_ratio``) — through
    one admission queue.  The serving stack is the full dynamic one:
    a writable leader (optionally with automatic drift-triggered
    upgrades via ``drift_threshold``), ``replicas`` bounded-staleness
    replica groups fed by the leader's op log, and the query cache
    invalidated through the leader's listener hooks.  Reports update
    throughput, the peak replication staleness window, and read
    latency under write pressure — cached and uncached rows, same
    baseline machinery as the read-only bench
    (``benchmarks/baselines/serve-bench-mixed.json``).
    """
    if partitioner not in PARTITIONER_STRATEGIES:
        raise ValueError(
            f"unknown partitioner {partitioner!r} "
            f"(choose from {sorted(PARTITIONER_STRATEGIES)})"
        )
    pairs = zipf_pairs(graph.num_vertices, requests, seed=seed, skew=zipf)
    arrivals = poisson_arrivals(requests, rate, seed=seed + 7)
    mutations = mixed_update_stream(
        graph,
        writes,
        insert_ratio=insert_ratio,
        node_ratio=node_ratio,
        promote_ratio=promote_ratio,
        seed=seed + 13,
    )
    mutation_arrivals = poisson_arrivals(writes, write_rate, seed=seed + 17)

    table = ExperimentTable(
        title=f"serve-bench mixed — n={graph.num_vertices} m={graph.num_edges} "
        f"shards={shards} x{replicas} ({requests} reads + {writes} writes)",
        columns=list(MIXED_COLUMNS),
        scientific=True,
    )
    rows = []
    if with_cache:
        rows.append(("cached", True))
    if without_cache:
        rows.append(("uncached", False))
    reports: dict[str, ServeReport] = {}
    for row, use_cache in rows:
        with trace_span("serve.build", vertices=graph.num_vertices):
            leader = DynamicReachabilityIndex(
                graph, drift_threshold=drift_threshold
            )
        replicator = BoundedStalenessReplicator(
            leader,
            num_replicas=replicas,
            delay_seconds=replication_delay,
            max_lag=max_lag,
        )
        store = ReplicatedLabelStore(
            leader,
            num_shards=shards,
            partitioner=PARTITIONER_STRATEGIES[partitioner](
                shards, graph.num_vertices
            ),
            cost_model=cost_model,
            replicas=replicas,
            replicator=replicator,
        )
        backend = ShardedIndexBackend(store)
        if use_cache:
            cache = QueryCache(cache_size, negative_caching=negative_cache)
            cache.attach(leader)
            backend = CachingBackend(backend, cache, cost_model)
        server = QueryServer(
            backend,
            queue_depth=queue_depth,
            batch_size=batch_size,
            deadline_seconds=deadline_seconds,
            cost_model=cost_model,
            on_advance=store.advance,
            mutation_backend=MutationBackend(
                leader, cost_model=cost_model, replicator=replicator
            ),
        )
        report = server.run_mixed(pairs, arrivals, mutations, mutation_arrivals)
        reports[row] = report
        table.set(row, "read q/s", report.throughput)
        table.set(row, "update u/s", report.update_throughput)
        table.set(row, "p50 s", report.p50_seconds)
        table.set(row, "p99 s", report.p99_seconds)
        table.set(row, "write p99 s", report.mutation_p99_seconds)
        table.set(row, "staleness s", report.staleness_window_seconds)
        table.set(row, "hit rate", report.cache_hit_rate)
        table.set(row, "stale reads", float(report.stale_reads))
        table.set(row, "served", float(report.served))
        table.set(row, "applied", float(report.mutations_applied))
    return table, reports


def caching_speedup(reports: dict[str, ServeReport]) -> float | None:
    """Cached/uncached throughput ratio, when both rows were run."""
    cached = reports.get("cached")
    uncached = reports.get("uncached")
    if cached is None or uncached is None or not uncached.throughput:
        return None
    return cached.throughput / uncached.throughput
