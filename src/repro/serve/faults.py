"""Serve-side fault injection: replica crashes, slowdowns, recovery.

:mod:`repro.faults` injects faults into the *build* path (cluster
nodes dying between supersteps).  This module is its serving-tier
counterpart: a :class:`ServeFaultPlan` schedules failures of **label
replicas** on the serving clock — replica ``(shard, replica)`` crashes
at simulated second ``T``, runs ``k×`` slow between two instants, or
recovers — and a :class:`ServeFaultInjector` replays the schedule into
a live :class:`~repro.serve.replica.ReplicatedLabelStore` as the
request pipeline advances its clock.

Like the build-side plan, everything is declarative and deterministic:
the same plan against the same traffic always produces the same
failovers, the same timeout counts, and the same report — which is
what makes the scenario library (:mod:`repro.scenarios`) assertable.

Spec syntax (``ServeFaultPlan.parse``), comma-separated clauses::

    crash=SHARD.REPLICA@SECONDS        replica dies at that instant
    slow=SHARD.REPLICAxFACTOR@START[:END]  runs FACTOR× slow in [START, END)
    recover=SHARD.REPLICA@SECONDS      a crashed replica rejoins

Example: ``crash=0.0@0.002,slow=1.1x4@0.001:0.003,recover=0.0@0.006``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


class ServeFaultSpecError(ReproError):
    """A textual serve-fault spec could not be parsed."""


def _check_replica(shard: int, replica: int) -> None:
    if shard < 0:
        raise ValueError("shard must be non-negative")
    if replica < 0:
        raise ValueError("replica must be non-negative")


@dataclass(frozen=True)
class ReplicaCrash:
    """Replica ``replica`` of shard ``shard`` dies at ``at_seconds``."""

    shard: int
    replica: int
    at_seconds: float

    def __post_init__(self):
        _check_replica(self.shard, self.replica)
        if self.at_seconds < 0:
            raise ValueError("crash time must be non-negative")


@dataclass(frozen=True)
class ReplicaSlow:
    """The replica serves ``factor``× slower in ``[at, until)``.

    ``until_seconds=None`` means "slow for the rest of the run".
    """

    shard: int
    replica: int
    factor: float
    at_seconds: float
    until_seconds: float | None = None

    def __post_init__(self):
        _check_replica(self.shard, self.replica)
        if self.factor < 1.0:
            raise ValueError("slowdown factor must be >= 1")
        if self.at_seconds < 0:
            raise ValueError("slowdown start must be non-negative")
        if self.until_seconds is not None and self.until_seconds <= self.at_seconds:
            raise ValueError("slowdown must end after it starts")


@dataclass(frozen=True)
class ReplicaRecovery:
    """A previously crashed replica rejoins at ``at_seconds``.

    The replica comes back *stale*: it must pass a health probe and —
    under replication — catch up on the update log before it serves
    reads again.
    """

    shard: int
    replica: int
    at_seconds: float

    def __post_init__(self):
        _check_replica(self.shard, self.replica)
        if self.at_seconds < 0:
            raise ValueError("recovery time must be non-negative")


@dataclass(frozen=True)
class ServeFaultPlan:
    """A deterministic schedule of serving-tier replica faults."""

    crashes: tuple[ReplicaCrash, ...] = ()
    slowdowns: tuple[ReplicaSlow, ...] = ()
    recoveries: tuple[ReplicaRecovery, ...] = ()

    def __post_init__(self):
        crashed: dict[tuple[int, int], float] = {}
        for crash in self.crashes:
            key = (crash.shard, crash.replica)
            if key in crashed:
                raise ValueError(
                    f"replica {crash.shard}.{crash.replica} crashes more "
                    "than once"
                )
            crashed[key] = crash.at_seconds
        seen_recoveries: set[tuple[int, int]] = set()
        for recovery in self.recoveries:
            key = (recovery.shard, recovery.replica)
            if key not in crashed:
                raise ValueError(
                    f"replica {recovery.shard}.{recovery.replica} recovers "
                    "but never crashes"
                )
            if recovery.at_seconds <= crashed[key]:
                raise ValueError(
                    f"replica {recovery.shard}.{recovery.replica} recovers "
                    "before it crashes"
                )
            if key in seen_recoveries:
                raise ValueError(
                    f"replica {recovery.shard}.{recovery.replica} recovers "
                    "more than once"
                )
            seen_recoveries.add(key)

    # ------------------------------------------------------------------
    @property
    def empty(self) -> bool:
        """True when the plan schedules nothing."""
        return not (self.crashes or self.slowdowns or self.recoveries)

    def validate_for(self, num_shards: int, replicas: int) -> None:
        """Reject plans naming replicas outside the store's layout."""
        for event in (*self.crashes, *self.slowdowns, *self.recoveries):
            if event.shard >= num_shards:
                raise ValueError(
                    f"fault plan names shard {event.shard} but the store "
                    f"has only {num_shards} shards"
                )
            if event.replica >= replicas:
                raise ValueError(
                    f"fault plan names replica {event.replica} but shards "
                    f"have only {replicas} replicas"
                )

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "ServeFaultPlan":
        """Parse the compact textual spec (see the module docstring).

        Raises :class:`ServeFaultSpecError` on malformed input.
        """
        crashes: list[ReplicaCrash] = []
        slowdowns: list[ReplicaSlow] = []
        recoveries: list[ReplicaRecovery] = []
        for clause in spec.split(","):
            clause = clause.strip()
            if not clause:
                continue
            key, sep, value = clause.partition("=")
            if not sep:
                raise ServeFaultSpecError(
                    f"bad serve-fault clause {clause!r}: expected key=value"
                )
            try:
                if key == "crash":
                    target, _, at = value.partition("@")
                    shard, replica = _parse_target(target)
                    crashes.append(ReplicaCrash(shard, replica, float(at)))
                elif key == "slow":
                    target, sep2, when = value.partition("@")
                    if not sep2:
                        raise ValueError("expected SHARD.REPLICAxFACTOR@START")
                    head, sep3, factor = target.partition("x")
                    if not sep3:
                        raise ValueError("expected SHARD.REPLICAxFACTOR")
                    shard, replica = _parse_target(head)
                    start, sep4, until = when.partition(":")
                    slowdowns.append(
                        ReplicaSlow(
                            shard,
                            replica,
                            float(factor),
                            float(start),
                            float(until) if sep4 else None,
                        )
                    )
                elif key == "recover":
                    target, _, at = value.partition("@")
                    shard, replica = _parse_target(target)
                    recoveries.append(ReplicaRecovery(shard, replica, float(at)))
                else:
                    raise ServeFaultSpecError(
                        f"unknown serve-fault clause {key!r} (expected "
                        "crash, slow, or recover)"
                    )
            except ServeFaultSpecError:
                raise
            except ValueError as exc:
                raise ServeFaultSpecError(
                    f"bad serve-fault clause {clause!r}: {exc}"
                ) from exc
        try:
            return cls(tuple(crashes), tuple(slowdowns), tuple(recoveries))
        except ValueError as exc:
            raise ServeFaultSpecError(str(exc)) from exc

    def to_spec(self) -> str:
        """The compact textual spec; inverse of :meth:`parse`."""
        clauses = [
            f"crash={c.shard}.{c.replica}@{c.at_seconds:g}" for c in self.crashes
        ]
        for s in self.slowdowns:
            clause = f"slow={s.shard}.{s.replica}x{s.factor:g}@{s.at_seconds:g}"
            if s.until_seconds is not None:
                clause += f":{s.until_seconds:g}"
            clauses.append(clause)
        clauses += [
            f"recover={r.shard}.{r.replica}@{r.at_seconds:g}"
            for r in self.recoveries
        ]
        return ",".join(clauses)

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = [
            f"crash replica {c.shard}.{c.replica} @ {c.at_seconds:g}s"
            for c in self.crashes
        ]
        parts += [
            f"slow replica {s.shard}.{s.replica} x{s.factor:g} @ "
            f"{s.at_seconds:g}s"
            + (f"-{s.until_seconds:g}s" if s.until_seconds is not None else "")
            for s in self.slowdowns
        ]
        parts += [
            f"recover replica {r.shard}.{r.replica} @ {r.at_seconds:g}s"
            for r in self.recoveries
        ]
        return "; ".join(parts) if parts else "no serve faults"


def _parse_target(text: str) -> tuple[int, int]:
    """``SHARD.REPLICA`` → ``(shard, replica)``."""
    shard, sep, replica = text.partition(".")
    if not sep:
        raise ValueError("expected SHARD.REPLICA")
    return int(shard), int(replica)


class ServeFaultInjector:
    """Replays a :class:`ServeFaultPlan` into a replicated store.

    The request pipeline calls :meth:`advance` with the simulated
    clock; every event whose instant has passed is applied to the
    store, in schedule order, exactly once.  Slowdowns with an end
    instant schedule their own reset event.
    """

    def __init__(self, plan: ServeFaultPlan, store):
        plan.validate_for(store.num_shards, store.replicas_per_shard)
        self.plan = plan
        self._store = store
        events: list[tuple[float, int, str, tuple]] = []
        order = 0
        for crash in plan.crashes:
            events.append(
                (crash.at_seconds, order, "crash", (crash.shard, crash.replica))
            )
            order += 1
        for slow in plan.slowdowns:
            events.append(
                (
                    slow.at_seconds,
                    order,
                    "slow",
                    (slow.shard, slow.replica, slow.factor),
                )
            )
            order += 1
            if slow.until_seconds is not None:
                events.append(
                    (
                        slow.until_seconds,
                        order,
                        "slow",
                        (slow.shard, slow.replica, 1.0),
                    )
                )
                order += 1
        for recovery in plan.recoveries:
            events.append(
                (
                    recovery.at_seconds,
                    order,
                    "recover",
                    (recovery.shard, recovery.replica),
                )
            )
            order += 1
        self._events = sorted(events)
        self._next = 0

    @property
    def pending(self) -> int:
        """Events not yet fired."""
        return len(self._events) - self._next

    def advance(self, clock: float) -> int:
        """Fire every event due by ``clock``; returns how many fired.

        Also drives the store's own :meth:`advance` (health probes and
        replication delivery), so a pipeline only needs this one hook.
        """
        fired = 0
        while self._next < len(self._events) and self._events[self._next][0] <= clock:
            at, _, kind, payload = self._events[self._next]
            self._next += 1
            fired += 1
            if kind == "crash":
                self._store.crash_replica(*payload, at=at)
            elif kind == "slow":
                self._store.set_replica_slowdown(*payload, at=at)
            else:
                self._store.recover_replica(*payload, at=at)
        self._store.advance(clock)
        return fired
