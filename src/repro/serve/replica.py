"""Replicated label serving: N copies per shard, failover, staleness.

One copy of every shard (:class:`~repro.serve.store.ShardedLabelStore`)
means one crashed process takes a slice of the key space down with it.
This module keeps ``replicas`` full copies of the sharded index — a
**replica group** ``r`` is copy ``r`` of every shard — and routes each
read to one group under a configurable fan-out policy:

``primary``
    Always the group's current primary (lowest-id healthy group);
    cheapest, no read amplification.
``round-robin``
    Rotate across healthy groups; spreads load evenly.
``hedged``
    Fastest-of-two: race two healthy groups, take the faster answer,
    charge the winner's service time plus one hedge dispatch
    (``t_hop``).  Cuts tail latency when one replica runs slow.

Failure handling is deliberately boring and explicit: a read routed to
a dead-but-not-yet-suspected replica pays a timeout plus exponential
backoff and tries the next candidate; after
:attr:`HealthPolicy.failure_threshold` consecutive failures the
replica is *suspected* (skipped at zero cost) and, if it was the
primary, the shard **fails over** — visible as a ``serve.failover``
telemetry event and in :meth:`ReplicatedLabelStore.replica_stats`.
Background health probes (driven by :meth:`ReplicatedLabelStore.advance`
as the pipeline clock moves) suspect dead replicas that see no read
traffic and un-suspect recovered ones.

Bounded-staleness replication
-----------------------------
With a :class:`BoundedStalenessReplicator`, writes go to the *leader*
:class:`~repro.core.dynamic.DynamicReachabilityIndex` (replica group 0
serves reads straight from it) and follower groups apply the versioned
update log after a delivery delay, so a follower may serve an index
that is a few updates behind.  Correctness survives because
reachability under single-edge updates is **monotone**: an insert can
only flip answers ``False → True`` and a delete only ``True → False``.
At read time the store checks the follower's pending (undelivered)
ops; if the stale answer is on the side an in-flight op could flip —
``False`` with pending inserts, or ``True`` with pending deletes — the
read is **confirmed** against the leader (one extra hop, counted in
``confirmed_reads``).  Every other stale read is provably equal to the
leader's current answer.  Hence the scenario library's flagship
assertion: *zero incorrect answers, even during failover under a write
burst*.  A follower whose lag exceeds :attr:`BoundedStalenessReplicator.max_lag`
is force-caught-up before serving (charged per op), which bounds how
much confirmation traffic a slow follower can generate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ShardOutOfMemoryError, ShardUnavailableError
from repro.graph.partition import HashPartitioner, Partitioner
from repro.observe import tracing
from repro.pregel.cost_model import DEFAULT_COST_MODEL, CostModel
from repro.telemetry import trace_event

#: Read fan-out policies accepted by :class:`ReplicatedLabelStore`.
READ_POLICIES = ("primary", "round-robin", "hedged")


@dataclass(frozen=True)
class HealthPolicy:
    """Timeout, backoff, and suspicion thresholds for replica reads.

    Defaults are scaled to the simulated serving clock (a 20k-request
    bench run spans ~10 ms of simulated time): a timed-out read costs
    ~20 µs — two orders of magnitude above a local label merge — and
    two consecutive failures mark the replica suspected.
    """

    timeout_seconds: float = 5e-5
    backoff_seconds: float = 2e-5
    failure_threshold: int = 2

    def __post_init__(self):
        if self.timeout_seconds <= 0:
            raise ValueError("timeout must be positive")
        if self.backoff_seconds < 0:
            raise ValueError("backoff must be non-negative")
        if self.failure_threshold < 1:
            raise ValueError("failure threshold must be >= 1")

    def penalty_seconds(self, attempt: int) -> float:
        """Cost of the ``attempt``-th failed read in one fetch (0-based)."""
        return self.timeout_seconds + self.backoff_seconds * (2 ** attempt)


class ReplicaState:
    """Health and accounting for one replica of one shard."""

    __slots__ = (
        "shard_id", "replica_id", "alive", "suspected", "slowdown",
        "requests", "timeouts", "hedges_won", "probe_failures",
    )

    def __init__(self, shard_id: int, replica_id: int):
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.alive = True
        self.suspected = False
        self.slowdown = 1.0
        self.requests = 0
        self.timeouts = 0
        self.hedges_won = 0
        self.probe_failures = 0

    @property
    def serving(self) -> bool:
        """Routable: alive and not under suspicion."""
        return self.alive and not self.suspected


class ReplicaSet:
    """One shard's replicas plus its current primary."""

    __slots__ = ("shard_id", "replicas", "primary", "failovers", "_rr")

    def __init__(self, shard_id: int, num_replicas: int):
        self.shard_id = shard_id
        self.replicas = [ReplicaState(shard_id, r) for r in range(num_replicas)]
        self.primary = 0
        self.failovers = 0
        self._rr = 0

    def candidates(self, policy: str) -> list[int]:
        """Replica ids to try, in order, excluding suspected replicas.

        Dead-but-unsuspected replicas stay in the list on purpose: the
        caller pays their timeout, which is how suspicion builds.
        """
        ids = [r.replica_id for r in self.replicas if not r.suspected]
        if not ids:
            return []
        if policy == "primary":
            ids.sort(key=lambda r: (r != self.primary, r))
        else:  # round-robin and hedged both rotate for balance
            start = self._rr % len(ids)
            self._rr += 1
            ids = ids[start:] + ids[:start]
        return ids

    def maybe_failover(self, clock: float) -> dict | None:
        """Re-elect the primary if the current one stopped serving.

        Returns the failover event (also needed by the store for
        telemetry), or None when the primary is fine or no healthy
        replica remains.
        """
        if self.replicas[self.primary].serving:
            return None
        healthy = [r.replica_id for r in self.replicas if r.serving]
        if not healthy:
            return None
        old = self.primary
        self.primary = healthy[0]
        self.failovers += 1
        return {
            "event": "serve.failover",
            "at": clock,
            "shard": self.shard_id,
            "from_replica": old,
            "to_replica": self.primary,
        }


class BoundedStalenessReplicator:
    """Versioned update log between a leader index and follower copies.

    Parameters
    ----------
    leader:
        The authoritative :class:`~repro.core.dynamic.DynamicReachabilityIndex`.
        Writes must go through it; the replicator subscribes to its
        update hook, so any applied update is logged automatically.
        Replica group 0 serves reads straight from the leader.
    num_replicas:
        Total replica groups, including the leader's group 0.
    delay_seconds:
        Delivery delay: an update issued at simulated second ``T``
        becomes visible to followers at ``T + delay_seconds``.
    max_lag:
        A follower more than this many ops behind is caught up
        *before* serving a read (charged ``apply_seconds_per_op`` per
        op) — the bounded-staleness guarantee.
    apply_seconds_per_op:
        Simulated cost of applying one logged op during a forced
        catch-up.

    The replicator does not own a clock; callers set :attr:`clock`
    (via :meth:`note_time`) before applying leader updates so each op's
    issue time is recorded on the serving timeline.
    """

    def __init__(
        self,
        leader,
        num_replicas: int,
        delay_seconds: float = 2e-3,
        max_lag: int = 64,
        apply_seconds_per_op: float = 1e-5,
    ):
        if num_replicas < 1:
            raise ValueError("need at least one replica group")
        if delay_seconds < 0:
            raise ValueError("delivery delay must be non-negative")
        if max_lag < 1:
            raise ValueError("max_lag must be >= 1")
        self.leader = leader
        self.num_replicas = num_replicas
        self.delay_seconds = delay_seconds
        self.max_lag = max_lag
        self.apply_seconds_per_op = apply_seconds_per_op
        self.clock = 0.0
        #: (op, u, v, issued_at) per applied leader update, in order.
        self.log: list[tuple[str, int, int, float]] = []
        self.forced_catchups = 0
        self.catchup_ops = 0
        # Follower copies share the leader's fixed vertex order, so a
        # fully caught-up follower is bit-identical to the leader.
        from repro.core.dynamic import DynamicReachabilityIndex

        base = leader.current_graph()
        self._followers: list = [None]  # group 0 reads the leader
        self._applied = [0]
        for _ in range(1, num_replicas):
            self._followers.append(
                DynamicReachabilityIndex(base, order=leader.order)
            )
            self._applied.append(0)
        leader.subscribe(self._on_update)

    # ------------------------------------------------------------------
    def _on_update(self, op: str, u: int, v: int) -> None:
        self.log.append((op, u, v, self.clock))

    @staticmethod
    def _apply_op(follower, op: str, u: int, v: int) -> None:
        """Replay one logged leader op on a follower index.

        ``add_node`` needs no payload: ids are assigned densely from a
        shared starting point, so replaying ops in log order yields the
        same ids on every follower.  ``promote`` replays the concrete
        rank the leader applied (the leader resolves drift-triggered
        promotions before logging), keeping follower orders identical.
        """
        if op == "insert":
            follower.insert_edge(u, v)
        elif op == "delete":
            follower.delete_edge(u, v)
        elif op == "add_node":
            follower.add_node()
        elif op == "delete_node":
            follower.delete_node(u)
        elif op == "promote":
            follower.promote(u, v)
        else:
            raise ValueError(f"unknown update op {op!r}")

    def note_time(self, clock: float) -> None:
        """Stamp subsequent leader updates with this issue time."""
        self.clock = clock

    @property
    def version(self) -> int:
        """Ops applied to the leader so far."""
        return len(self.log)

    def lag(self, replica: int) -> int:
        """How many logged ops group ``replica`` has not applied yet."""
        if replica == 0:
            return 0
        return len(self.log) - self._applied[replica]

    def max_follower_lag(self) -> int:
        """The laggiest group's lag (0 with no followers)."""
        return max((self.lag(r) for r in range(1, self.num_replicas)), default=0)

    def pending_kinds(self, replica: int) -> tuple[bool, bool]:
        """``(has_pending_insert, has_pending_delete)`` for the group."""
        inserts = deletes = False
        for op, _, _, _ in self.log[self._applied[replica]:]:
            if op == "insert":
                inserts = True
            elif op in ("delete", "delete_node"):
                deletes = True
            # add_node / promote never change an answer: neutral.
            if inserts and deletes:
                break
        return inserts, deletes

    def staleness_window(self, clock: float) -> float:
        """Age of the oldest leader op some follower has yet to apply.

        0.0 when every follower is caught up — the bound the serving
        layer reports as ``staleness_window_seconds``.
        """
        oldest = None
        for r in range(1, self.num_replicas):
            i = self._applied[r]
            if i < len(self.log):
                issued = self.log[i][3]
                if oldest is None or issued < oldest:
                    oldest = issued
        return 0.0 if oldest is None else max(0.0, clock - oldest)

    def view(self, replica: int):
        """The index group ``replica`` serves reads from."""
        return self.leader if replica == 0 else self._followers[replica]

    # ------------------------------------------------------------------
    def advance(self, clock: float, paused: set[int] | None = None) -> int:
        """Deliver every op due by ``clock`` to unpaused follower groups.

        ``paused`` groups (e.g. a group with a crashed member, which
        cannot atomically install updates) keep accumulating lag;
        :meth:`catch_up` settles the debt when they rejoin.  Returns
        the number of op applications performed.
        """
        applied = 0
        for r in range(1, self.num_replicas):
            if paused and r in paused:
                continue
            follower = self._followers[r]
            i = self._applied[r]
            while i < len(self.log) and self.log[i][3] + self.delay_seconds <= clock:
                op, u, v, _ = self.log[i]
                self._apply_op(follower, op, u, v)
                i += 1
                applied += 1
            self._applied[r] = i
        return applied

    def catch_up(self, replica: int) -> int:
        """Apply every pending op to the group now; returns the count."""
        if replica == 0:
            return 0
        follower = self._followers[replica]
        i = self._applied[replica]
        count = 0
        while i < len(self.log):
            op, u, v, _ = self.log[i]
            self._apply_op(follower, op, u, v)
            i += 1
            count += 1
        self._applied[replica] = i
        self.catchup_ops += count
        return count


class ReplicatedLabelStore:
    """A sharded label store with ``replicas`` copies of every shard.

    Drop-in for :class:`~repro.serve.store.ShardedLabelStore` wherever
    reads flow (``fetch`` / ``shard_loads`` / ``load_skew`` /
    ``memory_bytes``), so :class:`~repro.serve.store.ShardedIndexBackend`,
    the cache, and the pipeline all compose unchanged.  On top of that
    it owns replica health, read routing, failover, and — when a
    :class:`BoundedStalenessReplicator` is attached — the staleness
    guard described in the module docstring.

    Parameters
    ----------
    index:
        The index to serve.  With a replicator this must be the
        replicator's leader.
    num_shards, partitioner, cost_model:
        As for :class:`~repro.serve.store.ShardedLabelStore`.
    replicas:
        Copies of every shard (>= 1).  With a replicator the two
        replica counts must agree.
    policy:
        One of :data:`READ_POLICIES`.
    health:
        Timeout/backoff/suspicion knobs (:class:`HealthPolicy`).
    replicator:
        Optional :class:`BoundedStalenessReplicator` for serving a
        dynamic index through lagging follower groups.
    """

    def __init__(
        self,
        index,
        num_shards: int = 8,
        partitioner: Partitioner | None = None,
        cost_model: CostModel | None = None,
        replicas: int = 2,
        policy: str = "primary",
        health: HealthPolicy | None = None,
        replicator: BoundedStalenessReplicator | None = None,
    ):
        if replicas < 1:
            raise ValueError("need at least one replica per shard")
        if policy not in READ_POLICIES:
            raise ValueError(
                f"unknown read policy {policy!r} (expected one of "
                f"{', '.join(READ_POLICIES)})"
            )
        if replicator is not None:
            if replicator.num_replicas != replicas:
                raise ValueError(
                    f"replicator has {replicator.num_replicas} replica "
                    f"groups but the store wants {replicas}"
                )
            if replicator.leader is not index:
                raise ValueError("the store must serve the replicator's leader")
        if partitioner is None:
            partitioner = HashPartitioner(num_shards)
        if partitioner.num_nodes != num_shards:
            raise ValueError(
                f"partitioner maps onto {partitioner.num_nodes} shards, "
                f"expected {num_shards}"
            )
        self._index = index
        self.num_shards = num_shards
        self.replicas_per_shard = replicas
        self.policy = policy
        self.health = health or HealthPolicy()
        self.replicator = replicator
        self._partitioner = partitioner
        self._cost = cost_model or DEFAULT_COST_MODEL
        self.clock = 0.0
        #: Applied fault/failover/recovery events, oldest first.
        self.events: list[dict] = []
        self.stale_reads = 0
        self.confirmed_reads = 0
        self._listeners: list = []
        self._last_lag_sample = 0

        n = index.num_vertices
        self._shard_of = [partitioner.node_of(v) for v in range(n)]
        self._shard_vertices = [0] * num_shards
        self._shard_entries = [0] * num_shards
        for v in range(n):
            home = self._shard_of[v]
            self._shard_vertices[home] += 1
            self._shard_entries[home] += len(self._labels(index, v, out=True)) + len(
                self._labels(index, v, out=False)
            )
        budget = self._cost.node_memory_bytes
        for shard_id in range(num_shards):
            attempted = self._shard_entries[shard_id] * self._cost.entry_bytes
            if attempted > budget:
                raise ShardOutOfMemoryError(
                    shard_id,
                    attempted,
                    budget,
                    vertices=self._shard_vertices[shard_id],
                    entries=self._shard_entries[shard_id],
                )
        self.replica_sets = [ReplicaSet(i, replicas) for i in range(num_shards)]

    # ------------------------------------------------------------------
    # Label access across index flavours (list-style or callable)
    # ------------------------------------------------------------------
    @staticmethod
    def _labels(index, v: int, out: bool):
        labels = index.out_labels if out else index.in_labels
        return labels[v] if isinstance(labels, list) else labels(v)

    def _view(self, replica: int):
        if self.replicator is None:
            return self._index
        return self.replicator.view(replica)

    # ------------------------------------------------------------------
    # ShardedLabelStore surface
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Vertices covered by the store."""
        return self._index.num_vertices

    def shard_of(self, v: int) -> int:
        """The shard owning vertex ``v``'s labels."""
        return self._shard_of[v]

    def memory_bytes(self) -> list[int]:
        """Per-shard simulated label bytes (one copy)."""
        entry_bytes = self._cost.entry_bytes
        return [entries * entry_bytes for entries in self._shard_entries]

    def total_memory_bytes(self) -> int:
        """All copies: per-shard bytes summed, times the replica count."""
        return sum(self.memory_bytes()) * self.replicas_per_shard

    def shard_loads(self) -> list[int]:
        """Per-shard request counts, summed across the shard's replicas."""
        return [
            sum(r.requests for r in rs.replicas) for rs in self.replica_sets
        ]

    def load_skew(self) -> float:
        """Max/mean of per-shard request counts (1.0 = perfectly even)."""
        loads = self.shard_loads()
        total = sum(loads)
        if not total:
            return 1.0
        return max(loads) / (total / len(loads))

    # ------------------------------------------------------------------
    # Fault hooks (driven by ServeFaultInjector or called directly)
    # ------------------------------------------------------------------
    def crash_replica(self, shard: int, replica: int, at: float = 0.0) -> None:
        """Kill one replica; detection happens via timeouts and probes."""
        state = self.replica_sets[shard].replicas[replica]
        state.alive = False
        self._record("serve.replica_crash", at, shard=shard, replica=replica)

    def recover_replica(self, shard: int, replica: int, at: float = 0.0) -> None:
        """Revive a replica; it rejoins once a health probe clears it."""
        state = self.replica_sets[shard].replicas[replica]
        state.alive = True
        state.probe_failures = 0
        self._record("serve.replica_recover", at, shard=shard, replica=replica)

    def set_replica_slowdown(
        self, shard: int, replica: int, factor: float, at: float = 0.0
    ) -> None:
        """Scale one replica's service time (1.0 restores full speed)."""
        self.replica_sets[shard].replicas[replica].slowdown = factor
        self._record(
            "serve.replica_slow", at, shard=shard, replica=replica, factor=factor
        )

    def subscribe(self, listener) -> None:
        """Call ``listener(event_dict)`` for every store event (plus
        ``replica.lag`` samples, which skip the event log) — this is
        how a :class:`~repro.observe.incident.recorder.FlightRecorder`
        taps the store."""
        self._listeners.append(listener)

    def _notify(self, event: dict) -> None:
        for listener in self._listeners:
            listener(event)

    def _record(self, name: str, at: float, **attrs) -> None:
        event = {"event": name, "at": at, **attrs}
        self.events.append(event)
        trace_event(name, **{k: v for k, v in event.items() if k != "event"})
        self._notify(event)

    def _suspect(self, state: ReplicaState) -> None:
        """Mark a replica suspected and fail over if it was primary."""
        state.suspected = True
        self._record(
            "serve.replica_suspected",
            self.clock,
            shard=state.shard_id,
            replica=state.replica_id,
        )
        failover = self.replica_sets[state.shard_id].maybe_failover(self.clock)
        if failover is not None:
            # Stamp the update-log version so the failover can be
            # ordered against replicator deliveries (the event already
            # carries its simulated instant in "at").
            failover["version"] = (
                self.replicator.version if self.replicator is not None else 0
            )
            self.events.append(failover)
            trace_event(
                "serve.failover",
                **{k: v for k, v in failover.items() if k != "event"},
            )
            self._notify(failover)

    # ------------------------------------------------------------------
    # Background maintenance (pipeline clock hook)
    # ------------------------------------------------------------------
    def advance(self, clock: float) -> None:
        """Move the store to simulated second ``clock``.

        Delivers replication (groups with a dead member pause — they
        cannot atomically install updates — and catch up on rejoin)
        and runs one health-probe sweep: dead unsuspected replicas
        accrue probe failures toward suspicion; revived suspected
        replicas are cleared, caught up, and put back in rotation.
        """
        self.clock = clock
        if self.replicator is not None:
            paused = {
                r
                for r in range(1, self.replicas_per_shard)
                if any(not rs.replicas[r].alive for rs in self.replica_sets)
            }
            self.replicator.advance(clock, paused)
            self._sample_lag(clock)
        for rs in self.replica_sets:
            for state in rs.replicas:
                if not state.alive and not state.suspected:
                    state.probe_failures += 1
                    if state.probe_failures >= self.health.failure_threshold:
                        self._suspect(state)
                elif state.alive and state.suspected:
                    state.suspected = False
                    state.probe_failures = 0
                    if self.replicator is not None:
                        self.replicator.catch_up(state.replica_id)
                    self._record(
                        "serve.replica_up",
                        clock,
                        shard=state.shard_id,
                        replica=state.replica_id,
                    )

    def _sample_lag(self, clock: float) -> None:
        """Emit a ``replica.lag`` sample when the worst lag changes.

        Samples go to telemetry and subscribed listeners (the flight
        recorder, the dashboard via the trace) but *not* into
        :attr:`events` — scenario reports list lifecycle events only.
        """
        rep = self.replicator
        lags = {
            r: rep.lag(r) for r in range(1, self.replicas_per_shard)
        }
        peak = max(lags.values(), default=0)
        if peak == self._last_lag_sample:
            return
        self._last_lag_sample = peak
        event = {
            "event": "replica.lag",
            "at": clock,
            "lag": peak,
            "groups": {str(r): lag for r, lag in lags.items() if lag},
            "version": rep.version,
        }
        trace_event(
            "replica.lag", **{k: v for k, v in event.items() if k != "event"}
        )
        self._notify(event)

    # ------------------------------------------------------------------
    # The read path
    # ------------------------------------------------------------------
    def fetch(self, s: int, t: int) -> tuple[bool, float]:
        """Answer ``q(s, t)`` and return the simulated seconds it cost.

        Routes to a replica group per the read policy; pays timeouts
        for dead-but-unsuspected replicas encountered on the way (and
        builds suspicion); raises
        :class:`~repro.errors.ShardUnavailableError` when no group can
        serve the home shard.
        """
        home = self._shard_of[s]
        target = self._shard_of[t]
        seconds = 0.0
        attempt = 0
        chosen: list[int] = []
        want = 2 if self.policy == "hedged" else 1
        for r in self.replica_sets[home].candidates(self.policy):
            ok, penalty = self._probe_group(r, home, target, attempt)
            seconds += penalty
            if penalty:
                attempt += 1
            if ok:
                chosen.append(r)
                if len(chosen) == want:
                    break
        if not chosen:
            error = ShardUnavailableError(home, self.replicas_per_shard)
            # The pipeline charges the timeouts this request burned
            # even though it got no answer.
            error.seconds = seconds
            raise error

        if len(chosen) == 2:
            # Hedged: race both, keep the faster answer, charge one
            # extra dispatch for the hedge itself.
            services = [self._service(r, s, t, home, target) for r in chosen]
            winner_idx = min(range(2), key=lambda i: services[i][1])
            winner = chosen[winner_idx]
            answer, service = services[winner_idx]
            seconds += service + self._cost.t_hop
            self.replica_sets[home].replicas[winner].hedges_won += 1
        else:
            winner = chosen[0]
            answer, service = self._service(winner, s, t, home, target)
            seconds += service

        answer, guard_seconds, lag = self._guard(winner, s, t, answer)
        seconds += guard_seconds
        if tracing.ACTIVE is not None:
            view = self._view(winner)
            attrs = {
                "home": home,
                "replica": winner,
                "entries": len(self._labels(view, s, out=True))
                + len(self._labels(view, t, out=False)),
            }
            if target != home:
                attrs["remote"] = target
            if lag:
                attrs["lag"] = lag
            if len(chosen) == 2:
                attrs["hedge_won"] = True
            tracing.ACTIVE.add_stage("store", seconds - guard_seconds, **attrs)
        return answer, seconds

    def _probe_group(
        self, r: int, home: int, target: int, attempt: int
    ) -> tuple[bool, float]:
        """Can group ``r`` serve ``home`` (and ``target``)?  May charge
        a timeout penalty and build suspicion on dead members."""
        for shard in (home,) if target == home else (home, target):
            state = self.replica_sets[shard].replicas[r]
            if state.suspected:
                return False, 0.0
            if not state.alive:
                state.timeouts += 1
                state.probe_failures += 1
                if state.probe_failures >= self.health.failure_threshold:
                    self._suspect(state)
                return False, self.health.penalty_seconds(attempt)
        return True, 0.0

    def _service(
        self, r: int, s: int, t: int, home: int, target: int
    ) -> tuple[bool, float]:
        """Serve the read from group ``r``; returns (answer, seconds)."""
        cost = self._cost
        view = self._view(r)
        out_labels = self._labels(view, s, out=True)
        in_labels = self._labels(view, t, out=False)
        member = self.replica_sets[home].replicas[r]
        member.requests += 1
        seconds = (len(out_labels) + len(in_labels) + 1) * cost.t_op
        seconds *= member.slowdown
        if target != home:
            remote = self.replica_sets[target].replicas[r]
            remote.requests += 1
            seconds += (
                cost.t_hop + len(in_labels) * cost.entry_bytes * cost.t_byte
            ) * remote.slowdown
        return view.query(s, t), seconds

    def _guard(
        self, r: int, s: int, t: int, answer: bool
    ) -> tuple[bool, float, int]:
        """Apply the monotonicity staleness guard to a follower read.

        Returns (final answer, extra seconds, the lag observed).  The
        final answer always equals the leader's current answer: either
        the pending ops could not flip it (monotonicity), or we
        confirmed with the leader directly.
        """
        rep = self.replicator
        if rep is None or r == 0:
            return answer, 0.0, 0
        seconds = 0.0
        lag = rep.lag(r)
        if lag > rep.max_lag:
            applied = rep.catch_up(r)
            rep.forced_catchups += 1
            seconds += applied * rep.apply_seconds_per_op
            view = rep.view(r)
            answer = view.query(s, t)
            if tracing.ACTIVE is not None:
                tracing.ACTIVE.add_stage(
                    "catchup", seconds, replica=r, ops=applied
                )
            return answer, seconds, lag
        if lag:
            pending_insert, pending_delete = rep.pending_kinds(r)
            if (not answer and pending_insert) or (answer and pending_delete):
                # The stale answer sits on the flippable side: confirm
                # against the leader (one hop + a leader-side merge).
                cost = self._cost
                leader = rep.leader
                merge = (
                    len(self._labels(leader, s, out=True))
                    + len(self._labels(leader, t, out=False))
                    + 1
                ) * cost.t_op
                confirm_seconds = cost.t_hop + merge
                seconds += confirm_seconds
                answer = leader.query(s, t)
                self.confirmed_reads += 1
                if tracing.ACTIVE is not None:
                    tracing.ACTIVE.add_stage(
                        "confirm", confirm_seconds, replica=r, lag=lag
                    )
            else:
                self.stale_reads += 1
        return answer, seconds, lag

    # ------------------------------------------------------------------
    def replica_stats(self) -> dict:
        """Aggregate replica/failover/staleness counters for reports."""
        return {
            "failovers": sum(rs.failovers for rs in self.replica_sets),
            "replica_timeouts": sum(
                r.timeouts for rs in self.replica_sets for r in rs.replicas
            ),
            "hedges_won": sum(
                r.hedges_won for rs in self.replica_sets for r in rs.replicas
            ),
            "stale_reads": self.stale_reads,
            "confirmed_reads": self.confirmed_reads,
            "forced_catchups": (
                self.replicator.forced_catchups if self.replicator else 0
            ),
            "replication_lag": (
                self.replicator.max_follower_lag() if self.replicator else 0
            ),
            "replicas_down": sum(
                1 for rs in self.replica_sets for r in rs.replicas if not r.alive
            ),
        }
