"""The request pipeline: admission control, batching, deadlines.

A batch evaluator (:class:`~repro.query.service.QueryService`) answers
every query it is handed, however long that takes.  A *server* cannot:
requests arrive on their own schedule, queues are finite, and a late
answer is often worth nothing.  :class:`QueryServer` runs the serving
loop on the simulated clock:

1. **Admission** — arrivals enter a bounded FIFO queue; when it is
   full the request is **shed** immediately (counted, never served).
   Shedding at the door is the backpressure mechanism: an unbounded
   queue converts overload into unbounded latency for everyone.
2. **Batching** — the server dequeues up to ``batch_size`` requests
   and pays one fixed dispatch cost (``t_hop``: one RPC round into the
   executor) per batch, amortizing it across the batch — the same
   batching argument as the paper's DRL_b, applied to serving.
3. **Deadlines** — a request that has already waited past
   ``deadline_seconds`` when dequeued is dropped (counted separately
   from sheds): serving it would waste capacity on an answer the
   client stopped waiting for.
4. **Degradation** — the backend can be a
   :class:`~repro.query.service.FallbackBackend`, so a cluster whose
   index build died keeps answering (slower, via online BFS) while
   admission control keeps the queue bounded.  The full ladder is
   documented in ``docs/serving.md``.

Everything is deterministic: time is the cost model's simulated clock,
arrivals come from :mod:`repro.workloads.traffic`, and the same inputs
always produce the same report.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ShardUnavailableError
from repro.observe.tracing import (
    RequestTrace,
    TraceIdGenerator,
    begin_request,
    end_request,
)
from repro.pregel.cost_model import DEFAULT_COST_MODEL, CostModel
from repro.telemetry import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    current_metrics,
    enabled,
    trace_event,
    trace_span,
)


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile on a pre-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


@dataclass(frozen=True)
class ServeReport:
    """Everything one serving run measured (all seconds simulated)."""

    mode: str
    offered: int
    served: int
    shed: int
    deadline_dropped: int
    positives: int
    batches: int
    queue_peak: int
    makespan_seconds: float
    mean_seconds: float
    p50_seconds: float
    p99_seconds: float
    p999_seconds: float
    max_seconds: float
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidated: int = 0
    cache_evictions: int = 0
    shard_loads: list[int] = field(default_factory=list)
    shard_skew: float = 1.0
    degraded: bool = False
    fallback_queries: int = 0
    failed: int = 0
    failovers: int = 0
    replica_timeouts: int = 0
    hedges_won: int = 0
    stale_reads: int = 0
    confirmed_reads: int = 0
    forced_catchups: int = 0
    replication_lag: int = 0
    replicas_down: int = 0
    mutations_offered: int = 0
    mutations_applied: int = 0
    mutations_noop: int = 0
    mutations_rejected: int = 0
    mutations_shed: int = 0
    mutation_p50_seconds: float = 0.0
    mutation_p99_seconds: float = 0.0
    mutation_max_seconds: float = 0.0
    staleness_window_seconds: float = 0.0

    @property
    def throughput(self) -> float:
        """Served queries per simulated second of makespan."""
        if not self.makespan_seconds:
            return 0.0
        return self.served / self.makespan_seconds

    @property
    def availability(self) -> float:
        """Served over offered (1.0 when nothing was offered).

        Sheds, deadline drops, and failed requests all count against
        availability — the client got no answer either way.
        """
        if not self.offered:
            return 1.0
        return self.served / self.offered

    @property
    def cache_hit_rate(self) -> float:
        """Hits over cache lookups (0.0 without a cache)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def update_throughput(self) -> float:
        """Applied mutations per simulated second of makespan."""
        if not self.makespan_seconds:
            return 0.0
        return self.mutations_applied / self.makespan_seconds

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"{self.mode} run: {self.offered} offered, {self.served} served, "
            f"{self.shed} shed, {self.deadline_dropped} past deadline"
            + (f", {self.failed} failed" if self.failed else ""),
            f"  throughput {self.throughput:,.0f} q/s over "
            f"{self.makespan_seconds:.3e} s (queue peak {self.queue_peak}, "
            f"{self.batches} batches)",
            f"  latency p50 {self.p50_seconds:.2e}s  p99 {self.p99_seconds:.2e}s  "
            f"p999 {self.p999_seconds:.2e}s  max {self.max_seconds:.2e}s",
        ]
        if self.mutations_offered:
            lines.append(
                f"  writes: {self.mutations_offered} offered, "
                f"{self.mutations_applied} applied, {self.mutations_noop} no-op, "
                f"{self.mutations_rejected} rejected, {self.mutations_shed} shed "
                f"({self.update_throughput:,.0f} u/s, "
                f"write p99 {self.mutation_p99_seconds:.2e}s, "
                f"staleness window {self.staleness_window_seconds:.2e}s)"
            )
        if self.cache_hits or self.cache_misses:
            lines.append(
                f"  cache: {self.cache_hit_rate:.1%} hit rate "
                f"({self.cache_hits} hits / {self.cache_misses} misses, "
                f"{self.cache_invalidated} invalidated, "
                f"{self.cache_evictions} evicted)"
            )
        if self.shard_loads:
            lines.append(
                f"  shards: load skew {self.shard_skew:.2f} "
                f"(max/mean over {len(self.shard_loads)} shards)"
            )
        if self.failovers or self.replica_timeouts or self.replicas_down:
            lines.append(
                f"  replicas: {self.failovers} failover(s), "
                f"{self.replica_timeouts} timed-out reads, "
                f"{self.replicas_down} down at end "
                f"(availability {self.availability:.2%})"
            )
        if self.stale_reads or self.confirmed_reads:
            lines.append(
                f"  staleness: {self.stale_reads} guarded stale reads, "
                f"{self.confirmed_reads} leader-confirmed"
            )
        if self.degraded:
            lines.append(
                f"  DEGRADED: {self.fallback_queries} queries served by "
                f"online-BFS fallback"
            )
        return "\n".join(lines)


def _chain(backend):
    """The backend and whatever it wraps, outermost first."""
    seen = []
    while backend is not None and backend not in seen:
        seen.append(backend)
        backend = getattr(backend, "inner", None)
    return seen


class QueryServer:
    """Serves a request stream through admission control and batching.

    Parameters
    ----------
    backend:
        Any :class:`~repro.query.service.QueryBackend`; typically a
        :class:`~repro.serve.CachingBackend` over a
        :class:`~repro.serve.ShardedIndexBackend`.
    queue_depth:
        Admission queue bound; arrivals beyond it are shed.
    batch_size:
        Requests dequeued per dispatch.
    deadline_seconds:
        Drop requests older than this at dequeue time (``None`` keeps
        everything).
    cost_model:
        Supplies the per-batch dispatch cost (``t_hop``).
    metrics:
        Explicit registry for ``serve.*`` metrics; defaults to the
        active telemetry session's registry, if any.
    request_tracing:
        Per-request causal tracing (see :mod:`repro.observe.tracing`):
        every request gets a trace ID and a ``serve.request`` event
        with admission/cache/store/backend child stages.  ``None``
        (the default) follows whether telemetry is enabled; ``False``
        forces it off so the hot path allocates nothing per request.
    on_advance:
        Optional ``callback(clock)`` invoked before each batch
        dispatch with the current simulated time.  This is how
        scheduled mid-traffic events — replica faults via
        :class:`~repro.serve.faults.ServeFaultInjector`, replication
        delivery, scenario update bursts — ride the serving clock.
    recorder:
        Optional :class:`~repro.observe.incident.recorder.FlightRecorder`:
        every terminal ``serve.request`` record (served, shed,
        deadline-dropped, failed) is also appended to it on the
        serving clock, feeding the incident trigger engine.  Attaching
        a recorder turns request tracing on (unless explicitly forced
        off) so the records carry trace ids and stage chains.
    mutation_backend:
        Optional :class:`~repro.serve.mutation.MutationBackend`
        enabling the write path: :meth:`submit_mutation` and the write
        half of :meth:`run_mixed` route through it.  Writes share the
        admission queue with reads (and get shed by the same
        backpressure), but are **never deadline-dropped** — a client
        that stopped waiting for an answer still wants its write
        applied.
    """

    def __init__(
        self,
        backend,
        queue_depth: int = 1024,
        batch_size: int = 32,
        deadline_seconds: float | None = None,
        cost_model: CostModel | None = None,
        metrics: MetricsRegistry | None = None,
        request_tracing: bool | None = None,
        on_advance=None,
        recorder=None,
        mutation_backend=None,
    ):
        if queue_depth < 1:
            raise ValueError("queue_depth must be positive")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        self._backend = backend
        self._queue_depth = queue_depth
        self._batch_size = batch_size
        self._deadline = deadline_seconds
        self._dispatch_seconds = (cost_model or DEFAULT_COST_MODEL).t_hop
        self._metrics = metrics
        self._request_tracing = request_tracing
        self._on_advance = on_advance
        self._recorder = recorder
        self._mutation_backend = mutation_backend

    # -- entry points --------------------------------------------------
    def submit_mutation(
        self, op: str, u: int, v: int = -1, at: float = 0.0
    ) -> tuple[str, float]:
        """Apply one mutation immediately (no queueing): the one-shot
        write API.  Returns ``(status, simulated_seconds)`` — see
        :meth:`~repro.serve.mutation.MutationBackend.apply_with_cost`.

        This bypasses admission (nothing else is in flight), but still
        runs the full mutation path: listener-driven cache
        invalidation, replication op-log append, ``serve.mutation``
        telemetry.  For interleaved read/write traffic use
        :meth:`run_mixed`, which routes writes through the queue.
        """
        if self._mutation_backend is None:
            raise ValueError("server was built without a mutation_backend")
        return self._mutation_backend.apply_with_cost(op, u, v, at=at)

    def run_open(
        self,
        pairs: Sequence[tuple[int, int]],
        arrivals: Sequence[float],
    ) -> ServeReport:
        """Open-loop run: requests arrive at the given times whether or
        not the server keeps up (this is where shedding happens)."""
        if len(pairs) != len(arrivals):
            raise ValueError("need one arrival time per pair")
        if any(b < a for a, b in zip(arrivals, arrivals[1:])):
            raise ValueError("arrival times must be non-decreasing")
        return self._run("open", pairs, arrivals)

    def run_closed(
        self,
        pairs: Sequence[tuple[int, int]],
        clients: int = 8,
        think_seconds: float = 0.0,
    ) -> ServeReport:
        """Closed-loop run: ``clients`` concurrent clients each issue
        their next request ``think_seconds`` after the previous answer.

        Offered load self-limits at ``clients / (latency + think)``, so
        nothing is shed; the in-flight population is bounded by
        ``clients``.  Batching still applies when several clients are
        ready at once.
        """
        if clients < 1:
            raise ValueError("need at least one client")
        if think_seconds < 0:
            raise ValueError("think_seconds must be non-negative")
        return self._run(
            "closed", pairs, None, clients=clients, think_seconds=think_seconds
        )

    def run_mixed(
        self,
        pairs: Sequence[tuple[int, int]],
        arrivals: Sequence[float],
        mutations: Sequence[tuple[str, int, int]],
        mutation_arrivals: Sequence[float],
    ) -> ServeReport:
        """Open-loop run interleaving reads and writes on one queue.

        ``pairs``/``arrivals`` are the read stream exactly as
        :meth:`run_open`; ``mutations``/``mutation_arrivals`` are
        ``(op, u, v)`` writes on their own (non-decreasing) schedule.
        The two streams are merged by arrival time (reads first on
        ties) and served through the same admission queue, batching,
        and dispatch costs — so a write storm contends with reads for
        queue capacity and inflates read latency, which is the point
        of measuring them together.
        """
        if self._mutation_backend is None:
            raise ValueError("server was built without a mutation_backend")
        if len(pairs) != len(arrivals):
            raise ValueError("need one arrival time per pair")
        if len(mutations) != len(mutation_arrivals):
            raise ValueError("need one arrival time per mutation")
        for schedule in (arrivals, mutation_arrivals):
            if any(b < a for a, b in zip(schedule, schedule[1:])):
                raise ValueError("arrival times must be non-decreasing")
        merged: list[tuple] = []
        merged_arrivals: list[float] = []
        i = j = 0
        while i < len(pairs) or j < len(mutations):
            take_read = j >= len(mutations) or (
                i < len(pairs) and arrivals[i] <= mutation_arrivals[j]
            )
            if take_read:
                merged.append(tuple(pairs[i]))
                merged_arrivals.append(arrivals[i])
                i += 1
            else:
                merged.append(tuple(mutations[j]))
                merged_arrivals.append(mutation_arrivals[j])
                j += 1
        return self._run("mixed", merged, merged_arrivals)

    # -- the serving loop ----------------------------------------------
    def _run(
        self,
        mode: str,
        pairs: Sequence[tuple[int, int]],
        arrivals: Sequence[float] | None,
        clients: int = 0,
        think_seconds: float = 0.0,
    ) -> ServeReport:
        backend = self._backend
        mutation_backend = self._mutation_backend
        deadline = self._deadline
        queue: deque[tuple[int, float]] = deque()  # (pair index, arrival)
        latencies: list[float] = []
        write_latencies: list[float] = []
        clock = 0.0
        shed = deadline_dropped = served = positives = batches = failed = 0
        mut_applied = mut_noop = mut_rejected = mut_shed = 0
        queue_peak = 0
        n = len(pairs)
        # Mixed runs carry (op, u, v) writes in the same request list;
        # reads stay 2-tuples.  Reported "offered" counts reads only.
        reads_offered = sum(1 for request in pairs if len(request) == 2)
        mutations_offered = n - reads_offered
        next_request = 0
        # Request tracing: off by default unless telemetry is on or a
        # flight recorder wants the records, and forceable either way.
        # When off, the loop below touches none of this — no
        # per-request allocation at all.
        recorder = self._recorder
        tracing = (
            self._request_tracing
            if self._request_tracing is not None
            else enabled() or recorder is not None
        )
        if not tracing:
            recorder = None

        def terminal(at: float, trace: RequestTrace, **extra) -> None:
            """Emit one finished request to telemetry + the recorder."""
            attrs = trace.to_attrs()
            attrs.update(extra)
            trace_event("serve.request", **attrs)
            if recorder is not None:
                recorder.record("serve.request", at, **attrs)

        trace_ids = TraceIdGenerator() if tracing else None
        traces: dict[int, RequestTrace] = {}
        exemplars: list[tuple[float, str]] = []  # (latency, trace id)
        # Closed loop: a heap of client-ready times replaces the
        # arrival list; a client re-arms when its answer comes back.
        ready: list[float] = [0.0] * clients if mode == "closed" else []
        if ready:
            heapq.heapify(ready)

        def next_arrival() -> float | None:
            """When the next request materializes (None: none pending).

            Open loop reads the arrival schedule; closed loop peeks the
            earliest ready client — every client may be in flight, in
            which case nothing can arrive until a batch completes.
            """
            if arrivals is not None:
                return arrivals[next_request]
            return ready[0] if ready else None

        with trace_span("serve.run", mode=mode, offered=n) as span:
            while next_request < n or queue:
                if not queue:
                    clock = max(clock, next_arrival())
                # Admit everything that has arrived by now.
                while next_request < n:
                    arrival = next_arrival()
                    if arrival is None or arrival > clock:
                        break
                    if mode == "closed":
                        arrived = heapq.heappop(ready)
                    else:
                        arrived = arrivals[next_request]
                    request = pairs[next_request]
                    is_write = len(request) == 3
                    if len(queue) >= self._queue_depth:
                        if is_write:
                            mut_shed += 1
                        else:
                            shed += 1
                        if tracing:
                            # Shed requests leave a terminal trace too:
                            # the drop reason is part of the record.
                            source, target = request[-2], request[-1]
                            dropped = RequestTrace(
                                trace_ids.next_id(), source, target, arrived
                            )
                            dropped.finish("shed", reason="queue_full")
                            if is_write:
                                terminal(clock, dropped, op=request[0])
                            else:
                                terminal(clock, dropped)
                        if mode == "closed":  # the client retries at once
                            heapq.heappush(ready, clock)
                    else:
                        queue.append((next_request, arrived))
                        if tracing:
                            source, target = request[-2], request[-1]
                            traces[next_request] = RequestTrace(
                                trace_ids.next_id(), source, target, arrived
                            )
                    next_request += 1
                queue_peak = max(queue_peak, len(queue))
                # Dequeue one batch, dropping requests past deadline.
                batch: list[tuple[int, float]] = []
                while queue and len(batch) < self._batch_size:
                    k, arrived = queue.popleft()
                    # Writes are never deadline-dropped: the mutation
                    # must land even if its submitter stopped waiting.
                    if (
                        deadline is not None
                        and len(pairs[k]) == 2
                        and clock - arrived > deadline
                    ):
                        deadline_dropped += 1
                        if tracing:
                            expired = traces.pop(k)
                            expired.add_stage("admission", clock - arrived)
                            expired.finish(
                                "deadline", clock - arrived, reason="deadline"
                            )
                            terminal(clock, expired)
                        if mode == "closed":
                            heapq.heappush(ready, clock + think_seconds)
                        continue
                    batch.append((k, arrived))
                if not batch:
                    continue
                if self._on_advance is not None:
                    # Scheduled mid-traffic events (replica faults,
                    # replication delivery, update bursts) fire here,
                    # before the batch's queries execute.
                    self._on_advance(clock)
                batches += 1
                dequeued_at = clock
                clock += self._dispatch_seconds
                for k, arrived in batch:
                    request = pairs[k]
                    if len(request) == 3:
                        # Write path: apply on the leader through the
                        # MutationBackend (which adds its own
                        # "mutation" trace stage and telemetry event).
                        op, u, v = request
                        if tracing:
                            trace = traces.pop(k)
                            trace.add_stage("admission", dequeued_at - arrived)
                            begin_request(trace)
                            try:
                                status, seconds = mutation_backend.apply_with_cost(
                                    op, u, v, at=clock
                                )
                            finally:
                                end_request()
                        else:
                            status, seconds = mutation_backend.apply_with_cost(
                                op, u, v, at=clock
                            )
                        clock += seconds
                        if status == "applied":
                            mut_applied += 1
                        elif status == "noop":
                            mut_noop += 1
                        else:
                            mut_rejected += 1
                        latency = clock - arrived
                        write_latencies.append(latency)
                        if tracing:
                            trace.finish("served", latency)
                            terminal(clock, trace, op=op, status=status)
                        if mode == "closed":
                            heapq.heappush(ready, clock + think_seconds)
                        continue
                    error = None
                    if tracing:
                        trace = traces.pop(k)
                        trace.add_stage("admission", dequeued_at - arrived)
                        begin_request(trace)
                        try:
                            answer, seconds = backend.query_with_cost(*pairs[k])
                        except ShardUnavailableError as exc:
                            error, seconds = exc, getattr(exc, "seconds", 0.0)
                        finally:
                            end_request()
                        if error is None:
                            trace.add_stage(
                                "backend", seconds, answer=bool(answer)
                            )
                    else:
                        try:
                            answer, seconds = backend.query_with_cost(*pairs[k])
                        except ShardUnavailableError as exc:
                            error, seconds = exc, getattr(exc, "seconds", 0.0)
                    clock += seconds
                    if error is not None:
                        # One lost shard degrades availability; it must
                        # not crash the server or the rest of the batch.
                        failed += 1
                        if tracing:
                            trace.finish(
                                "error", clock - arrived, reason="unavailable"
                            )
                            # The lost shard rides along so the
                            # incident trigger can attribute the error.
                            shard = getattr(error, "shard_id", None)
                            if shard is not None:
                                terminal(clock, trace, shard=shard)
                            else:
                                terminal(clock, trace)
                        if mode == "closed":
                            heapq.heappush(ready, clock + think_seconds)
                        continue
                    positives += answer
                    served += 1
                    latency = clock - arrived
                    latencies.append(latency)
                    if tracing:
                        trace.finish("served", latency)
                        terminal(clock, trace)
                        exemplars.append((latency, trace.trace_id))
                    if mode == "closed":
                        heapq.heappush(ready, clock + think_seconds)
            span.set(served=served, shed=shed, failed=failed)
            span.add_simulated(clock)

        latencies.sort()
        write_latencies.sort()
        staleness = (
            mutation_backend.staleness_window_seconds
            if mutation_backend is not None
            else 0.0
        )
        report = ServeReport(
            mode=mode,
            offered=reads_offered,
            served=served,
            shed=shed,
            deadline_dropped=deadline_dropped,
            positives=positives,
            batches=batches,
            queue_peak=queue_peak,
            makespan_seconds=clock,
            mean_seconds=sum(latencies) / len(latencies) if latencies else 0.0,
            p50_seconds=_percentile(latencies, 0.50),
            p99_seconds=_percentile(latencies, 0.99),
            p999_seconds=_percentile(latencies, 0.999),
            max_seconds=latencies[-1] if latencies else 0.0,
            failed=failed,
            mutations_offered=mutations_offered,
            mutations_applied=mut_applied,
            mutations_noop=mut_noop,
            mutations_rejected=mut_rejected,
            mutations_shed=mut_shed,
            mutation_p50_seconds=_percentile(write_latencies, 0.50),
            mutation_p99_seconds=_percentile(write_latencies, 0.99),
            mutation_max_seconds=write_latencies[-1] if write_latencies else 0.0,
            staleness_window_seconds=staleness,
            **self._backend_stats(),
        )
        self._record_metrics(report, latencies, exemplars, write_latencies)
        return report

    def _backend_stats(self) -> dict:
        """Cache/shard/degradation numbers pulled off the backend chain."""
        stats: dict = {}
        for layer in _chain(self._backend):
            cache = getattr(layer, "cache", None)
            if cache is not None and "cache_hits" not in stats:
                stats.update(
                    cache_hits=cache.hits,
                    cache_misses=cache.misses,
                    cache_invalidated=cache.invalidated,
                    cache_evictions=cache.evictions,
                )
            store = getattr(layer, "store", None)
            if store is not None and "shard_loads" not in stats:
                stats.update(
                    shard_loads=store.shard_loads(),
                    shard_skew=store.load_skew(),
                )
                replica_stats = getattr(store, "replica_stats", None)
                if replica_stats is not None:
                    stats.update(replica_stats())
            if getattr(layer, "degraded", False):
                stats.update(
                    degraded=True,
                    fallback_queries=getattr(layer, "fallback_queries", 0),
                )
        return stats

    def _record_metrics(
        self,
        report: ServeReport,
        latencies: list[float],
        exemplars: list[tuple[float, str]] = (),
        write_latencies: list[float] = (),
    ) -> None:
        registry = self._metrics
        if registry is None:
            registry = current_metrics() if enabled() else None
        if registry is None:
            return
        registry.counter("serve.requests").inc(report.offered)
        registry.counter("serve.served").inc(report.served)
        registry.counter("serve.shed").inc(report.shed)
        registry.counter("serve.deadline_dropped").inc(report.deadline_dropped)
        if report.shed:
            registry.counter("serve.dropped.queue_full").inc(report.shed)
        if report.deadline_dropped:
            registry.counter("serve.dropped.deadline").inc(
                report.deadline_dropped
            )
        if report.failed:
            registry.counter("serve.failed").inc(report.failed)
        if report.failovers:
            registry.counter("serve.failovers").inc(report.failovers)
        if report.replica_timeouts:
            registry.counter("serve.replica.timeouts").inc(
                report.replica_timeouts
            )
        if report.confirmed_reads or report.stale_reads:
            registry.counter("serve.replica.stale_reads").inc(report.stale_reads)
            registry.counter("serve.replica.confirmed_reads").inc(
                report.confirmed_reads
            )
        registry.counter("serve.batches").inc(report.batches)
        registry.gauge("serve.queue_peak").set(report.queue_peak)
        histogram = registry.histogram("serve.latency_seconds", LATENCY_BUCKETS)
        if exemplars:
            # Traced runs attach trace-ID exemplars to the buckets, so
            # any latency bucket links back to concrete requests.
            for latency, trace_id in exemplars:
                histogram.observe(latency, exemplar=trace_id)
        else:
            for latency in latencies:
                histogram.observe(latency)
        if report.cache_hits or report.cache_misses:
            registry.counter("serve.cache.hits").inc(report.cache_hits)
            registry.counter("serve.cache.misses").inc(report.cache_misses)
            registry.counter("serve.cache.invalidated").inc(report.cache_invalidated)
            registry.counter("serve.cache.evictions").inc(report.cache_evictions)
        if report.shard_loads:
            registry.gauge("serve.shard_skew").set(report.shard_skew)
        if report.mutations_offered:
            registry.counter("serve.mutation.requests").inc(
                report.mutations_offered
            )
            registry.counter("serve.mutation.applied").inc(
                report.mutations_applied
            )
            registry.counter("serve.mutation.noop").inc(report.mutations_noop)
            registry.counter("serve.mutation.rejected").inc(
                report.mutations_rejected
            )
            registry.counter("serve.mutation.shed").inc(report.mutations_shed)
            write_histogram = registry.histogram(
                "serve.mutation.latency_seconds", LATENCY_BUCKETS
            )
            for latency in write_latencies:
                write_histogram.observe(latency)
            registry.gauge("serve.mutation.staleness_window_seconds").set(
                report.staleness_window_seconds
            )
        registry.gauge("serve.degraded").set(int(report.degraded))
