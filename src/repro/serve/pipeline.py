"""The request pipeline: admission control, batching, deadlines.

A batch evaluator (:class:`~repro.query.service.QueryService`) answers
every query it is handed, however long that takes.  A *server* cannot:
requests arrive on their own schedule, queues are finite, and a late
answer is often worth nothing.  :class:`QueryServer` runs the serving
loop on the simulated clock:

1. **Admission** — arrivals enter a bounded FIFO queue; when it is
   full the request is **shed** immediately (counted, never served).
   Shedding at the door is the backpressure mechanism: an unbounded
   queue converts overload into unbounded latency for everyone.
2. **Batching** — the server dequeues up to ``batch_size`` requests
   and pays one fixed dispatch cost (``t_hop``: one RPC round into the
   executor) per batch, amortizing it across the batch — the same
   batching argument as the paper's DRL_b, applied to serving.
3. **Deadlines** — a request that has already waited past
   ``deadline_seconds`` when dequeued is dropped (counted separately
   from sheds): serving it would waste capacity on an answer the
   client stopped waiting for.
4. **Degradation** — the backend can be a
   :class:`~repro.query.service.FallbackBackend`, so a cluster whose
   index build died keeps answering (slower, via online BFS) while
   admission control keeps the queue bounded.  The full ladder is
   documented in ``docs/serving.md``.

Everything is deterministic: time is the cost model's simulated clock,
arrivals come from :mod:`repro.workloads.traffic`, and the same inputs
always produce the same report.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ShardUnavailableError
from repro.observe.tracing import (
    RequestTrace,
    TraceIdGenerator,
    begin_request,
    end_request,
)
from repro.pregel.cost_model import DEFAULT_COST_MODEL, CostModel
from repro.telemetry import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    current_metrics,
    enabled,
    trace_event,
    trace_span,
)


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile on a pre-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


@dataclass(frozen=True)
class ServeReport:
    """Everything one serving run measured (all seconds simulated)."""

    mode: str
    offered: int
    served: int
    shed: int
    deadline_dropped: int
    positives: int
    batches: int
    queue_peak: int
    makespan_seconds: float
    mean_seconds: float
    p50_seconds: float
    p99_seconds: float
    p999_seconds: float
    max_seconds: float
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidated: int = 0
    cache_evictions: int = 0
    shard_loads: list[int] = field(default_factory=list)
    shard_skew: float = 1.0
    degraded: bool = False
    fallback_queries: int = 0
    failed: int = 0
    failovers: int = 0
    replica_timeouts: int = 0
    hedges_won: int = 0
    stale_reads: int = 0
    confirmed_reads: int = 0
    forced_catchups: int = 0
    replication_lag: int = 0
    replicas_down: int = 0

    @property
    def throughput(self) -> float:
        """Served queries per simulated second of makespan."""
        if not self.makespan_seconds:
            return 0.0
        return self.served / self.makespan_seconds

    @property
    def availability(self) -> float:
        """Served over offered (1.0 when nothing was offered).

        Sheds, deadline drops, and failed requests all count against
        availability — the client got no answer either way.
        """
        if not self.offered:
            return 1.0
        return self.served / self.offered

    @property
    def cache_hit_rate(self) -> float:
        """Hits over cache lookups (0.0 without a cache)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"{self.mode} run: {self.offered} offered, {self.served} served, "
            f"{self.shed} shed, {self.deadline_dropped} past deadline"
            + (f", {self.failed} failed" if self.failed else ""),
            f"  throughput {self.throughput:,.0f} q/s over "
            f"{self.makespan_seconds:.3e} s (queue peak {self.queue_peak}, "
            f"{self.batches} batches)",
            f"  latency p50 {self.p50_seconds:.2e}s  p99 {self.p99_seconds:.2e}s  "
            f"p999 {self.p999_seconds:.2e}s  max {self.max_seconds:.2e}s",
        ]
        if self.cache_hits or self.cache_misses:
            lines.append(
                f"  cache: {self.cache_hit_rate:.1%} hit rate "
                f"({self.cache_hits} hits / {self.cache_misses} misses, "
                f"{self.cache_invalidated} invalidated, "
                f"{self.cache_evictions} evicted)"
            )
        if self.shard_loads:
            lines.append(
                f"  shards: load skew {self.shard_skew:.2f} "
                f"(max/mean over {len(self.shard_loads)} shards)"
            )
        if self.failovers or self.replica_timeouts or self.replicas_down:
            lines.append(
                f"  replicas: {self.failovers} failover(s), "
                f"{self.replica_timeouts} timed-out reads, "
                f"{self.replicas_down} down at end "
                f"(availability {self.availability:.2%})"
            )
        if self.stale_reads or self.confirmed_reads:
            lines.append(
                f"  staleness: {self.stale_reads} guarded stale reads, "
                f"{self.confirmed_reads} leader-confirmed"
            )
        if self.degraded:
            lines.append(
                f"  DEGRADED: {self.fallback_queries} queries served by "
                f"online-BFS fallback"
            )
        return "\n".join(lines)


def _chain(backend):
    """The backend and whatever it wraps, outermost first."""
    seen = []
    while backend is not None and backend not in seen:
        seen.append(backend)
        backend = getattr(backend, "inner", None)
    return seen


class QueryServer:
    """Serves a request stream through admission control and batching.

    Parameters
    ----------
    backend:
        Any :class:`~repro.query.service.QueryBackend`; typically a
        :class:`~repro.serve.CachingBackend` over a
        :class:`~repro.serve.ShardedIndexBackend`.
    queue_depth:
        Admission queue bound; arrivals beyond it are shed.
    batch_size:
        Requests dequeued per dispatch.
    deadline_seconds:
        Drop requests older than this at dequeue time (``None`` keeps
        everything).
    cost_model:
        Supplies the per-batch dispatch cost (``t_hop``).
    metrics:
        Explicit registry for ``serve.*`` metrics; defaults to the
        active telemetry session's registry, if any.
    request_tracing:
        Per-request causal tracing (see :mod:`repro.observe.tracing`):
        every request gets a trace ID and a ``serve.request`` event
        with admission/cache/store/backend child stages.  ``None``
        (the default) follows whether telemetry is enabled; ``False``
        forces it off so the hot path allocates nothing per request.
    on_advance:
        Optional ``callback(clock)`` invoked before each batch
        dispatch with the current simulated time.  This is how
        scheduled mid-traffic events — replica faults via
        :class:`~repro.serve.faults.ServeFaultInjector`, replication
        delivery, scenario update bursts — ride the serving clock.
    recorder:
        Optional :class:`~repro.observe.incident.recorder.FlightRecorder`:
        every terminal ``serve.request`` record (served, shed,
        deadline-dropped, failed) is also appended to it on the
        serving clock, feeding the incident trigger engine.  Attaching
        a recorder turns request tracing on (unless explicitly forced
        off) so the records carry trace ids and stage chains.
    """

    def __init__(
        self,
        backend,
        queue_depth: int = 1024,
        batch_size: int = 32,
        deadline_seconds: float | None = None,
        cost_model: CostModel | None = None,
        metrics: MetricsRegistry | None = None,
        request_tracing: bool | None = None,
        on_advance=None,
        recorder=None,
    ):
        if queue_depth < 1:
            raise ValueError("queue_depth must be positive")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        self._backend = backend
        self._queue_depth = queue_depth
        self._batch_size = batch_size
        self._deadline = deadline_seconds
        self._dispatch_seconds = (cost_model or DEFAULT_COST_MODEL).t_hop
        self._metrics = metrics
        self._request_tracing = request_tracing
        self._on_advance = on_advance
        self._recorder = recorder

    # -- entry points --------------------------------------------------
    def run_open(
        self,
        pairs: Sequence[tuple[int, int]],
        arrivals: Sequence[float],
    ) -> ServeReport:
        """Open-loop run: requests arrive at the given times whether or
        not the server keeps up (this is where shedding happens)."""
        if len(pairs) != len(arrivals):
            raise ValueError("need one arrival time per pair")
        if any(b < a for a, b in zip(arrivals, arrivals[1:])):
            raise ValueError("arrival times must be non-decreasing")
        return self._run("open", pairs, arrivals)

    def run_closed(
        self,
        pairs: Sequence[tuple[int, int]],
        clients: int = 8,
        think_seconds: float = 0.0,
    ) -> ServeReport:
        """Closed-loop run: ``clients`` concurrent clients each issue
        their next request ``think_seconds`` after the previous answer.

        Offered load self-limits at ``clients / (latency + think)``, so
        nothing is shed; the in-flight population is bounded by
        ``clients``.  Batching still applies when several clients are
        ready at once.
        """
        if clients < 1:
            raise ValueError("need at least one client")
        if think_seconds < 0:
            raise ValueError("think_seconds must be non-negative")
        return self._run(
            "closed", pairs, None, clients=clients, think_seconds=think_seconds
        )

    # -- the serving loop ----------------------------------------------
    def _run(
        self,
        mode: str,
        pairs: Sequence[tuple[int, int]],
        arrivals: Sequence[float] | None,
        clients: int = 0,
        think_seconds: float = 0.0,
    ) -> ServeReport:
        backend = self._backend
        deadline = self._deadline
        queue: deque[tuple[int, float]] = deque()  # (pair index, arrival)
        latencies: list[float] = []
        clock = 0.0
        shed = deadline_dropped = served = positives = batches = failed = 0
        queue_peak = 0
        n = len(pairs)
        next_request = 0
        # Request tracing: off by default unless telemetry is on or a
        # flight recorder wants the records, and forceable either way.
        # When off, the loop below touches none of this — no
        # per-request allocation at all.
        recorder = self._recorder
        tracing = (
            self._request_tracing
            if self._request_tracing is not None
            else enabled() or recorder is not None
        )
        if not tracing:
            recorder = None

        def terminal(at: float, trace: RequestTrace, **extra) -> None:
            """Emit one finished request to telemetry + the recorder."""
            attrs = trace.to_attrs()
            attrs.update(extra)
            trace_event("serve.request", **attrs)
            if recorder is not None:
                recorder.record("serve.request", at, **attrs)

        trace_ids = TraceIdGenerator() if tracing else None
        traces: dict[int, RequestTrace] = {}
        exemplars: list[tuple[float, str]] = []  # (latency, trace id)
        # Closed loop: a heap of client-ready times replaces the
        # arrival list; a client re-arms when its answer comes back.
        ready: list[float] = [0.0] * clients if mode == "closed" else []
        if ready:
            heapq.heapify(ready)

        def next_arrival() -> float | None:
            """When the next request materializes (None: none pending).

            Open loop reads the arrival schedule; closed loop peeks the
            earliest ready client — every client may be in flight, in
            which case nothing can arrive until a batch completes.
            """
            if arrivals is not None:
                return arrivals[next_request]
            return ready[0] if ready else None

        with trace_span("serve.run", mode=mode, offered=n) as span:
            while next_request < n or queue:
                if not queue:
                    clock = max(clock, next_arrival())
                # Admit everything that has arrived by now.
                while next_request < n:
                    arrival = next_arrival()
                    if arrival is None or arrival > clock:
                        break
                    if mode == "closed":
                        arrived = heapq.heappop(ready)
                    else:
                        arrived = arrivals[next_request]
                    if len(queue) >= self._queue_depth:
                        shed += 1
                        if tracing:
                            # Shed requests leave a terminal trace too:
                            # the drop reason is part of the record.
                            source, target = pairs[next_request]
                            dropped = RequestTrace(
                                trace_ids.next_id(), source, target, arrived
                            )
                            dropped.finish("shed", reason="queue_full")
                            terminal(clock, dropped)
                        if mode == "closed":  # the client retries at once
                            heapq.heappush(ready, clock)
                    else:
                        queue.append((next_request, arrived))
                        if tracing:
                            source, target = pairs[next_request]
                            traces[next_request] = RequestTrace(
                                trace_ids.next_id(), source, target, arrived
                            )
                    next_request += 1
                queue_peak = max(queue_peak, len(queue))
                # Dequeue one batch, dropping requests past deadline.
                batch: list[tuple[int, float]] = []
                while queue and len(batch) < self._batch_size:
                    k, arrived = queue.popleft()
                    if deadline is not None and clock - arrived > deadline:
                        deadline_dropped += 1
                        if tracing:
                            expired = traces.pop(k)
                            expired.add_stage("admission", clock - arrived)
                            expired.finish(
                                "deadline", clock - arrived, reason="deadline"
                            )
                            terminal(clock, expired)
                        if mode == "closed":
                            heapq.heappush(ready, clock + think_seconds)
                        continue
                    batch.append((k, arrived))
                if not batch:
                    continue
                if self._on_advance is not None:
                    # Scheduled mid-traffic events (replica faults,
                    # replication delivery, update bursts) fire here,
                    # before the batch's queries execute.
                    self._on_advance(clock)
                batches += 1
                dequeued_at = clock
                clock += self._dispatch_seconds
                for k, arrived in batch:
                    error = None
                    if tracing:
                        trace = traces.pop(k)
                        trace.add_stage("admission", dequeued_at - arrived)
                        begin_request(trace)
                        try:
                            answer, seconds = backend.query_with_cost(*pairs[k])
                        except ShardUnavailableError as exc:
                            error, seconds = exc, getattr(exc, "seconds", 0.0)
                        finally:
                            end_request()
                        if error is None:
                            trace.add_stage(
                                "backend", seconds, answer=bool(answer)
                            )
                    else:
                        try:
                            answer, seconds = backend.query_with_cost(*pairs[k])
                        except ShardUnavailableError as exc:
                            error, seconds = exc, getattr(exc, "seconds", 0.0)
                    clock += seconds
                    if error is not None:
                        # One lost shard degrades availability; it must
                        # not crash the server or the rest of the batch.
                        failed += 1
                        if tracing:
                            trace.finish(
                                "error", clock - arrived, reason="unavailable"
                            )
                            # The lost shard rides along so the
                            # incident trigger can attribute the error.
                            shard = getattr(error, "shard_id", None)
                            if shard is not None:
                                terminal(clock, trace, shard=shard)
                            else:
                                terminal(clock, trace)
                        if mode == "closed":
                            heapq.heappush(ready, clock + think_seconds)
                        continue
                    positives += answer
                    served += 1
                    latency = clock - arrived
                    latencies.append(latency)
                    if tracing:
                        trace.finish("served", latency)
                        terminal(clock, trace)
                        exemplars.append((latency, trace.trace_id))
                    if mode == "closed":
                        heapq.heappush(ready, clock + think_seconds)
            span.set(served=served, shed=shed, failed=failed)
            span.add_simulated(clock)

        latencies.sort()
        report = ServeReport(
            mode=mode,
            offered=n,
            served=served,
            shed=shed,
            deadline_dropped=deadline_dropped,
            positives=positives,
            batches=batches,
            queue_peak=queue_peak,
            makespan_seconds=clock,
            mean_seconds=sum(latencies) / len(latencies) if latencies else 0.0,
            p50_seconds=_percentile(latencies, 0.50),
            p99_seconds=_percentile(latencies, 0.99),
            p999_seconds=_percentile(latencies, 0.999),
            max_seconds=latencies[-1] if latencies else 0.0,
            failed=failed,
            **self._backend_stats(),
        )
        self._record_metrics(report, latencies, exemplars)
        return report

    def _backend_stats(self) -> dict:
        """Cache/shard/degradation numbers pulled off the backend chain."""
        stats: dict = {}
        for layer in _chain(self._backend):
            cache = getattr(layer, "cache", None)
            if cache is not None and "cache_hits" not in stats:
                stats.update(
                    cache_hits=cache.hits,
                    cache_misses=cache.misses,
                    cache_invalidated=cache.invalidated,
                    cache_evictions=cache.evictions,
                )
            store = getattr(layer, "store", None)
            if store is not None and "shard_loads" not in stats:
                stats.update(
                    shard_loads=store.shard_loads(),
                    shard_skew=store.load_skew(),
                )
                replica_stats = getattr(store, "replica_stats", None)
                if replica_stats is not None:
                    stats.update(replica_stats())
            if getattr(layer, "degraded", False):
                stats.update(
                    degraded=True,
                    fallback_queries=getattr(layer, "fallback_queries", 0),
                )
        return stats

    def _record_metrics(
        self,
        report: ServeReport,
        latencies: list[float],
        exemplars: list[tuple[float, str]] = (),
    ) -> None:
        registry = self._metrics
        if registry is None:
            registry = current_metrics() if enabled() else None
        if registry is None:
            return
        registry.counter("serve.requests").inc(report.offered)
        registry.counter("serve.served").inc(report.served)
        registry.counter("serve.shed").inc(report.shed)
        registry.counter("serve.deadline_dropped").inc(report.deadline_dropped)
        if report.shed:
            registry.counter("serve.dropped.queue_full").inc(report.shed)
        if report.deadline_dropped:
            registry.counter("serve.dropped.deadline").inc(
                report.deadline_dropped
            )
        if report.failed:
            registry.counter("serve.failed").inc(report.failed)
        if report.failovers:
            registry.counter("serve.failovers").inc(report.failovers)
        if report.replica_timeouts:
            registry.counter("serve.replica.timeouts").inc(
                report.replica_timeouts
            )
        if report.confirmed_reads or report.stale_reads:
            registry.counter("serve.replica.stale_reads").inc(report.stale_reads)
            registry.counter("serve.replica.confirmed_reads").inc(
                report.confirmed_reads
            )
        registry.counter("serve.batches").inc(report.batches)
        registry.gauge("serve.queue_peak").set(report.queue_peak)
        histogram = registry.histogram("serve.latency_seconds", LATENCY_BUCKETS)
        if exemplars:
            # Traced runs attach trace-ID exemplars to the buckets, so
            # any latency bucket links back to concrete requests.
            for latency, trace_id in exemplars:
                histogram.observe(latency, exemplar=trace_id)
        else:
            for latency in latencies:
                histogram.observe(latency)
        if report.cache_hits or report.cache_misses:
            registry.counter("serve.cache.hits").inc(report.cache_hits)
            registry.counter("serve.cache.misses").inc(report.cache_misses)
            registry.counter("serve.cache.invalidated").inc(report.cache_invalidated)
            registry.counter("serve.cache.evictions").inc(report.cache_evictions)
        if report.shard_loads:
            registry.gauge("serve.shard_skew").set(report.shard_skew)
        registry.gauge("serve.degraded").set(int(report.degraded))
