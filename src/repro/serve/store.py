"""Sharded label store: the serving layer's data tier.

The paper's §III-D collects the finished index onto one machine; at
"millions of users" scale a single machine neither holds the labels of
a trillion-edge graph nor absorbs the query load.  The store keeps
``L_in``/``L_out`` partitioned across ``num_shards`` shards — reusing
the exact :mod:`repro.graph.partition` partitioners the builders use —
and charges every cross-shard label fetch through the
:class:`~repro.pregel.cost_model.CostModel`, so a query whose source
and target live on different shards pays a realistic communication
cost (one serialized hop plus the label bytes per remote shard).

Per-shard bookkeeping feeds the two serving questions the paper never
had to ask:

- **memory accounting** — each shard's label bytes are checked against
  the cost model's per-node budget at construction, so a partitioning
  that overloads one shard fails loudly instead of "fitting" because
  the total would fit;
- **load accounting** — every fetch increments the touched shards'
  request counters, so `serve-bench` can report load skew (a Zipf
  workload hammers whichever shards own the hot vertices).
"""

from __future__ import annotations

from repro.core.labels import ReachabilityIndex
from repro.errors import ShardOutOfMemoryError
from repro.graph.partition import HashPartitioner, Partitioner
from repro.observe import tracing
from repro.pregel.cost_model import DEFAULT_COST_MODEL, CostModel


class LabelShard:
    """One shard: the label sets of the vertices it owns."""

    __slots__ = ("shard_id", "vertices", "entries", "requests")

    def __init__(self, shard_id: int):
        self.shard_id = shard_id
        self.vertices = 0
        self.entries = 0
        self.requests = 0

    def memory_bytes(self, entry_bytes: int) -> int:
        """Simulated resident size of this shard's labels."""
        return self.entries * entry_bytes


class ShardedLabelStore:
    """``L_in``/``L_out`` partitioned across shards, with fetch costs.

    Parameters
    ----------
    index:
        The finished (immutable) index to shard.  A live
        :class:`~repro.core.dynamic.DynamicReachabilityIndex` works
        too: labels are always read through the underlying object, so
        updates are visible immediately.
    num_shards:
        Number of label shards.
    partitioner:
        Vertex → shard mapping (default: the paper's
        :class:`HashPartitioner`); any
        :class:`~repro.graph.partition.Partitioner` with
        ``num_nodes == num_shards`` is accepted.
    cost_model:
        Charges fetches (``t_hop`` per remote shard touched plus
        ``entry_bytes · t_byte`` per label entry moved) and enforces
        the per-shard memory budget (``node_memory_bytes``).
    """

    def __init__(
        self,
        index,
        num_shards: int = 8,
        partitioner: Partitioner | None = None,
        cost_model: CostModel | None = None,
    ):
        if partitioner is None:
            partitioner = HashPartitioner(num_shards)
        if partitioner.num_nodes != num_shards:
            raise ValueError(
                f"partitioner maps onto {partitioner.num_nodes} shards, "
                f"expected {num_shards}"
            )
        self._index = index
        self.num_shards = num_shards
        self._partitioner = partitioner
        self._cost = cost_model or DEFAULT_COST_MODEL
        self.shards = [LabelShard(i) for i in range(num_shards)]
        n = index.num_vertices
        self._shard_of = [partitioner.node_of(v) for v in range(n)]
        for v in range(n):
            shard = self.shards[self._shard_of[v]]
            shard.vertices += 1
            shard.entries += len(self._out_labels(v)) + len(self._in_labels(v))
        budget = self._cost.node_memory_bytes
        for shard in self.shards:
            attempted = shard.memory_bytes(self._cost.entry_bytes)
            if attempted > budget:
                raise ShardOutOfMemoryError(
                    shard.shard_id,
                    attempted,
                    budget,
                    vertices=shard.vertices,
                    entries=shard.entries,
                )

    # -- label access (works for ReachabilityIndex and the dynamic index)
    def _out_labels(self, v: int):
        out = self._index.out_labels
        return out[v] if isinstance(out, list) else out(v)

    def _in_labels(self, v: int):
        labels = self._index.in_labels
        return labels[v] if isinstance(labels, list) else labels(v)

    @property
    def num_vertices(self) -> int:
        """Vertices covered by the store."""
        return self._index.num_vertices

    def shard_of(self, v: int) -> int:
        """The shard owning vertex ``v``'s labels."""
        return self._shard_of[v]

    def memory_bytes(self) -> list[int]:
        """Per-shard simulated label bytes."""
        entry_bytes = self._cost.entry_bytes
        return [shard.memory_bytes(entry_bytes) for shard in self.shards]

    def shard_loads(self) -> list[int]:
        """Per-shard request counts since construction."""
        return [shard.requests for shard in self.shards]

    def load_skew(self) -> float:
        """Max/mean of per-shard request counts (1.0 = perfectly even)."""
        loads = self.shard_loads()
        total = sum(loads)
        if not total:
            return 1.0
        return max(loads) / (total / len(loads))

    def fetch(self, s: int, t: int) -> tuple[bool, float]:
        """Answer ``q(s, t)`` and return the simulated seconds it cost.

        The query executes at the *source's* shard (the router hashes
        on ``s``): ``L_out(s)`` is local, and when ``t`` lives on a
        different shard ``L_in(t)`` costs one serialized hop plus its
        entry bytes.  The sorted-merge itself is charged per entry
        compared, as in :class:`~repro.query.service.IndexBackend`.
        """
        cost = self._cost
        out_labels = self._out_labels(s)
        in_labels = self._in_labels(t)
        home = self._shard_of[s]
        target_shard = self._shard_of[t]
        self.shards[home].requests += 1
        seconds = (len(out_labels) + len(in_labels) + 1) * cost.t_op
        if target_shard != home:
            self.shards[target_shard].requests += 1
            seconds += cost.t_hop + len(in_labels) * cost.entry_bytes * cost.t_byte
        if tracing.ACTIVE is not None:
            attrs = {"home": home, "entries": len(out_labels) + len(in_labels)}
            if target_shard != home:
                attrs["remote"] = target_shard
            tracing.ACTIVE.add_stage("store", seconds, **attrs)
        return self._index.query(s, t), seconds


class ShardedIndexBackend:
    """:class:`~repro.query.service.QueryBackend` view of a store.

    Makes the store pluggable anywhere a backend is expected — the
    request pipeline, :class:`~repro.query.service.QueryService`, or a
    :class:`~repro.query.service.FallbackBackend` primary.
    """

    def __init__(self, store: ShardedLabelStore):
        self._store = store

    @property
    def store(self) -> ShardedLabelStore:
        """The underlying sharded store (for load/memory reports)."""
        return self._store

    def query_with_cost(self, s: int, t: int) -> tuple[bool, float]:
        return self._store.fetch(s, t)
