"""Write path for the serving pipeline: mutations as first-class requests.

The paper's serving story is read-only — the index is built offline and
queried online.  Its dynamic inheritance from TOL says the index *can*
absorb updates; this module puts that on the serve path.  A
:class:`MutationBackend` wraps the leader
:class:`~repro.core.dynamic.DynamicReachabilityIndex` and gives writes
the same simulated-cost contract reads have
(:meth:`~repro.query.service.QueryBackend.query_with_cost`), so
:class:`~repro.serve.pipeline.QueryServer` can interleave them through
the one admission queue: writes share queue capacity with reads, get
shed under overload, appear in traces (a ``mutation`` stage) and in
``serve.mutation.*`` metrics, and — because every applied op fires the
leader's listener hooks — automatically invalidate the
:class:`~repro.serve.cache.QueryCache` and append to the
:class:`~repro.serve.replica.BoundedStalenessReplicator` op log.

Costing: a write's simulated seconds are the label-maintenance work
estimate — the endpoint label sets the resumed BFSs start from, times a
write-amplification factor covering the sweep — not the exact
maintenance cost, which would require running it twice.  The estimate
only shapes the simulated clock; correctness never depends on it.
"""

from __future__ import annotations

from repro.observe import tracing
from repro.pregel.cost_model import DEFAULT_COST_MODEL, CostModel
from repro.telemetry import trace_event

#: Operations :meth:`MutationBackend.apply_with_cost` accepts, in
#: ``(op, u, v)`` shape (``add_node`` ignores the payload; ``promote``
#: treats ``v`` as the target rank, negative meaning "degree rank").
MUTATION_OPS = ("insert", "delete", "add_node", "delete_node", "promote")

#: Maintenance touches roughly this many labels per seed-label entry
#: (resume BFS + stale sweep); calibrated against the direct-path
#: scenario runner's observed op costs.
WRITE_AMPLIFICATION = 8.0


class MutationBackend:
    """Apply graph mutations to the leader index with simulated cost.

    Parameters
    ----------
    leader:
        The writable :class:`~repro.core.dynamic.DynamicReachabilityIndex`
        reads are ultimately served from.  Caches and replicators
        should already be subscribed to it; this backend relies purely
        on the listener hooks for invalidation and op-log feeding.
    cost_model:
        Source of ``t_op`` for the write-cost estimate.
    replicator:
        Optional :class:`~repro.serve.replica.BoundedStalenessReplicator`
        attached to the leader.  When present, each write stamps the op
        log with its apply time (``note_time``) and samples the
        replication :meth:`staleness window
        <repro.serve.replica.BoundedStalenessReplicator.staleness_window>`,
        whose peak is exported as ``staleness_window_seconds``.
    """

    def __init__(
        self,
        leader,
        cost_model: CostModel | None = None,
        replicator=None,
    ):
        self.leader = leader
        self.replicator = replicator
        self._t_op = (cost_model or DEFAULT_COST_MODEL).t_op
        self.applied = 0
        self.noops = 0
        self.rejected = 0
        self.staleness_window_seconds = 0.0

    # ------------------------------------------------------------------
    def apply_with_cost(
        self, op: str, u: int, v: int, at: float = 0.0
    ) -> tuple[str, float]:
        """Apply one mutation; returns ``(status, simulated_seconds)``.

        ``status`` is ``"applied"`` (the graph changed), ``"noop"``
        (inserting a present edge, deleting an absent one, promoting to
        a non-higher rank), or ``"rejected"`` (invalid payload — id out
        of range, tombstoned vertex, self-loop).  Rejections never
        raise: on a live serve path a bad write — e.g. one referencing
        the id a shed ``add_node`` would have created — must fail the
        *request*, not the server.
        """
        if op not in MUTATION_OPS:
            raise ValueError(f"unknown mutation op {op!r}")
        if self.replicator is not None:
            self.replicator.note_time(at)
        try:
            status, seconds = self._dispatch(op, u, v)
        except (ValueError, IndexError):
            status, seconds = "rejected", self._t_op
        if status == "applied":
            self.applied += 1
            if self.replicator is not None:
                window = self.replicator.staleness_window(at)
                if window > self.staleness_window_seconds:
                    self.staleness_window_seconds = window
        elif status == "noop":
            self.noops += 1
        else:
            self.rejected += 1
        tracing.add_stage("mutation", seconds, op=op, status=status)
        trace_event(
            "serve.mutation",
            op=op, u=u, v=v, status=status, seconds=seconds, at=at,
        )
        return status, seconds

    def _dispatch(self, op: str, u: int, v: int) -> tuple[str, float]:
        leader = self.leader
        if op == "add_node":
            leader.add_node()
            return "applied", self._t_op * WRITE_AMPLIFICATION
        # Seed-label estimate: the hubs whose BFSs the update resumes.
        if op in ("insert", "delete"):
            leader._check_vertex(u)
            leader._check_vertex(v)
            units = len(leader.in_labels[u]) + len(leader.out_labels[v]) + 1
        else:
            leader._check_vertex(u)
            units = len(leader.in_labels[u]) + len(leader.out_labels[u]) + 1
        seconds = units * self._t_op * WRITE_AMPLIFICATION
        if op == "insert":
            changed = leader.insert_edge(u, v)
        elif op == "delete":
            changed = leader.delete_edge(u, v)
        elif op == "delete_node":
            changed = leader.delete_node(u)
        else:  # promote: negative target rank means "degree rank"
            changed = leader.promote(u, None if v < 0 else v) is not None
        return ("applied" if changed else "noop"), seconds
