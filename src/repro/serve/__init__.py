"""``repro.serve`` — the high-throughput query-serving layer.

The paper builds the index; this subsystem *serves* it, at the scale
the ROADMAP's north star asks for.  Four pieces, bottom to top:

- :mod:`~repro.serve.store` — ``L_in``/``L_out`` sharded across N
  shards via the :mod:`repro.graph.partition` partitioners, with
  per-shard memory accounting and cross-shard fetch costs charged
  through the :class:`~repro.pregel.cost_model.CostModel`;
- :mod:`~repro.serve.cache` — an LRU result cache (optional negative
  caching) whose invalidation hooks subscribe to
  :class:`~repro.core.dynamic.DynamicReachabilityIndex` updates, so
  no stale answer survives an edge insert/delete;
- :mod:`~repro.serve.replica` — N replicas per shard with read
  fan-out policies (primary / round-robin / hedged), health checking
  with failover, and bounded-staleness replication of dynamic updates
  guarded so a lagging replica never returns an incorrect answer;
- :mod:`~repro.serve.faults` — serve-side fault schedules (replica
  crash / slow replica / recovery) replayed mid-traffic by a
  :class:`ServeFaultInjector`;
- :mod:`~repro.serve.mutation` — the write path: a
  :class:`MutationBackend` applies graph mutations (edge and node ops,
  order upgrades) to the leader index with simulated costs, so writes
  ride the same admission queue as reads (``docs/dynamic.md``);
- :mod:`~repro.serve.pipeline` — the serving loop: bounded admission
  queue (overflow sheds), request batching, deadline drops, mixed
  read/write runs (:meth:`QueryServer.run_mixed`), and graceful
  degradation via :class:`~repro.query.service.FallbackBackend`;
- :mod:`~repro.serve.bench` — the ``repro serve-bench`` runner that
  replays a Zipf/Poisson workload cached and uncached and renders one
  baseline-gateable table.

Architecture, the degradation ladder, and a metrics glossary live in
``docs/serving.md``.
"""

from repro.serve.bench import (
    COLUMNS,
    MIXED_COLUMNS,
    caching_speedup,
    run_mixed_serve_bench,
    run_serve_bench,
)
from repro.serve.cache import CachingBackend, QueryCache
from repro.serve.faults import (
    ReplicaCrash,
    ReplicaRecovery,
    ReplicaSlow,
    ServeFaultInjector,
    ServeFaultPlan,
    ServeFaultSpecError,
)
from repro.serve.mutation import MUTATION_OPS, MutationBackend
from repro.serve.pipeline import QueryServer, ServeReport
from repro.serve.replica import (
    BoundedStalenessReplicator,
    HealthPolicy,
    READ_POLICIES,
    ReplicaSet,
    ReplicaState,
    ReplicatedLabelStore,
)
from repro.serve.store import LabelShard, ShardedIndexBackend, ShardedLabelStore

__all__ = [
    "BoundedStalenessReplicator",
    "COLUMNS",
    "MIXED_COLUMNS",
    "MUTATION_OPS",
    "MutationBackend",
    "CachingBackend",
    "HealthPolicy",
    "LabelShard",
    "QueryCache",
    "QueryServer",
    "READ_POLICIES",
    "ReplicaCrash",
    "ReplicaRecovery",
    "ReplicaSet",
    "ReplicaSlow",
    "ReplicaState",
    "ReplicatedLabelStore",
    "ServeFaultInjector",
    "ServeFaultPlan",
    "ServeFaultSpecError",
    "ServeReport",
    "ShardedIndexBackend",
    "ShardedLabelStore",
    "caching_speedup",
    "run_mixed_serve_bench",
    "run_serve_bench",
]
