"""``repro.serve`` — the high-throughput query-serving layer.

The paper builds the index; this subsystem *serves* it, at the scale
the ROADMAP's north star asks for.  Four pieces, bottom to top:

- :mod:`~repro.serve.store` — ``L_in``/``L_out`` sharded across N
  shards via the :mod:`repro.graph.partition` partitioners, with
  per-shard memory accounting and cross-shard fetch costs charged
  through the :class:`~repro.pregel.cost_model.CostModel`;
- :mod:`~repro.serve.cache` — an LRU result cache (optional negative
  caching) whose invalidation hooks subscribe to
  :class:`~repro.core.dynamic.DynamicReachabilityIndex` updates, so
  no stale answer survives an edge insert/delete;
- :mod:`~repro.serve.pipeline` — the serving loop: bounded admission
  queue (overflow sheds), request batching, deadline drops, and
  graceful degradation via
  :class:`~repro.query.service.FallbackBackend`;
- :mod:`~repro.serve.bench` — the ``repro serve-bench`` runner that
  replays a Zipf/Poisson workload cached and uncached and renders one
  baseline-gateable table.

Architecture, the degradation ladder, and a metrics glossary live in
``docs/serving.md``.
"""

from repro.serve.bench import COLUMNS, caching_speedup, run_serve_bench
from repro.serve.cache import CachingBackend, QueryCache
from repro.serve.pipeline import QueryServer, ServeReport
from repro.serve.store import LabelShard, ShardedIndexBackend, ShardedLabelStore

__all__ = [
    "COLUMNS",
    "CachingBackend",
    "LabelShard",
    "QueryCache",
    "QueryServer",
    "ServeReport",
    "ShardedIndexBackend",
    "ShardedLabelStore",
    "caching_speedup",
    "run_serve_bench",
]
