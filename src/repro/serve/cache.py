"""Query result cache with update-aware invalidation.

Hop-labeling queries are already cheap; what a cache buys the serving
layer is skipping the *cross-shard fetch* (micro- not nanoseconds, see
``docs/serving.md``) for the hot pairs a Zipf-skewed workload repeats
endlessly.  The cache is a plain LRU over ``(s, t) → bool`` with two
serving-specific twists:

**Negative caching is optional.**  Positive answers are usually the
valuable ones (they gate an action); negative answers can dominate the
key space on sparse graphs.  ``negative_caching=False`` stores only
``True`` answers.

**Invalidation is monotonicity-aware.**  Edge updates change answers
in one direction only:

- *inserting* an edge can only turn answers ``False → True`` — every
  cached positive stays correct, so only negatives are dropped;
- *deleting* an edge can only turn answers ``True → False`` — only
  positives are dropped.

Attach a cache to a live
:class:`~repro.core.dynamic.DynamicReachabilityIndex` with
:meth:`QueryCache.attach` and the right half is evicted on every
applied update; the staleness property (no cached answer ever
disagrees with a full rebuild) is asserted by
``tests/test_serve_cache.py`` using the fuzzer's dynamic-vs-rebuild
oracle as the reference.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.observe import tracing
from repro.pregel.cost_model import DEFAULT_COST_MODEL, CostModel


class QueryCache:
    """Bounded LRU cache of reachability answers.

    Parameters
    ----------
    capacity:
        Maximum number of cached pairs; the least recently used entry
        is evicted on overflow.
    negative_caching:
        When False, ``put`` ignores negative answers.
    """

    def __init__(self, capacity: int = 65536, negative_caching: bool = True):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.negative_caching = negative_caching
        self._entries: OrderedDict[tuple[int, int], bool] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidated = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def get(self, s: int, t: int) -> bool | None:
        """The cached answer, or ``None`` on a miss."""
        answer = self._entries.get((s, t))
        if answer is None:
            self.misses += 1
            return None
        self._entries.move_to_end((s, t))
        self.hits += 1
        return answer

    def put(self, s: int, t: int, answer: bool) -> None:
        """Cache an answer (a no-op for negatives when disabled)."""
        if not answer and not self.negative_caching:
            return
        entries = self._entries
        if (s, t) in entries:
            entries.move_to_end((s, t))
            entries[(s, t)] = answer
            return
        if len(entries) >= self.capacity:
            entries.popitem(last=False)
            self.evictions += 1
        entries[(s, t)] = answer

    def clear(self) -> None:
        """Drop every entry (counts them as invalidated)."""
        self.invalidated += len(self._entries)
        self._entries.clear()

    # -- invalidation -------------------------------------------------
    def invalidate_for_update(self, op: str, u: int, v: int) -> int:
        """Evict entries a graph update may have stale-ified.

        Returns the number of entries dropped.  This is the callback
        shape :meth:`DynamicReachabilityIndex.subscribe` expects, so
        ``dynamic.subscribe(cache.invalidate_for_update)`` wires the
        cache directly; :meth:`attach` does exactly that.
        """
        if op == "insert":
            doomed = False  # negatives may have flipped
        elif op in ("delete", "delete_node"):
            doomed = True   # positives may have flipped
        elif op in ("add_node", "promote"):
            return 0        # reachability is unchanged; nothing stales
        else:
            raise ValueError(f"unknown update op {op!r}")
        stale = [key for key, answer in self._entries.items() if answer == doomed]
        for key in stale:
            del self._entries[key]
        self.invalidated += len(stale)
        return len(stale)

    def attach(self, dynamic_index) -> None:
        """Subscribe to a dynamic index's update notifications."""
        dynamic_index.subscribe(self.invalidate_for_update)

    def detach(self, dynamic_index) -> None:
        """Undo :meth:`attach`."""
        dynamic_index.unsubscribe(self.invalidate_for_update)


class CachingBackend:
    """Wrap any :class:`~repro.query.service.QueryBackend` in a cache.

    A hit costs one table probe (``t_op``); a miss pays the probe plus
    the inner backend's full cost, then fills the cache.
    """

    def __init__(
        self,
        inner,
        cache: QueryCache | None = None,
        cost_model: CostModel | None = None,
    ):
        self.inner = inner
        self.cache = cache if cache is not None else QueryCache()
        self._probe_seconds = (cost_model or DEFAULT_COST_MODEL).t_op

    def query_with_cost(self, s: int, t: int) -> tuple[bool, float]:
        cached = self.cache.get(s, t)
        if cached is not None:
            if tracing.ACTIVE is not None:
                tracing.ACTIVE.add_stage("cache", self._probe_seconds, hit=True)
            return cached, self._probe_seconds
        if tracing.ACTIVE is not None:
            tracing.ACTIVE.add_stage("cache", self._probe_seconds, hit=False)
        answer, seconds = self.inner.query_with_cost(s, t)
        self.cache.put(s, t, answer)
        return answer, seconds + self._probe_seconds
