"""The declarative scenario format: one spec file = one experiment.

A scenario names everything a serving experiment needs — graph,
traffic shape, serving/replication configuration, a fault schedule,
an optional mid-traffic write burst — plus **expectations**: named
assertions over the run's report (availability floor, p99 ceiling,
zero incorrect answers, minimum failovers…).  The runner
(:mod:`repro.scenarios.runner`) executes the spec and grades the
expectations, so "does the serving tier survive a replica crash
during a write burst?" becomes a committed file and a one-command
check (``repro scenario run``) instead of a hand-built script.

The format is JSON-native (the library under
``repro/scenarios/library/`` is all JSON); YAML files load too when
PyYAML happens to be installed — the format is a plain nested mapping
either way.  Modeled on the SimCash experiment-protocol idea: the
experiment *is* the config file, and the config file carries its own
pass/fail criteria.

Minimal example::

    {
      "name": "smoke",
      "graph": {"kind": "dag", "vertices": 120, "seed": 1},
      "traffic": {
        "pairs": {"count": 2000, "skew": 1.1, "seed": 2},
        "arrivals": {"shape": "poisson", "rate": 400000.0, "seed": 3}
      },
      "serving": {"shards": 4, "replicas": 2, "policy": "primary"},
      "expect": {"availability_min": 0.99}
    }

See ``docs/api.md`` ("Scenario format") for the full field reference.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.graph.generators import GRAPH_KINDS
from repro.graph.partition import PARTITIONER_STRATEGIES
from repro.serve.faults import ServeFaultPlan
from repro.serve.replica import READ_POLICIES

#: Arrival shapes the ``traffic.arrivals.shape`` field accepts.
ARRIVAL_SHAPES = ("poisson", "uniform", "flash", "sine")

#: Expectation keys the ``expect`` mapping accepts, with the report
#: quantity each one checks.  ``*_min`` asserts ``actual >= value``,
#: ``*_max`` asserts ``actual <= value``.
EXPECTATIONS = {
    "availability_min": "served / offered",
    "served_min": "requests served",
    "shed_fraction_max": "shed / offered",
    "failed_max": "requests failed (shard unavailable)",
    "p50_max_seconds": "median latency",
    "p99_max_seconds": "99th-percentile latency",
    "incorrect_answers_max": "served answers differing from the leader's truth",
    "failovers_min": "shard failovers observed",
    "failovers_max": "shard failovers observed",
    "cache_hit_rate_min": "cache hits / lookups",
    "confirmed_reads_min": "stale reads confirmed against the leader",
    "stale_reads_min": "stale reads served under the monotonicity guard",
    "mutations_applied_min": "writes applied to the leader index",
    "mutations_shed_max": "writes shed at the admission queue",
    "update_throughput_min": "applied writes per simulated second",
    "staleness_window_max_seconds": "peak replication staleness window",
}


class ScenarioSpecError(ReproError):
    """A scenario file or mapping is malformed."""


def _require(mapping: dict, key: str, context: str):
    if key not in mapping:
        raise ScenarioSpecError(f"{context} is missing required key {key!r}")
    return mapping[key]


def _reject_unknown(mapping: dict, allowed: set[str], context: str) -> None:
    unknown = set(mapping) - allowed
    if unknown:
        raise ScenarioSpecError(
            f"{context} has unknown key(s): {', '.join(sorted(unknown))} "
            f"(allowed: {', '.join(sorted(allowed))})"
        )


@dataclass(frozen=True)
class GraphSpec:
    """Which synthetic graph the scenario serves."""

    kind: str = "dag"
    vertices: int = 200
    seed: int = 0

    def __post_init__(self):
        if self.kind not in GRAPH_KINDS:
            raise ScenarioSpecError(
                f"unknown graph kind {self.kind!r} "
                f"(known: {', '.join(sorted(GRAPH_KINDS))})"
            )
        if self.vertices < 2:
            raise ScenarioSpecError("graph needs at least two vertices")

    def build(self):
        """Generate the graph."""
        return GRAPH_KINDS[self.kind](self.vertices, seed=self.seed)


@dataclass(frozen=True)
class TrafficSpec:
    """Query pairs plus the arrival process that offers them."""

    requests: int = 2000
    skew: float = 1.1
    pairs_seed: int = 0
    shape: str = "poisson"
    rate: float = 400_000.0
    arrivals_seed: int = 0
    #: Flash-crowd phases as ``[count, rate]`` rows (shape="flash").
    phases: tuple[tuple[int, float], ...] = ()
    #: Sine-wave modulation (shape="sine").
    amplitude: float = 0.5
    period_seconds: float = 0.002

    def __post_init__(self):
        if self.shape not in ARRIVAL_SHAPES:
            raise ScenarioSpecError(
                f"unknown arrival shape {self.shape!r} "
                f"(known: {', '.join(ARRIVAL_SHAPES)})"
            )
        if self.shape == "flash":
            if not self.phases:
                raise ScenarioSpecError("flash arrivals need 'phases'")
        elif self.requests < 1:
            raise ScenarioSpecError("traffic needs at least one request")
        if self.rate <= 0:
            raise ScenarioSpecError("arrival rate must be positive")

    @property
    def total_requests(self) -> int:
        """Requests offered, across phases for flash traffic."""
        if self.shape == "flash":
            return sum(count for count, _ in self.phases)
        return self.requests

    def build(self, num_vertices: int) -> tuple[list[tuple[int, int]], list[float]]:
        """Materialize (pairs, arrival times)."""
        from repro.workloads.traffic import (
            phased_arrivals,
            poisson_arrivals,
            sine_arrivals,
            uniform_arrivals,
            zipf_pairs,
        )

        count = self.total_requests
        pairs = zipf_pairs(num_vertices, count, seed=self.pairs_seed, skew=self.skew)
        if self.shape == "poisson":
            arrivals = poisson_arrivals(count, self.rate, seed=self.arrivals_seed)
        elif self.shape == "uniform":
            arrivals = uniform_arrivals(count, self.rate)
        elif self.shape == "flash":
            arrivals = phased_arrivals(
                [tuple(p) for p in self.phases], seed=self.arrivals_seed
            )
        else:
            arrivals = sine_arrivals(
                count,
                self.rate,
                amplitude=self.amplitude,
                period_seconds=self.period_seconds,
                seed=self.arrivals_seed,
            )
        return pairs, arrivals


@dataclass(frozen=True)
class ServingSpec:
    """Store, replica, cache, and pipeline configuration."""

    shards: int = 4
    partitioner: str = "hash"
    replicas: int = 2
    policy: str = "primary"
    cache_size: int = 1024
    negative_cache: bool = True
    queue_depth: int = 1024
    batch_size: int = 32
    deadline_seconds: float | None = None

    def __post_init__(self):
        if self.partitioner not in PARTITIONER_STRATEGIES:
            raise ScenarioSpecError(
                f"unknown partitioner {self.partitioner!r} "
                f"(known: {', '.join(sorted(PARTITIONER_STRATEGIES))})"
            )
        if self.policy not in READ_POLICIES:
            raise ScenarioSpecError(
                f"unknown read policy {self.policy!r} "
                f"(known: {', '.join(READ_POLICIES)})"
            )
        if self.shards < 1 or self.replicas < 1:
            raise ScenarioSpecError("shards and replicas must be >= 1")


@dataclass(frozen=True)
class ReplicationSpec:
    """Bounded-staleness replication of dynamic updates."""

    delay_seconds: float = 1e-3
    max_lag: int = 64
    apply_seconds_per_op: float = 1e-5

    def __post_init__(self):
        if self.delay_seconds < 0:
            raise ScenarioSpecError("replication delay must be non-negative")
        if self.max_lag < 1:
            raise ScenarioSpecError("max_lag must be >= 1")


@dataclass(frozen=True)
class UpdatesSpec:
    """A mid-traffic write burst against the leader index.

    ``via`` picks the write route: ``"direct"`` applies each update to
    the leader at its scheduled time from the serving loop's
    ``on_advance`` hook (the original behavior); ``"serve"`` submits
    the writes as requests through the admission queue — they contend
    with reads, can be shed, and appear in traces and
    ``serve.mutation.*`` metrics (see ``docs/dynamic.md``).
    ``node_ratio`` > 0 mixes node additions/deletions into the burst;
    ``promote_ratio`` > 0 mixes in order upgrades.
    """

    count: int = 20
    insert_ratio: float = 0.5
    node_ratio: float = 0.0
    promote_ratio: float = 0.0
    seed: int = 0
    start_seconds: float = 0.0
    interval_seconds: float = 5e-5
    via: str = "direct"

    def __post_init__(self):
        if self.count < 1:
            raise ScenarioSpecError("updates.count must be >= 1")
        for name in ("insert_ratio", "node_ratio", "promote_ratio"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ScenarioSpecError(f"{name} must lie in [0, 1]")
        if self.node_ratio + self.promote_ratio > 1.0:
            raise ScenarioSpecError(
                "node_ratio + promote_ratio must not exceed 1"
            )
        if self.start_seconds < 0 or self.interval_seconds < 0:
            raise ScenarioSpecError("update times must be non-negative")
        if self.via not in ("direct", "serve"):
            raise ScenarioSpecError(
                f"unknown updates.via {self.via!r} "
                "(known: direct, serve)"
            )


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, assertable serving experiment."""

    name: str
    description: str = ""
    graph: GraphSpec = field(default_factory=GraphSpec)
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    serving: ServingSpec = field(default_factory=ServingSpec)
    replication: ReplicationSpec | None = None
    updates: UpdatesSpec | None = None
    faults: ServeFaultPlan = field(default_factory=ServeFaultPlan)
    expect: dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        if not self.name:
            raise ScenarioSpecError("a scenario needs a name")
        for key in self.expect:
            if key not in EXPECTATIONS:
                raise ScenarioSpecError(
                    f"unknown expectation {key!r} "
                    f"(known: {', '.join(sorted(EXPECTATIONS))})"
                )
        try:
            self.faults.validate_for(self.serving.shards, self.serving.replicas)
        except ValueError as exc:
            raise ScenarioSpecError(str(exc)) from exc
        if self.updates is not None and self.replication is None:
            # Updates without followers still work (every replica reads
            # the leader synchronously) but a replication block makes
            # the staleness machinery part of the experiment; nothing
            # to validate here — both combinations are legal.
            pass

    # ------------------------------------------------------------------
    @property
    def dynamic(self) -> bool:
        """Does this scenario serve a live (updatable) index?"""
        return self.updates is not None or self.replication is not None

    @classmethod
    def from_dict(cls, raw: dict) -> "ScenarioSpec":
        """Build a spec from a plain nested mapping (parsed JSON/YAML)."""
        if not isinstance(raw, dict):
            raise ScenarioSpecError("a scenario must be a mapping")
        _reject_unknown(
            raw,
            {
                "name", "description", "graph", "traffic", "serving",
                "replication", "updates", "faults", "expect",
            },
            "scenario",
        )
        name = _require(raw, "name", "scenario")

        graph_raw = dict(raw.get("graph", {}))
        _reject_unknown(graph_raw, {"kind", "vertices", "seed"}, "graph")
        graph = GraphSpec(**graph_raw)

        traffic_raw = dict(raw.get("traffic", {}))
        _reject_unknown(traffic_raw, {"pairs", "arrivals"}, "traffic")
        pairs_raw = dict(traffic_raw.get("pairs", {}))
        _reject_unknown(pairs_raw, {"count", "skew", "seed"}, "traffic.pairs")
        arrivals_raw = dict(traffic_raw.get("arrivals", {}))
        _reject_unknown(
            arrivals_raw,
            {"shape", "rate", "seed", "phases", "amplitude", "period_seconds"},
            "traffic.arrivals",
        )
        phases = arrivals_raw.get("phases", ())
        try:
            phases = tuple((int(c), float(r)) for c, r in phases)
        except (TypeError, ValueError) as exc:
            raise ScenarioSpecError(
                "traffic.arrivals.phases must be [count, rate] rows"
            ) from exc
        traffic = TrafficSpec(
            requests=pairs_raw.get("count", 2000),
            skew=pairs_raw.get("skew", 1.1),
            pairs_seed=pairs_raw.get("seed", 0),
            shape=arrivals_raw.get("shape", "poisson"),
            rate=arrivals_raw.get("rate", 400_000.0),
            arrivals_seed=arrivals_raw.get("seed", 0),
            phases=phases,
            amplitude=arrivals_raw.get("amplitude", 0.5),
            period_seconds=arrivals_raw.get("period_seconds", 0.002),
        )

        serving_raw = dict(raw.get("serving", {}))
        _reject_unknown(
            serving_raw,
            {
                "shards", "partitioner", "replicas", "policy", "cache_size",
                "negative_cache", "queue_depth", "batch_size",
                "deadline_seconds",
            },
            "serving",
        )
        serving = ServingSpec(**serving_raw)

        replication = None
        if "replication" in raw and raw["replication"] is not None:
            replication_raw = dict(raw["replication"])
            _reject_unknown(
                replication_raw,
                {"delay_seconds", "max_lag", "apply_seconds_per_op"},
                "replication",
            )
            replication = ReplicationSpec(**replication_raw)

        updates = None
        if "updates" in raw and raw["updates"] is not None:
            updates_raw = dict(raw["updates"])
            _reject_unknown(
                updates_raw,
                {
                    "count", "insert_ratio", "node_ratio", "promote_ratio",
                    "seed", "start_seconds", "interval_seconds", "via",
                },
                "updates",
            )
            updates = UpdatesSpec(**updates_raw)

        faults_raw = raw.get("faults", "")
        if isinstance(faults_raw, ServeFaultPlan):
            faults = faults_raw
        else:
            faults = ServeFaultPlan.parse(faults_raw or "")

        expect = dict(raw.get("expect", {}))
        return cls(
            name=name,
            description=raw.get("description", ""),
            graph=graph,
            traffic=traffic,
            serving=serving,
            replication=replication,
            updates=updates,
            faults=faults,
            expect=expect,
        )

    def to_dict(self) -> dict:
        """The plain-mapping form; inverse of :meth:`from_dict`."""
        raw: dict = {
            "name": self.name,
            "graph": {
                "kind": self.graph.kind,
                "vertices": self.graph.vertices,
                "seed": self.graph.seed,
            },
            "traffic": {
                "pairs": {
                    "count": self.traffic.requests,
                    "skew": self.traffic.skew,
                    "seed": self.traffic.pairs_seed,
                },
                "arrivals": {
                    "shape": self.traffic.shape,
                    "rate": self.traffic.rate,
                    "seed": self.traffic.arrivals_seed,
                },
            },
            "serving": {
                "shards": self.serving.shards,
                "partitioner": self.serving.partitioner,
                "replicas": self.serving.replicas,
                "policy": self.serving.policy,
                "cache_size": self.serving.cache_size,
                "negative_cache": self.serving.negative_cache,
                "queue_depth": self.serving.queue_depth,
                "batch_size": self.serving.batch_size,
                "deadline_seconds": self.serving.deadline_seconds,
            },
            "expect": dict(self.expect),
        }
        if self.description:
            raw["description"] = self.description
        if self.traffic.shape == "flash":
            raw["traffic"]["arrivals"]["phases"] = [
                [c, r] for c, r in self.traffic.phases
            ]
        if self.traffic.shape == "sine":
            raw["traffic"]["arrivals"]["amplitude"] = self.traffic.amplitude
            raw["traffic"]["arrivals"]["period_seconds"] = (
                self.traffic.period_seconds
            )
        if self.replication is not None:
            raw["replication"] = {
                "delay_seconds": self.replication.delay_seconds,
                "max_lag": self.replication.max_lag,
                "apply_seconds_per_op": self.replication.apply_seconds_per_op,
            }
        if self.updates is not None:
            raw["updates"] = {
                "count": self.updates.count,
                "insert_ratio": self.updates.insert_ratio,
                "node_ratio": self.updates.node_ratio,
                "promote_ratio": self.updates.promote_ratio,
                "seed": self.updates.seed,
                "start_seconds": self.updates.start_seconds,
                "interval_seconds": self.updates.interval_seconds,
                "via": self.updates.via,
            }
        if not self.faults.empty:
            raw["faults"] = self.faults.to_spec()
        return raw


def load_scenario(path: str | Path) -> ScenarioSpec:
    """Load one scenario file (JSON always; YAML when PyYAML exists)."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ScenarioSpecError(f"cannot read scenario {path}: {exc}") from exc
    if path.suffix in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as exc:
            raise ScenarioSpecError(
                f"{path} is YAML but PyYAML is not installed; "
                "use the JSON form instead"
            ) from exc
        raw = yaml.safe_load(text)
    else:
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioSpecError(f"{path} is not valid JSON: {exc}") from exc
    return ScenarioSpec.from_dict(raw)


def library_dir() -> Path:
    """Where the committed scenario library lives."""
    return Path(__file__).parent / "library"


def library_scenarios() -> dict[str, Path]:
    """Committed library scenarios: ``name -> path``, sorted by name."""
    return {
        path.stem: path for path in sorted(library_dir().glob("*.json"))
    }
