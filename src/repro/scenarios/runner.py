"""Executes a :class:`~repro.scenarios.spec.ScenarioSpec` end to end.

One call builds the graph and index, stands up the replicated store +
cache + server, replays traffic with the fault schedule and write
burst riding the serving clock, then grades every expectation — and,
for dynamic scenarios, **audits correctness**: every served answer is
recorded with the index version it was served at and re-checked
against a transitive-closure oracle built for that exact version.  The
audit is the teeth behind the library's ``incorrect_answers_max: 0``
assertions: a replica crash during a write burst must not leak a
single wrong answer, and this is where that is proven rather than
assumed.

Everything is deterministic (all randomness is seeded in the spec), so
a scenario that passes passes every time, and a red scenario replays
exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.baselines.transitive_closure import TransitiveClosure
from repro.bench.results import atomic_write_text
from repro.core.dynamic import DynamicReachabilityIndex
from repro.core.tol import tol_index
from repro.graph.partition import PARTITIONER_STRATEGIES
from repro.observe.incident import FlightRecorder, TriggerEngine
from repro.observe.slo import SLOSpec
from repro.scenarios.spec import ScenarioSpec, load_scenario
from repro.serve.cache import CachingBackend, QueryCache
from repro.serve.mutation import MutationBackend
from repro.serve.faults import ServeFaultInjector
from repro.serve.pipeline import QueryServer, ServeReport
from repro.serve.replica import BoundedStalenessReplicator, ReplicatedLabelStore
from repro.serve.store import ShardedIndexBackend
from repro.workloads.updates import mixed_update_stream, update_stream


def _apply_update(dynamic, op: str, u: int, v: int) -> None:
    """Apply one update op (any of the five kinds) to a dynamic index."""
    if op == "insert":
        dynamic.insert_edge(u, v)
    elif op == "delete":
        dynamic.delete_edge(u, v)
    elif op == "add_node":
        dynamic.add_node()
    elif op == "delete_node":
        dynamic.delete_node(u)
    elif op == "promote":
        dynamic.promote(u, None if v < 0 else v)
    else:
        raise ValueError(f"unknown update op {op!r}")


class AuditingBackend:
    """Records ``(version, s, t, answer)`` for every served query.

    Wraps the outermost backend so whatever answer the server is about
    to return — cached, replicated, confirmed, anything — is what gets
    audited.  ``version_of()`` reports the leader index's current
    update count, so the post-run oracle knows exactly which graph each
    answer was served against.
    """

    def __init__(self, inner, version_of):
        self.inner = inner
        self._version_of = version_of
        self.records: list[tuple[int, int, int, bool]] = []

    def query_with_cost(self, s: int, t: int) -> tuple[bool, float]:
        answer, seconds = self.inner.query_with_cost(s, t)
        self.records.append((self._version_of(), s, t, answer))
        return answer, seconds


@dataclass
class ExpectationCheck:
    """One graded assertion from the spec's ``expect`` block."""

    name: str
    expected: float
    actual: float
    ok: bool

    def render(self) -> str:
        mark = "PASS" if self.ok else "FAIL"
        op = ">=" if self.name.endswith("_min") else "<="
        return f"  [{mark}] {self.name}: {self.actual:g} {op} {self.expected:g}"


@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    spec: ScenarioSpec
    report: ServeReport
    checks: list[ExpectationCheck]
    audited: int = 0
    incorrect_answers: int = 0
    events: list[dict] = field(default_factory=list)
    #: Incident bundles the flight recorder landed during the run
    #: (``{"id", "kind", "at", "path"}`` each; empty without a
    #: ``incident_dir``).
    incidents: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Did every expectation hold?"""
        return all(check.ok for check in self.checks)

    def render(self) -> str:
        """Multi-line human-readable result."""
        status = "PASS" if self.ok else "FAIL"
        lines = [f"scenario {self.spec.name}: {status}"]
        if self.spec.description:
            lines.append(f"  {self.spec.description}")
        lines.append(
            f"  {self.report.offered} offered / {self.report.served} served "
            f"(availability {self.report.availability:.2%}), "
            f"p99 {self.report.p99_seconds:.2e}s"
        )
        if self.audited:
            lines.append(
                f"  audit: {self.audited} answers checked against the "
                f"oracle, {self.incorrect_answers} incorrect"
            )
        if self.events:
            names = [e["event"] for e in self.events]
            lines.append(f"  events: {', '.join(names)}")
        if self.incidents:
            lines.append(
                f"  incidents: {len(self.incidents)} bundle(s) — "
                + ", ".join(i["id"] for i in self.incidents)
            )
        lines.extend(check.render() for check in self.checks)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready report (the ``--report`` artifact shape)."""
        return {
            "name": self.spec.name,
            "ok": self.ok,
            "spec": self.spec.to_dict(),
            "report": {
                "offered": self.report.offered,
                "served": self.report.served,
                "shed": self.report.shed,
                "deadline_dropped": self.report.deadline_dropped,
                "failed": self.report.failed,
                "availability": self.report.availability,
                "throughput": self.report.throughput,
                "p50_seconds": self.report.p50_seconds,
                "p99_seconds": self.report.p99_seconds,
                "cache_hit_rate": self.report.cache_hit_rate,
                "failovers": self.report.failovers,
                "replica_timeouts": self.report.replica_timeouts,
                "stale_reads": self.report.stale_reads,
                "confirmed_reads": self.report.confirmed_reads,
                "shard_skew": self.report.shard_skew,
                "mutations_offered": self.report.mutations_offered,
                "mutations_applied": self.report.mutations_applied,
                "mutations_shed": self.report.mutations_shed,
                "update_throughput": self.report.update_throughput,
                "staleness_window_seconds": (
                    self.report.staleness_window_seconds
                ),
            },
            "audit": {
                "audited": self.audited,
                "incorrect_answers": self.incorrect_answers,
            },
            "events": self.events,
            "incidents": self.incidents,
            "checks": [
                {
                    "name": c.name,
                    "expected": c.expected,
                    "actual": c.actual,
                    "ok": c.ok,
                }
                for c in self.checks
            ],
        }


def _expected_span(traffic) -> float:
    """The traffic's expected simulated span, for burn-window sizing."""
    if traffic.shape == "flash":
        return sum(count / rate for count, rate in traffic.phases)
    return traffic.total_requests / traffic.rate


def _incident_slos(spec: ScenarioSpec) -> list[SLOSpec]:
    """SLOs the trigger engine tracks online, derived from ``expect``.

    The availability target comes from the scenario's own
    ``availability_min`` (clamped into the open interval SLOSpec
    accepts), so a run that burns through the budget the scenario
    promises to keep is exactly what lands an ``slo_burn`` bundle.
    """
    target = spec.expect.get("availability_min", 0.999)
    target = min(max(float(target), 0.5), 0.9999)
    slos = [SLOSpec(name="scenario-availability", kind="availability", target=target)]
    p99 = spec.expect.get("p99_max_seconds")
    if p99:
        slos.append(
            SLOSpec(
                name="scenario-latency",
                kind="latency",
                target=0.99,
                threshold_seconds=float(p99),
            )
        )
    return slos


def run_scenario(
    spec: ScenarioSpec,
    request_tracing: bool | None = None,
    incident_dir: str | Path | None = None,
) -> ScenarioResult:
    """Execute one scenario and grade its expectations.

    With ``incident_dir`` a :class:`~repro.observe.incident.FlightRecorder`
    rides the run — subscribed to the store's event stream and fed
    every ``serve.request`` terminal — and a trigger engine lands
    incident bundles there on failovers, unavailable shards, online
    SLO burn, and (after grading) failed expectations.
    """
    graph = spec.graph.build()
    serving = spec.serving
    partitioner = PARTITIONER_STRATEGIES[serving.partitioner](
        serving.shards, graph.num_vertices
    )

    # --- index + replication -----------------------------------------
    replicator = None
    applied_updates: list[tuple[str, int, int]] = []
    if spec.dynamic:
        leader = DynamicReachabilityIndex(graph)
        leader.subscribe(lambda op, u, v: applied_updates.append((op, u, v)))
        if spec.replication is not None:
            replicator = BoundedStalenessReplicator(
                leader,
                serving.replicas,
                delay_seconds=spec.replication.delay_seconds,
                max_lag=spec.replication.max_lag,
                apply_seconds_per_op=spec.replication.apply_seconds_per_op,
            )
        index = leader
    else:
        index = tol_index(graph)

    store = ReplicatedLabelStore(
        index,
        num_shards=serving.shards,
        partitioner=partitioner,
        replicas=serving.replicas,
        policy=serving.policy,
        replicator=replicator,
    )
    injector = ServeFaultInjector(spec.faults, store)

    # --- backend chain: audit(cache(store)) --------------------------
    backend = ShardedIndexBackend(store)
    cache = None
    if serving.cache_size:
        cache = QueryCache(
            capacity=serving.cache_size,
            negative_caching=serving.negative_cache,
        )
        if spec.dynamic:
            cache.attach(index)
        backend = CachingBackend(backend, cache)
    auditor = AuditingBackend(backend, lambda: len(applied_updates))
    backend = auditor

    # --- the write burst, scheduled on the serving clock -------------
    pending_updates: list[tuple[float, tuple[str, int, int]]] = []
    serve_writes = spec.updates is not None and spec.updates.via == "serve"
    if spec.updates is not None:
        if spec.updates.node_ratio or spec.updates.promote_ratio:
            stream = mixed_update_stream(
                graph,
                spec.updates.count,
                insert_ratio=spec.updates.insert_ratio,
                node_ratio=spec.updates.node_ratio,
                promote_ratio=spec.updates.promote_ratio,
                seed=spec.updates.seed,
            )
        else:
            # Edge-only bursts keep using the original generator, so
            # committed scenarios replay byte-identical streams.
            stream = update_stream(
                graph,
                spec.updates.count,
                insert_ratio=spec.updates.insert_ratio,
                seed=spec.updates.seed,
            )
        pending_updates = [
            (spec.updates.start_seconds + i * spec.updates.interval_seconds, op)
            for i, op in enumerate(stream)
        ]
    update_cursor = [0]

    def on_advance(clock: float) -> None:
        # Apply due leader updates first (each stamped with its own
        # scheduled instant so replication delay runs from issue time),
        # then fire due faults and pump replication/health.  With
        # ``via: serve`` the writes arrive through the admission queue
        # instead, so only the fault/replication pump runs here.
        if not serve_writes:
            cursor = update_cursor[0]
            while (
                cursor < len(pending_updates)
                and pending_updates[cursor][0] <= clock
            ):
                at, (op, u, v) = pending_updates[cursor]
                if replicator is not None:
                    replicator.note_time(at)
                _apply_update(index, op, u, v)
                cursor += 1
            update_cursor[0] = cursor
        injector.advance(clock)

    # --- flight recorder + incident triggers -------------------------
    recorder = engine = None
    if incident_dir is not None:
        recorder = FlightRecorder()
        engine = TriggerEngine(
            recorder,
            incident_dir,
            slos=_incident_slos(spec),
            span_hint=_expected_span(spec.traffic),
            context={"scenario": spec.name},
        )
        recorder.add_listener(engine.observe)
        store.subscribe(recorder.record_event)

    # --- serve --------------------------------------------------------
    mutation_backend = None
    if serve_writes:
        mutation_backend = MutationBackend(index, replicator=replicator)
    server = QueryServer(
        backend,
        queue_depth=serving.queue_depth,
        batch_size=serving.batch_size,
        deadline_seconds=serving.deadline_seconds,
        request_tracing=request_tracing,
        on_advance=on_advance,
        recorder=recorder,
        mutation_backend=mutation_backend,
    )
    pairs, arrivals = spec.traffic.build(graph.num_vertices)
    if serve_writes:
        report = server.run_mixed(
            pairs,
            arrivals,
            [op for _, op in pending_updates],
            [at for at, _ in pending_updates],
        )
    else:
        report = server.run_open(pairs, arrivals)

    # --- audit: every served answer vs the oracle at its version -----
    audited = incorrect = 0
    if spec.dynamic:
        audited, incorrect = _audit(graph, applied_updates, auditor.records)
    else:
        oracle = TransitiveClosure(graph)
        for _, s, t, answer in auditor.records:
            audited += 1
            incorrect += answer != oracle.query(s, t)

    checks = _grade(spec, report, incorrect)
    if engine is not None:
        failed_checks = [c for c in checks if not c.ok]
        if failed_checks:
            # Expectation failures always land a bundle, even when no
            # runtime trigger fired: this is the run's only
            # scenario_assertion fire, so no cooldown can suppress it.
            engine.fire(
                "scenario_assertion",
                report.makespan_seconds,
                details={
                    "checks": [
                        {
                            "name": c.name,
                            "expected": c.expected,
                            "actual": c.actual,
                        }
                        for c in failed_checks
                    ]
                },
            )
    return ScenarioResult(
        spec=spec,
        report=report,
        checks=checks,
        audited=audited,
        incorrect_answers=incorrect,
        events=list(store.events),
        incidents=list(engine.incidents) if engine is not None else [],
    )


def _audit(
    graph,
    applied_updates: list[tuple[str, int, int]],
    records: list[tuple[int, int, int, bool]],
) -> tuple[int, int]:
    """Check every served answer against the exact graph it was served
    on: replay the update stream to each recorded version and compare
    with a transitive closure built there."""
    dynamic = DynamicReachabilityIndex(graph)
    oracles: dict[int, TransitiveClosure] = {}
    version = 0
    audited = incorrect = 0
    for record_version, s, t, answer in sorted(records, key=lambda r: r[0]):
        while version < record_version:
            op, u, v = applied_updates[version]
            _apply_update(dynamic, op, u, v)
            version += 1
        if version not in oracles:
            oracles[version] = TransitiveClosure(dynamic.current_graph())
        audited += 1
        incorrect += answer != oracles[version].query(s, t)
    return audited, incorrect


def _grade(
    spec: ScenarioSpec, report: ServeReport, incorrect: int
) -> list[ExpectationCheck]:
    """Grade the spec's ``expect`` block against the run."""
    shed_fraction = report.shed / report.offered if report.offered else 0.0
    actuals = {
        "availability_min": report.availability,
        "served_min": report.served,
        "shed_fraction_max": shed_fraction,
        "failed_max": report.failed,
        "p50_max_seconds": report.p50_seconds,
        "p99_max_seconds": report.p99_seconds,
        "incorrect_answers_max": incorrect,
        "failovers_min": report.failovers,
        "failovers_max": report.failovers,
        "cache_hit_rate_min": report.cache_hit_rate,
        "confirmed_reads_min": report.confirmed_reads,
        "stale_reads_min": report.stale_reads,
        "mutations_applied_min": report.mutations_applied,
        "mutations_shed_max": report.mutations_shed,
        "update_throughput_min": report.update_throughput,
        "staleness_window_max_seconds": report.staleness_window_seconds,
    }
    checks = []
    for name, expected in spec.expect.items():
        actual = actuals[name]
        if name.endswith("_min"):
            ok = actual >= expected
        else:
            ok = actual <= expected
        checks.append(ExpectationCheck(name, float(expected), float(actual), ok))
    return checks


def run_scenario_file(
    path: str | Path,
    request_tracing: bool | None = None,
    incident_dir: str | Path | None = None,
) -> ScenarioResult:
    """Load and run one scenario file."""
    return run_scenario(
        load_scenario(path),
        request_tracing=request_tracing,
        incident_dir=incident_dir,
    )


def write_scenario_report(
    results: list[ScenarioResult], path: str | Path
) -> None:
    """Write a combined JSON report atomically (never a torn file)."""
    payload = {
        "scenarios": [result.to_dict() for result in results],
        "ok": all(result.ok for result in results),
    }
    atomic_write_text(Path(path), json.dumps(payload, indent=2) + "\n")
