"""``repro.scenarios`` — declarative serving experiments with teeth.

A *scenario* is a committed spec file naming a complete serving
experiment — graph, traffic shape, replica layout, fault schedule,
write burst — plus the assertions it must satisfy (availability floor,
p99 ceiling, zero incorrect answers, minimum failovers).  The runner
executes the spec deterministically and grades the assertions, so the
robustness claims in the docs are one ``repro scenario run`` away from
being re-proven, and CI keeps them honest on every PR.

- :mod:`~repro.scenarios.spec` — the format
  (:class:`ScenarioSpec` and friends, :func:`load_scenario`, the
  committed :func:`library_scenarios`);
- :mod:`~repro.scenarios.runner` — execution + expectation grading +
  the per-version correctness audit (:func:`run_scenario`).

The committed library (``repro/scenarios/library/*.json``) covers:
flash crowd, diurnal wave, hot-key storm, shard loss during a write
burst, and a cache stampede after invalidation.
"""

from repro.scenarios.runner import (
    AuditingBackend,
    ExpectationCheck,
    ScenarioResult,
    run_scenario,
    run_scenario_file,
    write_scenario_report,
)
from repro.scenarios.spec import (
    ARRIVAL_SHAPES,
    EXPECTATIONS,
    GraphSpec,
    ReplicationSpec,
    ScenarioSpec,
    ScenarioSpecError,
    ServingSpec,
    TrafficSpec,
    UpdatesSpec,
    library_dir,
    library_scenarios,
    load_scenario,
)

__all__ = [
    "ARRIVAL_SHAPES",
    "AuditingBackend",
    "EXPECTATIONS",
    "ExpectationCheck",
    "GraphSpec",
    "ReplicationSpec",
    "ScenarioResult",
    "ScenarioSpec",
    "ScenarioSpecError",
    "ServingSpec",
    "TrafficSpec",
    "UpdatesSpec",
    "library_dir",
    "library_scenarios",
    "load_scenario",
    "run_scenario",
    "run_scenario_file",
    "write_scenario_report",
]
