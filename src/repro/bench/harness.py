"""Experiment runners — one per table/figure of the paper's Section VI.

All runners measure **simulated seconds** from the cost model (see
:mod:`repro.pregel.cost_model`), so results are deterministic and
reflect distributed behaviour even though everything executes in one
process.  Failure semantics follow the paper: ``-`` marks a method that
cannot run (single-node memory at paper scale), ``INF`` marks a
simulated cut-off.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.baselines.bfl import build_bfl
from repro.baselines.bfl_distributed import build_bfl_distributed
from repro.bench.results import Cell, ExperimentTable
from repro.core.build import build_index
from repro.core.drl import drl_index
from repro.core.labels import LabelingResult, ReachabilityIndex
from repro.errors import OutOfMemoryError, TimeLimitExceeded
from repro.graph.digraph import DiGraph
from repro.graph.order import ORDER_STRATEGIES, VertexOrder, degree_order
from repro.graph.partition import PARTITIONER_STRATEGIES
from repro.pregel.cost_model import CostModel, paper_scale_model
from repro.pregel.metrics import RunStats
from repro.pregel.serial import SerialMeter
from repro.telemetry import trace_span
from repro.workloads.datasets import DATASETS, MEDIUM_DATASETS, get_dataset
from repro.workloads.queries import random_pairs

#: Table VI's column order.
TABLE6_METHODS = ("bfl-c", "bfl-d", "tol", "drl-b", "drl-b-m")
TABLE6_LABELS = {
    "bfl-c": "BFL^C",
    "bfl-d": "BFL^D",
    "tol": "TOL",
    "drl-b": "DRL_b",
    "drl-b-m": "DRL_b^M",
}
FIG_ALGORITHMS = ("drl-", "drl", "drl-b")
FIG_LABELS = {"drl-": "DRL-", "drl": "DRL", "drl-b": "DRL_b"}


def _medium_specs(dataset_names: Sequence[str] | None):
    names = MEDIUM_DATASETS if dataset_names is None else dataset_names
    return [get_dataset(name) for name in names]


def _cell_stats_attrs(stats: RunStats) -> dict:
    """The comm/comp split every ``bench.cell`` span carries, so the
    experiment's table can be reproduced from the trace alone."""
    return dict(
        computation_seconds=stats.computation_seconds,
        communication_seconds=stats.communication_seconds,
        barrier_seconds=stats.barrier_seconds,
        simulated_seconds=stats.simulated_seconds,
    )


def _labeled_index_time(
    method: str,
    graph: DiGraph,
    order: VertexOrder,
    num_nodes: int,
    cost_model: CostModel,
    *,
    dataset: str = "",
    experiment: str = "",
    label: str | None = None,
    span_attrs: dict | None = None,
    **kwargs,
) -> LabelingResult:
    with trace_span(
        "bench.cell",
        experiment=experiment,
        dataset=dataset,
        method=label if label is not None else method,
        num_nodes=num_nodes,
        **(span_attrs or {}),
    ) as span:
        result = build_index(
            graph,
            method=method,
            order=order,
            num_nodes=num_nodes,
            cost_model=cost_model,
            **kwargs,
        )
        span.set(**_cell_stats_attrs(result.stats))
        span.add_simulated(result.stats.simulated_seconds)
    return result


def _guard(fn: Callable[[], Cell]) -> Cell:
    """Convert failures into the paper's markers."""
    try:
        return fn()
    except TimeLimitExceeded:
        return Cell.timeout()
    except OutOfMemoryError:
        return Cell.unavailable()


def _label_query_seconds(
    index: ReachabilityIndex, pairs: list[tuple[int, int]], t_op: float
) -> float:
    """Mean simulated query time of a 2-hop index: one unit per label
    entry scanned by the sorted-merge, as in the paper's O(|L|+|L|)."""
    units = 0
    for s, t in pairs:
        units += len(index.out_labels(s)) + len(index.in_labels(t)) + 1
    return units * t_op / max(1, len(pairs))


# ----------------------------------------------------------------------
# Exps 1-3: Table VI
# ----------------------------------------------------------------------
def run_table6(
    dataset_names: Sequence[str] | None = None,
    num_nodes: int = 32,
    num_queries: int = 2000,
    seed: int = 0,
    cost_model: CostModel | None = None,
) -> tuple[ExperimentTable, ExperimentTable, ExperimentTable]:
    """Exps 1-3: index time, index size, and query time for BFL^C,
    BFL^D, TOL, DRL_b, and DRL_b^M on every dataset.

    Returns ``(time_table, size_table, query_table)``.
    """
    if cost_model is None:
        cost_model = paper_scale_model()
    names = list(DATASETS) if dataset_names is None else list(dataset_names)
    columns = [TABLE6_LABELS[m] for m in TABLE6_METHODS]
    time_table = ExperimentTable("Table VI — Index Time (simulated s)", columns)
    size_table = ExperimentTable(
        "Table VI — Index Size (KiB)", columns, precision=1
    )
    query_table = ExperimentTable(
        "Table VI — Query Time (simulated s)", columns, scientific=True
    )

    for name in names:
        spec = get_dataset(name)
        graph = spec.load()
        order = degree_order(graph)
        pairs = random_pairs(graph.num_vertices, num_queries, seed=seed)
        for method in TABLE6_METHODS:
            label = TABLE6_LABELS[method]
            if not spec.available(method):
                for table in (time_table, size_table, query_table):
                    table.set(name, label, Cell.unavailable())
                continue
            cells = _guard(
                lambda: _run_table6_method(
                    method, graph, order, num_nodes, cost_model, pairs, name
                )
            )
            if isinstance(cells, Cell):  # failure marker
                for table in (time_table, size_table, query_table):
                    table.set(name, label, cells)
                continue
            t_cell, s_cell, q_cell = cells
            time_table.set(name, label, t_cell)
            size_table.set(name, label, s_cell)
            query_table.set(name, label, q_cell)
    return time_table, size_table, query_table


def _run_table6_method(
    method, graph, order, num_nodes, cost_model, pairs, dataset=""
):
    t_op = cost_model.t_op
    label = TABLE6_LABELS[method]
    if method == "bfl-c":
        with trace_span(
            "bench.cell",
            experiment="table6",
            dataset=dataset,
            method=label,
            num_nodes=1,
        ) as span:
            meter = SerialMeter(cost_model)
            bfl = build_bfl(graph, meter=meter)
            stats = meter.stats()
            build = stats.simulated_seconds
            span.set(**_cell_stats_attrs(stats))
            span.add_simulated(build)
        query_meter = SerialMeter(cost_model.with_time_limit(None))
        for s, t in pairs:
            bfl.query(s, t, meter=query_meter)
        per_query = query_meter.simulated_seconds / max(1, len(pairs))
        return build, bfl.size_bytes() / 1024, per_query
    if method == "bfl-d":
        with trace_span(
            "bench.cell",
            experiment="table6",
            dataset=dataset,
            method=label,
            num_nodes=num_nodes,
        ) as span:
            index, stats = build_bfl_distributed(
                graph, num_nodes=num_nodes, cost_model=cost_model
            )
            span.set(**_cell_stats_attrs(stats))
            span.add_simulated(stats.simulated_seconds)
        total = 0.0
        for s, t in pairs:
            _answer, seconds = index.query_with_cost(s, t)
            total += seconds
        return (
            stats.simulated_seconds,
            index.size_bytes() / 1024,
            total / max(1, len(pairs)),
        )
    shared = (
        cost_model
        if method != "drl-b-m"
        else CostModel(
            t_op=cost_model.t_op,
            t_byte=0.0,
            t_barrier=cost_model.t_barrier / 10,
            time_limit_seconds=cost_model.time_limit_seconds,
            node_memory_bytes=cost_model.node_memory_bytes,
        )
    )
    result = _labeled_index_time(
        method,
        graph,
        order,
        num_nodes,
        shared,
        dataset=dataset,
        experiment="table6",
        label=label,
    )
    return (
        result.stats.simulated_seconds,
        result.index.size_bytes() / 1024,
        _label_query_seconds(result.index, pairs, t_op),
    )


# ----------------------------------------------------------------------
# Exp 4: Fig. 5 — communication vs computation time
# ----------------------------------------------------------------------
def run_fig5_comm_comp(
    dataset_names: Sequence[str] | None = None,
    num_nodes: int = 32,
    cost_model: CostModel | None = None,
) -> ExperimentTable:
    """Exp 4: computation/communication split of DRL⁻, DRL, DRL_b."""
    if cost_model is None:
        cost_model = paper_scale_model()
    columns = []
    for alg in FIG_ALGORITHMS:
        columns += [f"{FIG_LABELS[alg]} comp", f"{FIG_LABELS[alg]} comm"]
    table = ExperimentTable(
        "Fig. 5 — Computation vs Communication Time (simulated s)", columns
    )
    for spec in _medium_specs(dataset_names):
        graph = spec.load()
        order = degree_order(graph)
        for alg in FIG_ALGORITHMS:
            label = FIG_LABELS[alg]

            def run(alg=alg, label=label):
                result = _labeled_index_time(
                    alg,
                    graph,
                    order,
                    num_nodes,
                    cost_model,
                    dataset=spec.name,
                    experiment="fig5",
                    label=label,
                )
                return result

            try:
                result = run()
            except TimeLimitExceeded:
                table.set(spec.name, f"{label} comp", Cell.timeout())
                table.set(spec.name, f"{label} comm", Cell.timeout())
                continue
            stats = result.stats
            table.set(
                spec.name,
                f"{label} comp",
                stats.computation_seconds + stats.barrier_seconds,
            )
            table.set(spec.name, f"{label} comm", stats.communication_seconds)
    return table


# ----------------------------------------------------------------------
# Exp 5: Fig. 6 — speedup vs number of nodes
# ----------------------------------------------------------------------
def run_fig6_speedup(
    dataset_names: Sequence[str] | None = None,
    node_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
    algorithms: Sequence[str] = FIG_ALGORITHMS,
    cost_model: CostModel | None = None,
) -> dict[str, ExperimentTable]:
    """Exp 5: speedup = T(1 node) / T(x nodes), per algorithm."""
    if cost_model is None:
        cost_model = paper_scale_model()
    columns = [str(x) for x in node_counts]
    tables = {
        alg: ExperimentTable(
            f"Fig. 6 — Speedup of {FIG_LABELS[alg]} vs node count",
            columns,
            precision=2,
        )
        for alg in algorithms
    }
    for spec in _medium_specs(dataset_names):
        graph = spec.load()
        order = degree_order(graph)
        for alg in algorithms:
            times: list[Cell] = []
            for nodes in node_counts:
                cell = _guard(
                    lambda nodes=nodes, alg=alg: Cell(
                        _labeled_index_time(
                            alg,
                            graph,
                            order,
                            nodes,
                            cost_model,
                            dataset=spec.name,
                            experiment="fig6",
                            label=FIG_LABELS.get(alg, alg),
                        ).stats.simulated_seconds
                    )
                )
                times.append(cell)
            base = times[node_counts.index(1)] if 1 in node_counts else times[0]
            for nodes, cell in zip(node_counts, times):
                if not base.ok:
                    tables[alg].set(spec.name, str(nodes), Cell.timeout())
                elif not cell.ok:
                    tables[alg].set(spec.name, str(nodes), cell)
                else:
                    tables[alg].set(
                        spec.name, str(nodes), base.value / cell.value
                    )
    return tables


# ----------------------------------------------------------------------
# Exp 6: Fig. 7 — scalability in graph size
# ----------------------------------------------------------------------
def run_fig7_scalability(
    dataset_names: Sequence[str] | None = None,
    fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    algorithms: Sequence[str] = FIG_ALGORITHMS,
    num_nodes: int = 32,
    cost_model: CostModel | None = None,
) -> dict[str, ExperimentTable]:
    """Exp 6: index time on test graphs with 20%..100% of the edges."""
    if cost_model is None:
        cost_model = paper_scale_model()
    columns = [f"{int(100 * f)}%" for f in fractions]
    tables = {
        alg: ExperimentTable(
            f"Fig. 7 — Index time of {FIG_LABELS[alg]} vs graph size "
            "(simulated s)",
            columns,
        )
        for alg in algorithms
    }
    for spec in _medium_specs(dataset_names):
        full = spec.load()
        for fraction, column in zip(fractions, columns):
            graph = full.edge_fraction(fraction, seed=7)
            order = degree_order(graph)
            for alg in algorithms:
                cell = _guard(
                    lambda alg=alg, column=column: Cell(
                        _labeled_index_time(
                            alg,
                            graph,
                            order,
                            num_nodes,
                            cost_model,
                            dataset=spec.name,
                            experiment="fig7",
                            label=FIG_LABELS.get(alg, alg),
                            span_attrs={"fraction": column},
                        ).stats.simulated_seconds
                    )
                )
                tables[alg].set(spec.name, column, cell)
    return tables


# ----------------------------------------------------------------------
# Exps 7-8: Figs. 8-9 — batch parameters b and k
# ----------------------------------------------------------------------
def run_fig8_batch_size(
    dataset_names: Sequence[str] | None = None,
    b_values: Sequence[float] = (1, 2, 4, 8, 16, 32, 64, 128),
    growth_factor: float = 2.0,
    num_nodes: int = 32,
    cost_model: CostModel | None = None,
) -> ExperimentTable:
    """Exp 7: DRL_b index time as the initial batch size b varies."""
    if cost_model is None:
        cost_model = paper_scale_model()
    columns = [f"b={b:g}" for b in b_values]
    table = ExperimentTable(
        "Fig. 8 — Effect of initial batch size b (simulated s)", columns
    )
    for spec in _medium_specs(dataset_names):
        graph = spec.load()
        order = degree_order(graph)
        for b, column in zip(b_values, columns):
            cell = _guard(
                lambda b=b: Cell(
                    _labeled_index_time(
                        "drl-b",
                        graph,
                        order,
                        num_nodes,
                        cost_model,
                        dataset=spec.name,
                        experiment="fig8",
                        label="DRL_b",
                        span_attrs={"b": b},
                        initial_batch_size=b,
                        growth_factor=growth_factor,
                    ).stats.simulated_seconds
                )
            )
            table.set(spec.name, column, cell)
    return table


def run_fig9_factor_k(
    dataset_names: Sequence[str] | None = None,
    k_values: Sequence[float] = (1, 1.5, 2, 2.5, 3, 3.5, 4),
    initial_batch_size: float = 2,
    num_nodes: int = 32,
    cost_model: CostModel | None = None,
) -> ExperimentTable:
    """Exp 8: DRL_b index time as the increment factor k varies."""
    if cost_model is None:
        cost_model = paper_scale_model()
    columns = [f"k={k:g}" for k in k_values]
    table = ExperimentTable(
        "Fig. 9 — Effect of increment factor k (simulated s)", columns
    )
    for spec in _medium_specs(dataset_names):
        graph = spec.load()
        order = degree_order(graph)
        for k, column in zip(k_values, columns):
            cell = _guard(
                lambda k=k: Cell(
                    _labeled_index_time(
                        "drl-b",
                        graph,
                        order,
                        num_nodes,
                        cost_model,
                        dataset=spec.name,
                        experiment="fig9",
                        label="DRL_b",
                        span_attrs={"k": k},
                        initial_batch_size=initial_batch_size,
                        growth_factor=k,
                    ).stats.simulated_seconds
                )
            )
            table.set(spec.name, column, cell)
    return table


# ----------------------------------------------------------------------
# Ablations (ours, motivated by the paper's design choices)
# ----------------------------------------------------------------------
def run_ablation_orders(
    dataset_names: Sequence[str] | None = None,
    strategies: Sequence[str] = ("degree", "out-degree", "in-degree", "random"),
    num_nodes: int = 32,
    cost_model: CostModel | None = None,
) -> tuple[ExperimentTable, ExperimentTable]:
    """DRL_b index time and size under different vertex orders.

    The paper asserts the degree product "works well in practice";
    this quantifies how much worse the alternatives are.
    """
    if cost_model is None:
        cost_model = paper_scale_model()
    columns = list(strategies)
    time_table = ExperimentTable(
        "Ablation — DRL_b index time per order strategy (simulated s)", columns
    )
    size_table = ExperimentTable(
        "Ablation — index size per order strategy (KiB)", columns, precision=1
    )
    for spec in _medium_specs(dataset_names):
        graph = spec.load()
        for strategy in strategies:
            order = ORDER_STRATEGIES[strategy](graph)
            try:
                result = _labeled_index_time(
                    "drl-b",
                    graph,
                    order,
                    num_nodes,
                    cost_model,
                    dataset=spec.name,
                    experiment="ablation-orders",
                    label="DRL_b",
                    span_attrs={"order": strategy},
                )
            except TimeLimitExceeded:
                time_table.set(spec.name, strategy, Cell.timeout())
                size_table.set(spec.name, strategy, Cell.timeout())
                continue
            time_table.set(spec.name, strategy, result.stats.simulated_seconds)
            size_table.set(spec.name, strategy, result.index.size_bytes() / 1024)
    return time_table, size_table


def run_ablation_partitioners(
    dataset_names: Sequence[str] | None = None,
    strategies: Sequence[str] = ("hash", "modulo", "range", "block"),
    num_nodes: int = 32,
    cost_model: CostModel | None = None,
) -> ExperimentTable:
    """DRL_b communication time under different vertex partitioners."""
    if cost_model is None:
        cost_model = paper_scale_model()
    columns = list(strategies)
    table = ExperimentTable(
        "Ablation — DRL_b communication seconds per partitioner", columns
    )
    for spec in _medium_specs(dataset_names):
        graph = spec.load()
        order = degree_order(graph)
        for strategy in strategies:
            partitioner = PARTITIONER_STRATEGIES[strategy](
                num_nodes, graph.num_vertices
            )
            cell = _guard(
                lambda partitioner=partitioner, strategy=strategy: Cell(
                    _labeled_index_time(
                        "drl-b",
                        graph,
                        order,
                        num_nodes,
                        cost_model,
                        dataset=spec.name,
                        experiment="ablation-partitioners",
                        label="DRL_b",
                        span_attrs={"partitioner": strategy},
                        partitioner=partitioner,
                    ).stats.communication_seconds
                )
            )
            table.set(spec.name, strategy, cell)
    return table


def run_ablation_check_pruning(
    dataset_names: Sequence[str] | None = None,
    num_nodes: int = 32,
    cost_model: CostModel | None = None,
) -> ExperimentTable:
    """DRL with and without the in-flight Check prune (Alg. 3 line 14).

    Without it, correctness is preserved by the final cleanup but the
    flood explores far more of the graph — quantifying how much work
    the inverted lists save.
    """
    if cost_model is None:
        cost_model = paper_scale_model()
    columns = ["with Check", "without Check"]
    table = ExperimentTable(
        "Ablation — DRL compute units with/without Check pruning", columns,
        precision=0,
    )
    for spec in _medium_specs(dataset_names):
        graph = spec.load()
        order = degree_order(graph)
        for pruning, column in ((True, columns[0]), (False, columns[1])):
            cell = _guard(
                lambda pruning=pruning: Cell(
                    drl_index(
                        graph,
                        order,
                        num_nodes=num_nodes,
                        cost_model=cost_model,
                        check_pruning=pruning,
                    ).stats.compute_units
                )
            )
            table.set(spec.name, column, cell)
    return table


# ----------------------------------------------------------------------
# Robustness: fault injection and recovery overhead
# ----------------------------------------------------------------------
#: The default scenario of ``run_fault_recovery``: one node dies a few
#: super-steps in, another runs 4x slow, and 1% of remote messages need
#: retransmission.  Deterministic via the embedded seed.
DEFAULT_FAULT_SPEC = "crash=1@3,straggler=2x4.0,loss=0.01,seed=42"


def run_fault_recovery(
    dataset_names: Sequence[str] | None = None,
    num_nodes: int = 32,
    cost_model: CostModel | None = None,
    fault_spec: str = DEFAULT_FAULT_SPEC,
    checkpoint_interval: int = 2,
) -> ExperimentTable:
    """Build DRL_b fault-free and under a fault plan, side by side.

    Columns: clean and faulty build times, the recovery and checkpoint
    components of the faulty build, and whether the two indexes are
    identical (they must be — 1 = identical, 0 would be a bug).
    """
    from repro.faults import FaultPlan

    if cost_model is None:
        cost_model = paper_scale_model()
    plan = FaultPlan.parse(fault_spec)
    columns = [
        "clean s", "faulty s", "recovery s", "checkpoint s", "identical"
    ]
    table = ExperimentTable(
        f"Robustness — DRL_b under faults ({plan.describe()}; "
        f"checkpoint every {checkpoint_interval})",
        columns,
        precision=6,
    )
    for spec in _medium_specs(dataset_names):
        graph = spec.load()
        order = degree_order(graph)
        clean = _guard(
            lambda: _labeled_index_time(
                "drl-b", graph, order, num_nodes, cost_model,
                dataset=spec.name, experiment="faults", label="clean",
            )
        )
        if isinstance(clean, Cell):  # failure marker
            for column in columns:
                table.set(spec.name, column, clean)
            continue
        table.set(spec.name, "clean s", clean.stats.simulated_seconds)
        clean_index = clean.index

        def _faulty() -> LabelingResult:
            return _labeled_index_time(
                "drl-b", graph, order, num_nodes, cost_model,
                dataset=spec.name, experiment="faults", label="faulty",
                faults=plan, checkpoint_interval=checkpoint_interval,
            )

        faulty = _guard(_faulty)
        if isinstance(faulty, Cell):  # failure marker
            for column in columns[1:]:
                table.set(spec.name, column, faulty)
            continue
        stats = faulty.stats
        table.set(spec.name, "faulty s", stats.simulated_seconds)
        table.set(spec.name, "recovery s", stats.recovery_seconds)
        table.set(spec.name, "checkpoint s", stats.checkpoint_seconds)
        table.set(
            spec.name, "identical", float(faulty.index == clean_index)
        )
    return table
