"""Benchmark baseline store and regression gate.

``repro bench EXPERIMENT --save-baseline`` serializes the experiment's
tables into ``benchmarks/baselines/EXPERIMENT.json``; a later
``--check-baseline`` run compares every cell against the stored value
and fails (exit non-zero, named metric in the message) on deviation
beyond a relative threshold.

The simulator's clock is deterministic, so on an unchanged tree every
metric reproduces bit-for-bit and the default 10 % threshold only has
to absorb intentional model tweaks.  *Improvements* beyond the
threshold fail too — a faster simulated time means the cost model or
the algorithm changed, and the baseline must be re-saved to prove it
was on purpose.

Baseline file format (see ``docs/observability.md``)::

    {
      "version": 1,
      "experiment": "fig5",
      "metrics": {
        "<table title>/<row>/<column>": 0.0123,     # plain value
        "<table title>/<row>/<column>": {"marker": "INF"}
      }
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.results import ExperimentTable, atomic_write_text
from repro.errors import ReproError

BASELINE_VERSION = 1

#: Default relative deviation tolerated before a metric fails the gate.
DEFAULT_THRESHOLD = 0.1

#: Default location of the committed baseline files.
BASELINE_DIR = Path("benchmarks") / "baselines"


class BaselineError(ReproError):
    """The baseline file is missing, unreadable, or incompatible."""


def default_baseline_path(experiment: str, root: Path | None = None) -> Path:
    """The conventional baseline path for ``experiment``."""
    base = Path(root) if root is not None else BASELINE_DIR
    return base / f"{experiment}.json"


def baseline_from_tables(
    experiment: str, tables: list[ExperimentTable]
) -> dict:
    """Flatten tables into the baseline JSON structure.

    Metric keys are ``"<table title>/<row>/<column>"``; marker cells
    (``INF`` timeouts, ``-`` unavailability) are stored as
    ``{"marker": ...}`` so the gate can detect a metric *becoming* a
    timeout — usually the worst regression of all.
    """
    metrics: dict[str, object] = {}
    for table in tables:
        for row in table.rows:
            for column in table.columns:
                cell = table.get(row, column)
                if cell.marker is not None:
                    value: object = {"marker": cell.marker}
                elif cell.value is not None:
                    value = cell.value
                else:
                    continue
                metrics[f"{table.title}/{row}/{column}"] = value
    return {
        "version": BASELINE_VERSION,
        "experiment": experiment,
        "metrics": metrics,
    }


def save_baseline(
    experiment: str,
    tables: list[ExperimentTable],
    path: str | Path,
) -> Path:
    """Write the baseline for ``tables`` to ``path`` (atomically)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = baseline_from_tables(experiment, tables)
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: str | Path) -> dict:
    """Read and validate a baseline file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise BaselineError(
            f"no baseline at {path} — run with --save-baseline first"
        ) from None
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "metrics" not in payload:
        raise BaselineError(f"{path}: not a baseline file (no 'metrics')")
    if payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"{path}: baseline version {payload.get('version')!r} "
            f"not supported (expected {BASELINE_VERSION})"
        )
    return payload


@dataclass
class BaselineComparison:
    """Outcome of one gate run."""

    checked: int = 0
    #: Human-readable failure lines, each naming the metric.
    failures: list[str] = field(default_factory=list)
    #: Metrics present now but absent from the baseline (informational).
    new_metrics: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"baseline gate: {self.checked} metric(s) checked, "
            f"{len(self.failures)} failure(s)"
        ]
        lines += self.failures
        if self.new_metrics:
            lines.append(
                f"note: {len(self.new_metrics)} new metric(s) not in the "
                f"baseline (re-save to track them): "
                + ", ".join(self.new_metrics[:5])
                + (", ..." if len(self.new_metrics) > 5 else "")
            )
        return "\n".join(lines)


def compare_to_baseline(
    baseline: dict,
    tables: list[ExperimentTable],
    threshold: float = DEFAULT_THRESHOLD,
) -> BaselineComparison:
    """Gate the current ``tables`` against a loaded ``baseline``.

    A metric fails when it deviates from the stored value by more than
    ``threshold`` relative (against the stored magnitude; stored zeros
    require exact zeros), when its marker status changed in either
    direction, or when it disappeared from the current run.  The
    failure message names the metric and both values, labelling the
    direction (``regressed`` vs ``improved``).
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    expected = dict(baseline["metrics"])
    result = BaselineComparison()
    current = baseline_from_tables(baseline.get("experiment", "?"), tables)
    for key, now in current["metrics"].items():
        want = expected.pop(key, None)
        if want is None:
            result.new_metrics.append(key)
            continue
        result.checked += 1
        want_marker = want.get("marker") if isinstance(want, dict) else None
        now_marker = now.get("marker") if isinstance(now, dict) else None
        if want_marker or now_marker:
            if want_marker != now_marker:
                result.failures.append(
                    f"FAIL {key}: marker changed "
                    f"{want_marker or want} -> {now_marker or now}"
                )
            continue
        if want == 0:
            deviation = 0.0 if now == 0 else float("inf")
        else:
            deviation = (now - want) / abs(want)
        if abs(deviation) > threshold:
            direction = "regressed" if deviation > 0 else "improved"
            result.failures.append(
                f"FAIL {key}: {direction} {deviation:+.1%} "
                f"(baseline {want:.6g}, now {now:.6g}, "
                f"threshold ±{threshold:.0%})"
            )
    for key in expected:
        result.checked += 1
        result.failures.append(f"FAIL {key}: missing from the current run")
    return result
