"""Result containers and paper-style text rendering."""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

#: Stack of active :func:`capture_tables` buckets; every
#: :class:`ExperimentTable` created while a bucket is open registers
#: itself there, so an interrupted benchmark can flush partial results.
_CAPTURE_STACK: list[list["ExperimentTable"]] = []


@contextmanager
def capture_tables():
    """Collect every :class:`ExperimentTable` created inside the block.

    Used by the CLI's ``bench`` command to recover partially filled
    tables when the run is interrupted (Ctrl-C): the tables fill cell
    by cell as experiments run, so whatever was measured before the
    interrupt is still printable.
    """
    bucket: list[ExperimentTable] = []
    _CAPTURE_STACK.append(bucket)
    try:
        yield bucket
    finally:
        _CAPTURE_STACK.remove(bucket)


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    A crash or interrupt mid-write leaves either the previous file or
    the complete new one — never a truncated result file.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


@dataclass(frozen=True)
class Cell:
    """One measurement: a value, or a failure marker.

    ``"-"`` means unavailable (out of memory at paper scale, Table VI);
    ``"INF"`` means the simulated cut-off was exceeded.
    """

    value: float | None = None
    marker: str | None = None

    @classmethod
    def unavailable(cls) -> "Cell":
        return cls(marker="-")

    @classmethod
    def timeout(cls) -> "Cell":
        return cls(marker="INF")

    @property
    def ok(self) -> bool:
        """True when the cell holds a real measurement."""
        return self.marker is None

    def format(self, precision: int = 4, scientific: bool = False) -> str:
        if self.marker is not None:
            return self.marker
        if self.value is None:
            return ""
        if scientific:
            return f"{self.value:.2e}"
        return f"{self.value:.{precision}f}"


@dataclass
class ExperimentTable:
    """A named grid of cells keyed by (row, column)."""

    title: str
    columns: list[str]
    rows: list[str] = field(default_factory=list)
    cells: dict[tuple[str, str], Cell] = field(default_factory=dict)
    scientific: bool = False
    precision: int = 4

    def __post_init__(self) -> None:
        for bucket in _CAPTURE_STACK:
            bucket.append(self)

    def set(self, row: str, column: str, cell: Cell | float) -> None:
        """Record a measurement (floats are wrapped automatically)."""
        if column not in self.columns:
            raise KeyError(f"unknown column {column!r}")
        if row not in self.rows:
            self.rows.append(row)
        if not isinstance(cell, Cell):
            cell = Cell(value=float(cell))
        self.cells[(row, column)] = cell

    def get(self, row: str, column: str) -> Cell:
        """Fetch a cell (empty cell when missing)."""
        return self.cells.get((row, column), Cell())

    def column_values(self, column: str) -> list[float]:
        """All real (non-marker) values in one column, row order."""
        return [
            cell.value
            for row in self.rows
            if (cell := self.get(row, column)).ok and cell.value is not None
        ]

    def render(self) -> str:
        """ASCII rendering in the style of the paper's tables."""
        header = ["Name"] + list(self.columns)
        body = [
            [row]
            + [
                self.get(row, col).format(self.precision, self.scientific)
                for col in self.columns
            ]
            for row in self.rows
        ]
        widths = [
            max(len(line[i]) for line in [header] + body)
            for i in range(len(header))
        ]
        rule = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append(rule)
        for line in body:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(line, widths)))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavored markdown table."""
        header = ["Name"] + list(self.columns)
        lines = ["| " + " | ".join(header) + " |"]
        lines.append("|" + "|".join("---" for _ in header) + "|")
        for row in self.rows:
            cells = [row] + [
                self.get(row, col).format(self.precision, self.scientific)
                for col in self.columns
            ]
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV with markers rendered as empty cells plus a marker column
        convention: failed cells contain their marker string."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["name"] + list(self.columns))
        for row in self.rows:
            out = [row]
            for col in self.columns:
                cell = self.get(row, col)
                if cell.marker is not None:
                    out.append(cell.marker)
                elif cell.value is None:
                    out.append("")
                else:
                    out.append(repr(cell.value))
            writer.writerow(out)
        return buffer.getvalue()

    def __str__(self) -> str:
        return self.render()
