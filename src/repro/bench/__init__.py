"""Experiment harness: one runner per paper table/figure."""

from repro.bench.harness import (
    run_ablation_check_pruning,
    run_ablation_orders,
    run_ablation_partitioners,
    run_fig5_comm_comp,
    run_fig6_speedup,
    run_fig7_scalability,
    run_fig8_batch_size,
    run_fault_recovery,
    run_fig9_factor_k,
    run_table6,
)
from repro.bench.results import (
    Cell,
    ExperimentTable,
    atomic_write_text,
    capture_tables,
)

__all__ = [
    "Cell",
    "ExperimentTable",
    "atomic_write_text",
    "capture_tables",
    "run_ablation_check_pruning",
    "run_ablation_orders",
    "run_ablation_partitioners",
    "run_fig5_comm_comp",
    "run_fig6_speedup",
    "run_fig7_scalability",
    "run_fig8_batch_size",
    "run_fault_recovery",
    "run_fig9_factor_k",
    "run_table6",
]
