"""DRL_b — batch labeling (Algorithm 4, Section IV).

Batches of decreasing order run sequentially; inside a batch, vertices
label in parallel with DRL's machinery plus two extra prunes driven by
the *batch label sets* accumulated from previous batches:

- a source ``v`` with ``L^{V_i}_out(v) ∩ L^{V_i}_in(v) ≠ ∅`` is skipped
  entirely (a higher-order vertex closes a cycle through it, so all of
  its backward sets are empty);
- a flood from ``v`` is blocked at ``w`` when
  ``L^{V_i}_out(v) ∩ L^{V_i}_in(w) ≠ ∅`` (a previous batch's vertex is
  on the ``v``-``w`` walk).

The early batches contain the graph's dominant hubs, so their labels
prune most of the search space of later (much larger) batches — the
trade-off between TOL's pruning power and DRL's parallelism.
"""

from __future__ import annotations

from repro.core.batching import batch_sequence
from repro.core.drl import DrlFloodProgram
from repro.core.labels import LabelingResult, ReachabilityIndex
from repro.faults import FaultPlan
from repro.graph.digraph import DiGraph
from repro.graph.order import VertexOrder, degree_order
from repro.graph.partition import Partitioner
from repro.pregel.cost_model import CostModel
from repro.pregel.engine import Cluster
from repro.pregel.metrics import RunStats
from repro.telemetry import current_metrics, enabled, trace_span


def drl_batch_index(
    graph: DiGraph,
    order: VertexOrder | None = None,
    num_nodes: int = 32,
    initial_batch_size: float = 2,
    growth_factor: float = 2.0,
    cost_model: CostModel | None = None,
    partitioner: Partitioner | None = None,
    check_pruning: bool = True,
    combine_messages: bool = False,
    batches: list[list[int]] | None = None,
    faults: FaultPlan | None = None,
    checkpoint_interval: int | None = None,
    node_timeline: bool = False,
    engine: str = "sim",
    workers: int | None = None,
) -> LabelingResult:
    """Build the TOL index with DRL_b on a cluster.

    Parameters
    ----------
    graph, order, num_nodes, cost_model, partitioner:
        As in :func:`~repro.core.drl.drl_index`.
    initial_batch_size, growth_factor:
        The paper's ``b`` and ``k`` (both default 2; see Exps 7-8).
    check_pruning, combine_messages:
        Forwarded to the flood program (ablation hooks).
    batches:
        Explicit batch sequence overriding ``b``/``k`` (must satisfy
        Definition 7; validated by the flood's correctness, not here).
    faults, checkpoint_interval:
        Fault plan and checkpoint cadence (see :mod:`repro.faults`).
        All batch runs share one cluster, so each crash event fires at
        most once across the whole build and a node lost in batch ``i``
        stays dead for batches ``i+1, ...``.
    node_timeline:
        Record the per-node breakdown of every batch into
        ``stats.node_timeline`` (see :mod:`repro.profiling`); batches
        append to one timeline, so super-step numbers restart per batch.
    engine, workers:
        Execution engine selection (``"sim"`` or ``"mp"``) and the mp
        engine's worker-process count; see :mod:`repro.pregel.mp`.
        Every batch re-forks the workers from the master's accumulated
        label sets, so batch pruning sees exactly the simulator's state.
    """
    if order is None:
        order = degree_order(graph)
    if batches is None:
        batches = batch_sequence(order, initial_batch_size, growth_factor)
    n = graph.num_vertices
    cluster = Cluster(
        num_nodes=num_nodes,
        cost_model=cost_model,
        partitioner=partitioner,
        faults=faults,
        checkpoint_interval=checkpoint_interval,
        engine=engine,
        workers=workers,
    )
    in_label_sets: list[set[int]] = [set() for _ in range(n)]
    out_label_sets: list[set[int]] = [set() for _ in range(n)]
    stats = RunStats(num_nodes=cluster.num_nodes)
    stats.per_node_units = [0] * cluster.num_nodes

    with trace_span(
        "drl_b.build",
        vertices=n,
        num_nodes=cluster.num_nodes,
        batches=len(batches),
    ) as span:
        for number, batch in enumerate(batches, 1):
            program = DrlFloodProgram(
                graph,
                order,
                sources=batch,
                in_label_sets=in_label_sets,
                out_label_sets=out_label_sets,
                check_pruning=check_pruning,
                combine_messages=combine_messages,
            )
            with trace_span(
                "drl_b.batch", batch=number, sources=len(batch)
            ) as batch_span:
                before = stats.simulated_seconds
                cluster.run(graph, program, stats=stats, node_timeline=node_timeline)
                # Fold the surviving visits into the accumulated label sets
                # (Alg. 4 line 14: they become the next batch's L^{V_{i+1}}).
                for w in range(n):
                    in_label_sets[w] |= program.fwd_set[w]
                    out_label_sets[w] |= program.rev_set[w]
                batch_span.add_simulated(stats.simulated_seconds - before)
            if enabled():
                entries = sum(len(s) for s in in_label_sets) + sum(
                    len(s) for s in out_label_sets
                )
                current_metrics().gauge("drl_b.label_entries").set(entries)
        with trace_span("drl_b.collection"):
            index = ReachabilityIndex.from_label_lists(
                in_label_sets, out_label_sets
            )
        span.add_simulated(stats.simulated_seconds)
        span.set(entries=index.num_entries)
    return LabelingResult(index=index, stats=stats)
