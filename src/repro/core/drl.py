"""DRL — distributed reachability labeling (Algorithm 3).

One vertex-centric program floods *trimmed BFSs from every source at
once*, in both directions simultaneously:

- forward messages follow out-edges of ``G`` and compute the backward
  in-label sets (``fwd_set[w]`` ends up equal to ``L_in(w)``);
- reverse messages follow in-edges (i.e. run on ``Ḡ``) and compute the
  backward out-label sets (``rev_set[w]`` ends up equal to ``L_out(w)``).

Each direction's *inverted lists* (Definition 6) are the other
direction's visitor lists: ``IBFS_low(w) = rev_list[w]`` refines the
forward direction, and ``fwd_list[w]`` refines the reverse direction.
The lists are shared cluster-wide (``publish_entries`` charges the
replication traffic, Lemma 7) with BSP visibility: a ``Check`` during
super-step ``s`` sees entries published at barrier ``s - 1``; the exact
post-pass (Alg. 3 lines 19-20) then removes every survivor that a fully
published ``Check`` eliminates.

The same program, parameterized with batch label sets and a restricted
source set, implements a DRL_b batch (Algorithm 4); see
:mod:`repro.core.drl_batch`.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.labels import LabelingResult, ReachabilityIndex
from repro.faults import FaultPlan
from repro.graph.digraph import DiGraph
from repro.graph.order import VertexOrder, degree_order
from repro.graph.partition import Partitioner
from repro.pregel.cost_model import CostModel
from repro.pregel.engine import Cluster, ComputeContext, FinalizeContext
from repro.pregel.vertex_program import VertexProgram
from repro.telemetry import trace_span

FORWARD = 0
REVERSE = 1


class DrlFloodProgram(VertexProgram):
    """All-sources bidirectional trimmed-BFS flooding with refinement.

    Parameters
    ----------
    graph:
        The input graph ``G``.
    order:
        Total vertex order.
    sources:
        Vertices that initiate BFSs this run (a DRL_b batch); ``None``
        labels every vertex (plain DRL).
    in_label_sets / out_label_sets:
        Accumulated batch label sets ``L^{V_i}_in`` / ``L^{V_i}_out``
        from previous batches, used for Algorithm 4's pruning; ``None``
        disables batch pruning (plain DRL).
    check_pruning:
        Apply the opportunistic ``Check`` prune during the flood
        (Alg. 3 line 14).  Disabling it only costs work — the final
        cleanup still produces the exact index — and is exposed for the
        ablation benchmark.
    combine_messages:
        Enable the Pregel message combiner (drop duplicate messages per
        sending node per super-step).  Sound here because duplicate
        ``(source, direction)`` deliveries are no-ops; exposed for the
        combiner ablation.
    """

    mp_supported = True

    def __init__(
        self,
        graph: DiGraph,
        order: VertexOrder,
        sources: Sequence[int] | None = None,
        in_label_sets: list[set[int]] | None = None,
        out_label_sets: list[set[int]] | None = None,
        check_pruning: bool = True,
        combine_messages: bool = False,
    ):
        self.combine_duplicates = combine_messages
        n = graph.num_vertices
        self._graph = graph
        self._rank = order.ranks
        self._check_pruning = check_pruning
        self._in_label_sets = in_label_sets
        self._out_label_sets = out_label_sets
        if sources is None:
            self._is_source = None
        else:
            self._is_source = bytearray(n)
            for v in sources:
                self._is_source[v] = 1
        # Local visit status (w's own state; self-marked for sources).
        self.fwd_set: list[set[int]] = [set() for _ in range(n)]
        self.rev_set: list[set[int]] = [set() for _ in range(n)]
        # Published visitor lists for remote Check() reads (no self-marks).
        self._fwd_list: list[list[int]] = [[] for _ in range(n)]
        self._rev_list: list[list[int]] = [[] for _ in range(n)]
        self._fwd_pub = [0] * n
        self._rev_pub = [0] * n
        self._dirty_fwd: set[int] = set()
        self._dirty_rev: set[int] = set()

    # ------------------------------------------------------------------
    def compute(self, ctx: ComputeContext, w: int, messages) -> None:
        if ctx.superstep == 1:
            self._start_source(ctx, w)
            return
        for source, direction in messages:
            if direction == FORWARD:
                self._process(ctx, w, source, FORWARD)
            else:
                self._process(ctx, w, source, REVERSE)

    def _start_source(self, ctx: ComputeContext, v: int) -> None:
        if self._is_source is not None and not self._is_source[v]:
            return
        ctx.charge()
        if self._in_label_sets is not None:
            # Alg. 4 line 6: a higher-order vertex closes a cycle
            # through v, so every backward set of v is empty — skip.
            if self._labels_intersect(
                ctx, self._out_label_sets[v], self._in_label_sets[v]
            ):
                return
            # Alg. 4 line 8: share v's batch label sets cluster-wide.
            ctx.publish_entries(
                len(self._in_label_sets[v]) + len(self._out_label_sets[v])
            )
        self.fwd_set[v].add(v)
        self.rev_set[v].add(v)
        graph = self._graph
        for x in graph.out_neighbors(v):
            ctx.charge()
            ctx.send(x, (v, FORWARD))
        for x in graph.in_neighbors(v):
            ctx.charge()
            ctx.send(x, (v, REVERSE))

    def _process(self, ctx: ComputeContext, w: int, v: int, direction: int) -> None:
        if direction == FORWARD:
            status, lists = self.fwd_set, self._fwd_list
            dirty = self._dirty_fwd
        else:
            status, lists = self.rev_set, self._rev_list
            dirty = self._dirty_rev
        if v in status[w]:
            return  # visited before (Alg. 3 line 12)
        if self._rank[v] >= self._rank[w]:
            return  # ord(v) < ord(w): w blocks this branch (trimmed BFS)
        if self._in_label_sets is not None and self._batch_pruned(
            ctx, w, v, direction
        ):
            return  # a previous batch's vertex lies on the v-w walk
        if self._check_pruning and self._check(ctx, w, v, direction):
            return  # Alg. 3 line 14: a current-run vertex lies on it
        status[w].add(v)
        lists[w].append(v)
        dirty.add(w)
        ctx.publish_entries()  # replicate the new inverted-list entry
        graph = self._graph
        neighbors = (
            graph.out_neighbors(w) if direction == FORWARD else graph.in_neighbors(w)
        )
        for x in neighbors:
            ctx.charge()
            ctx.send(x, (v, direction))

    def _labels_intersect(self, ctx, a: set[int], b: set[int]) -> bool:
        if len(b) < len(a):
            a, b = b, a
        ctx.charge(len(a) + 1)
        return any(x in b for x in a)

    def _batch_pruned(self, ctx, w: int, v: int, direction: int) -> bool:
        """Alg. 4 line 12: is a previous-batch vertex on the v-w walk?"""
        if direction == FORWARD:
            return self._labels_intersect(
                ctx, self._out_label_sets[v], self._in_label_sets[w]
            )
        return self._labels_intersect(
            ctx, self._in_label_sets[v], self._out_label_sets[w]
        )

    def _check(self, ctx, w: int, v: int, direction: int) -> bool:
        """Procedure Check(v, w): BSP-visible inverted-list refinement."""
        if direction == FORWARD:
            inverted, limit = self._rev_list[v], self._rev_pub[v]
            local = self.fwd_set[w]
        else:
            inverted, limit = self._fwd_list[v], self._fwd_pub[v]
            local = self.rev_set[w]
        ctx.charge(limit + 1)
        for i in range(limit):
            if inverted[i] in local:
                return True
        return False

    def on_barrier(self, superstep: int) -> None:
        # Publish this super-step's new inverted-list entries.
        for w in self._dirty_fwd:
            self._fwd_pub[w] = len(self._fwd_list[w])
        for w in self._dirty_rev:
            self._rev_pub[w] = len(self._rev_list[w])
        self._dirty_fwd.clear()
        self._dirty_rev.clear()

    def finalize_vertices(self, fctx: FinalizeContext, vertices) -> None:
        """Alg. 3 lines 19-20: exact cleanup on fully published lists.

        In-place removal is sound: an eliminated pair always has a
        *maximal* witness (the highest-order vertex on any v-w walk),
        and a maximal witness can never itself be eliminated, so later
        Checks never miss their witness.  Per-vertex by construction —
        ``w``'s cleanup touches only ``w``'s sets plus the (read-only,
        fully published) inverted lists — so the multiprocessing engine
        splits it across workers.
        """
        for w in vertices:
            self._cleanup_vertex(fctx, w, self.fwd_set[w], self._rev_list)
            self._cleanup_vertex(fctx, w, self.rev_set[w], self._fwd_list)

    # -- multiprocessing-engine hooks ----------------------------------
    def mp_publish_delta(self):
        if not self._dirty_fwd and not self._dirty_rev:
            return None
        return (
            [
                (w, self._fwd_list[w][self._fwd_pub[w]:])
                for w in sorted(self._dirty_fwd)
            ],
            [
                (w, self._rev_list[w][self._rev_pub[w]:])
                for w in sorted(self._dirty_rev)
            ],
        )

    def mp_apply_published(self, delta) -> None:
        # Only the owner of w ever appends to list[w], so a replica that
        # already holds entries past the published watermark must be the
        # producer itself — skip the extend, keep the dirty mark so
        # on_barrier() advances every replica's watermark identically.
        for w, entries in delta[0]:
            if len(self._fwd_list[w]) == self._fwd_pub[w]:
                self._fwd_list[w].extend(entries)
            self._dirty_fwd.add(w)
        for w, entries in delta[1]:
            if len(self._rev_list[w]) == self._rev_pub[w]:
                self._rev_list[w].extend(entries)
            self._dirty_rev.add(w)

    def mp_collect(self, vertices):
        return [(w, self.fwd_set[w], self.rev_set[w]) for w in vertices]

    def mp_merge(self, collected) -> None:
        for w, fwd, rev in collected:
            self.fwd_set[w] = fwd
            self.rev_set[w] = rev

    @staticmethod
    def _cleanup_vertex(
        fctx: FinalizeContext,
        w: int,
        local: set[int],
        inverted: list[list[int]],
    ) -> None:
        for v in sorted(local):
            witnesses = inverted[v]
            fctx.charge(w, len(witnesses) + 1)
            for u in witnesses:
                if u in local:
                    local.discard(v)
                    break


def inverted_list_stats(
    graph: DiGraph,
    order: VertexOrder | None = None,
    num_nodes: int = 32,
    cost_model: CostModel | None = None,
) -> dict[str, float]:
    """Measure the inverted lists' sizes after a DRL run.

    Reproduces the paper's Section III-D remark: "the average size of
    ``IBFS_low(v)`` of each vertex ``v`` is less than one", which is why
    sharing the lists is cheap (Lemma 7).  Returns average and maximum
    sizes for both directions' lists.
    """
    if order is None:
        order = degree_order(graph)
    program = DrlFloodProgram(graph, order)
    Cluster(num_nodes=num_nodes, cost_model=cost_model).run(graph, program)
    n = max(1, graph.num_vertices)
    rev_sizes = [len(lst) for lst in program._rev_list]
    fwd_sizes = [len(lst) for lst in program._fwd_list]
    return {
        "avg_ibfs": sum(rev_sizes) / n,
        "max_ibfs": max(rev_sizes, default=0),
        "avg_forward": sum(fwd_sizes) / n,
        "max_forward": max(fwd_sizes, default=0),
    }


def drl_index(
    graph: DiGraph,
    order: VertexOrder | None = None,
    num_nodes: int = 32,
    cost_model: CostModel | None = None,
    partitioner: Partitioner | None = None,
    check_pruning: bool = True,
    combine_messages: bool = False,
    faults: FaultPlan | None = None,
    checkpoint_interval: int | None = None,
    node_timeline: bool = False,
    engine: str = "sim",
    workers: int | None = None,
) -> LabelingResult:
    """Build the TOL index with DRL (Algorithm 3) on a cluster.

    Returns the index together with the run's cost accounting.  With a
    ``faults`` plan (see :mod:`repro.faults`) the build rides out the
    injected failures and still produces the identical index; recovery
    overhead lands in the returned stats.  ``node_timeline=True``
    records the per-node breakdown into ``stats.node_timeline`` (see
    :mod:`repro.profiling`).  ``engine="mp"`` runs the flood across
    ``workers`` real processes (identical index and simulated-clock
    accounting, faster wall clock; see :mod:`repro.pregel.mp`).
    """
    if order is None:
        order = degree_order(graph)
    program = DrlFloodProgram(
        graph,
        order,
        check_pruning=check_pruning,
        combine_messages=combine_messages,
    )
    cluster = Cluster(
        num_nodes=num_nodes,
        cost_model=cost_model,
        partitioner=partitioner,
        faults=faults,
        checkpoint_interval=checkpoint_interval,
        engine=engine,
        workers=workers,
    )
    with trace_span(
        "drl.build", vertices=graph.num_vertices, num_nodes=num_nodes
    ) as span:
        with trace_span("drl.flood") as flood:
            stats = cluster.run(graph, program, node_timeline=node_timeline)
            flood.add_simulated(stats.simulated_seconds)
        with trace_span("drl.collection"):
            index = ReachabilityIndex.from_label_lists(
                program.fwd_set, program.rev_set
            )
        span.add_simulated(stats.simulated_seconds)
        span.set(entries=index.num_entries)
    return LabelingResult(index=index, stats=stats)
