"""Batch sequences for batch labeling (Section IV, Definition 7).

A batch sequence ``[V_1, .., V_g]`` partitions the vertices so that
every vertex in ``V_i`` has higher order than every vertex in ``V_j``
for ``i < j``.  The paper generates it geometrically: the first batch
holds the ``b`` highest-order vertices, and each subsequent batch is
``k`` times larger (``b = k = 2`` by default; Exp 7/8 sweep both).

``batch_size = 1`` for every batch degenerates to TOL's fully serial
schedule; a single batch of ``|V|`` vertices is plain DRL.
"""

from __future__ import annotations

from repro.graph.order import VertexOrder


def batch_sequence(
    order: VertexOrder,
    initial_size: float = 2,
    growth_factor: float = 2.0,
) -> list[list[int]]:
    """Split vertices into geometric batches of decreasing order.

    Parameters
    ----------
    order:
        The total vertex order; batch 1 takes its highest ranks.
    initial_size:
        The paper's ``b`` (default 2).  Must be at least 1.
    growth_factor:
        The paper's ``k`` (default 2).  Must be at least 1; ``k = 1``
        keeps every batch at ``b`` vertices (the pathological case of
        Exp 8).

    Returns
    -------
    list[list[int]]
        Batches of vertex ids, each sorted by decreasing order.
    """
    if initial_size < 1:
        raise ValueError(f"initial batch size must be >= 1, got {initial_size}")
    if growth_factor < 1:
        raise ValueError(f"growth factor must be >= 1, got {growth_factor}")
    n = len(order)
    batches: list[list[int]] = []
    size = float(initial_size)
    taken = 0
    while taken < n:
        count = max(1, int(size))
        batch = [order.vertex_at_rank(r) for r in range(taken, min(taken + count, n))]
        batches.append(batch)
        taken += len(batch)
        size *= growth_factor
    return batches


def validate_batch_sequence(
    batches: list[list[int]], order: VertexOrder
) -> None:
    """Assert Definition 7: disjoint cover with decreasing order.

    Raises ``ValueError`` on violation; used by tests and by callers
    that supply hand-built sequences.
    """
    seen: set[int] = set()
    previous_worst = -1  # rank of the lowest-order vertex so far
    for i, batch in enumerate(batches):
        if not batch:
            raise ValueError(f"batch {i} is empty")
        ranks = [order.rank(v) for v in batch]
        if min(ranks) <= previous_worst:
            raise ValueError(
                f"batch {i} contains a vertex of higher order than batch {i - 1}"
            )
        previous_worst = max(ranks)
        for v in batch:
            if v in seen:
                raise ValueError(f"vertex {v} appears in two batches")
            seen.add(v)
    if len(seen) != len(order):
        raise ValueError("batches do not cover every vertex")
