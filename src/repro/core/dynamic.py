"""Dynamic maintenance of the TOL index under online updates.

The paper defers "maintaining indexes on distributed dynamic graphs" to
future work but inherits the setting from TOL (Zhu et al., SIGMOD'14),
whose index is explicitly designed for dynamic graphs.  This module
provides a *centralized* dynamic index with exact semantics:

**The vertex order is explicit at all times** (TOL's total-order
approach): after every applied update,
:meth:`DynamicReachabilityIndex.snapshot` is guaranteed equal to
``tol_index(current_graph(), order)`` for the *current* order.  The
order changes only through two operations — :meth:`add_node` appends
the new vertex at the tail, and :meth:`promote` moves one vertex
hub-ward (TOL's "butterfly" rewrite) — so "the TOL index" stays
well-defined throughout.

Update algorithms
-----------------
*Insertion* ``(u, v)`` uses resumed trimmed BFSs: every hub
``a ∈ L_in(u)`` resumes its forward BFS from ``v`` and every hub
``b ∈ L_out(v)`` resumes its backward BFS from ``u``, with the
order-respecting prune (block at ``w`` whenever a higher-order hub
``h`` with ``a → h → w`` is already indexed).  This yields a *sound
superset* of the exact index that still contains every exact entry; a
targeted stale-entry sweep then removes newly dominated entries.  The
sweep cannot remove a valid entry: its criterion (∃ higher-order
``h ∈ L_out(a) ∩ L_in(w)``) only requires the witness entries to be
*sound*, and any such witness certifies a real higher-order walk,
which by Theorem 1 makes ``(a, w)`` invalid.

*Deletion* ``(u, v)`` recomputes the backward label sets of every
vertex that could reach ``u`` (forward side) or be reached from ``v``
(backward side) — the only vertices whose Theorem 1 status can change —
using the basic labeling method on the new graph.  When the affected
set exceeds ``rebuild_fraction`` of the graph, a full rebuild is
cheaper and is used instead.

*Node addition* appends a fresh vertex id at the **tail of the order**
(lowest priority).  An isolated tail vertex provably costs nothing:
its TOL round reaches only itself, and no other round can reach it, so
its labels are exactly ``{v}``/``{v}`` and every other label set is
untouched.

*Node deletion* removes every incident edge at once (one recompute,
not one per edge) and leaves the id behind as an isolated **tombstone**
whose labels are ``{v}``/``{v}`` — ids are never recycled, so shard
maps, caches, and replicas keyed by vertex id stay valid.  Mutating a
tombstone raises; querying one is permitted (it is simply isolated).

*Order upgrade* (:meth:`promote`) is the TOL butterfly rewrite: moving
``v`` from rank ``r_old`` up to ``r_new < r_old`` can only (a) *grow*
``v``'s own coverage (fewer dominators once ``v`` outranks the band it
jumped), and (b) *invalidate* entries of the **band** hubs ``h`` it
overtook where ``h → v → w`` now routes through the higher hub ``v``;
every other entry is exactly as before.  So the rewrite is one pair of
full pruned BFSs from ``v`` under the new order (the grow side) plus a
band-restricted domination sweep (the shrink side) — no rebuild.

When constructed with a ``drift_threshold``, the index watches how far
each updated vertex's *degree rank* (its position under the paper's
``(d_in+1)·(d_out+1)`` order on **current** degrees) has drifted above
its frozen rank, and promotes it automatically once the drift exceeds
the threshold — the online answer to "the construction-time order goes
stale as the graph evolves and labels fatten".
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.core.labels import ReachabilityIndex
from repro.graph.digraph import DiGraph
from repro.graph.order import VertexOrder, degree_order

#: Update operations a :class:`DynamicReachabilityIndex` can apply and
#: notify listeners about, in ``(op, u, v)`` shape.  For ``add_node``
#: and ``delete_node`` both payload slots carry the vertex id; for
#: ``promote`` the payload is ``(vertex, new_rank)``.
UPDATE_OPS = ("insert", "delete", "add_node", "delete_node", "promote")


class DynamicReachabilityIndex:
    """A TOL index that stays exact under online graph updates.

    Parameters
    ----------
    graph:
        Initial graph; its edges seed the mutable adjacency.
    order:
        Initial total order (defaults to the *initial* graph's degree
        order).  It changes only via :meth:`add_node` (tail append) and
        :meth:`promote` (hub-ward move); :attr:`order` always exposes
        the current one.
    rebuild_fraction:
        Deletion falls back to a full rebuild when the affected vertex
        set exceeds this fraction of all vertices.  Per-vertex
        recomputation costs several BFSs, so the break-even point is
        low (default 10%); hub-dominated graphs, where most vertices
        reach the deleted edge, effectively always rebuild on deletion.
    drift_threshold:
        When set, every applied edge update checks its endpoints'
        degree-rank drift (:meth:`drift`) and promotes a vertex whose
        frozen rank lags its current degree rank by more than this many
        positions.  ``None`` (the default) disables automatic upgrades;
        :meth:`promote` stays available either way.
    """

    def __init__(
        self,
        graph: DiGraph,
        order: VertexOrder | None = None,
        rebuild_fraction: float = 0.1,
        drift_threshold: int | None = None,
    ):
        if order is None:
            order = degree_order(graph)
        if len(order) != graph.num_vertices:
            raise ValueError("order does not cover the graph's vertices")
        if not 0.0 < rebuild_fraction <= 1.0:
            raise ValueError("rebuild_fraction must be in (0, 1]")
        if drift_threshold is not None and drift_threshold < 1:
            raise ValueError("drift_threshold must be >= 1 (or None)")
        n = graph.num_vertices
        self._n = n
        self._rank = order.ranks
        self._order = order
        self._rebuild_fraction = rebuild_fraction
        self._drift_threshold = drift_threshold
        self._alive = [True] * n
        self._out_adj: list[set[int]] = [set() for _ in range(n)]
        self._in_adj: list[set[int]] = [set() for _ in range(n)]
        for a, b in graph.edges():
            self._out_adj[a].add(b)
            self._in_adj[b].add(a)
        # Label sets: in_labels[w] = L_in(w), out_labels[w] = L_out(w).
        self.in_labels: list[set[int]] = [set() for _ in range(n)]
        self.out_labels: list[set[int]] = [set() for _ in range(n)]
        self._listeners: list = []
        self._rebuild()

    # ------------------------------------------------------------------
    # Queries and views
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertex ids, tombstones included (grows with
        :meth:`add_node`, never shrinks)."""
        return self._n

    @property
    def order(self) -> VertexOrder:
        """The current total order the index is exact under.

        Exposed so external checkers (``repro.fuzz`` oracles, tests)
        can rebuild the reference ``tol_index(current_graph(), order)``
        the snapshot contract promises equality with.  Reread it after
        :meth:`add_node` / :meth:`promote` — both replace it.
        """
        return self._order

    @property
    def num_edges(self) -> int:
        """Current number of edges."""
        return sum(len(adj) for adj in self._out_adj)

    def is_alive(self, v: int) -> bool:
        """True while ``v`` exists and was not deleted."""
        return 0 <= v < self._n and self._alive[v]

    def alive_vertices(self) -> list[int]:
        """Vertex ids currently alive (ascending)."""
        return [v for v in range(self._n) if self._alive[v]]

    def has_edge(self, u: int, v: int) -> bool:
        """True if the edge ``(u, v)`` is currently present."""
        return v in self._out_adj[u]

    def edges(self) -> Iterable[tuple[int, int]]:
        """Iterate over the current edges."""
        for u in range(self._n):
            for v in sorted(self._out_adj[u]):
                yield u, v

    def query(self, s: int, t: int) -> bool:
        """``q(s, t)`` on the current graph.

        Tombstoned vertices are permitted: they are isolated, so every
        query involving one answers ``False`` (or ``True`` for
        ``q(v, v)``), matching the transitive closure of
        :meth:`current_graph`.
        """
        a, b = self.out_labels[s], self.in_labels[t]
        if len(b) < len(a):
            a, b = b, a
        return any(h in b for h in a)

    def snapshot(self) -> ReachabilityIndex:
        """An immutable copy of the current (exact TOL) index."""
        return ReachabilityIndex.from_label_lists(self.in_labels, self.out_labels)

    def current_graph(self) -> DiGraph:
        """The current graph as an immutable :class:`DiGraph`.

        Tombstoned ids are present as isolated vertices — the id space
        is dense and never recycled.
        """
        return DiGraph(self._n, list(self.edges()))

    # ------------------------------------------------------------------
    # Update hooks
    # ------------------------------------------------------------------
    def subscribe(self, listener) -> None:
        """Register ``listener(op, u, v)`` to run after every *applied*
        update (``op`` is one of :data:`UPDATE_OPS`).

        Listeners fire only when the update actually applied — e.g.
        inserting a present edge is a no-op and stays silent.  They run
        only after the label sets are consistent again (this holds on
        *every* path, including the deletion rebuild fallback), so a
        listener may query the index or take a snapshot.  This is the
        invalidation hook the serving layer's
        :class:`~repro.serve.QueryCache` and the replication op log
        attach to (see ``docs/dynamic.md``).  For ``promote`` the
        payload is ``(vertex, new_rank)``; for node ops both slots
        carry the vertex id.
        """
        self._listeners.append(listener)

    def unsubscribe(self, listener) -> None:
        """Remove a previously registered listener."""
        self._listeners.remove(listener)

    def _notify(self, op: str, u: int, v: int) -> None:
        for listener in self._listeners:
            listener(op, u, v)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> bool:
        """Insert ``(u, v)``; returns False if it was already present.

        Self-loops are rejected (they never affect reachability).
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError("self-loops do not affect reachability")
        if v in self._out_adj[u]:
            return False
        self._out_adj[u].add(v)
        self._in_adj[v].add(u)

        # Resume every hub that covers into u forward from v, and every
        # hub that covers out of v backward from u.
        for a in sorted(self.in_labels[u], key=lambda x: self._rank[x]):
            self._resume(a, v, forward=True)
        for b in sorted(self.out_labels[v], key=lambda x: self._rank[x]):
            self._resume(b, u, forward=False)
        self._sweep_stale(u, v)
        self._notify("insert", u, v)
        self._check_drift(u, v)
        return True

    def _resume(self, hub: int, root: int, forward: bool) -> None:
        """Resume ``hub``'s (trimmed, pruned) BFS from ``root``."""
        rank = self._rank
        hub_rank = rank[hub]
        adjacency = self._out_adj if forward else self._in_adj
        labels = self.in_labels if forward else self.out_labels
        reverse_labels = self.out_labels if forward else self.in_labels
        if rank[root] < hub_rank or self._dominated(hub, root, labels, reverse_labels):
            return
        visited = {root}
        queue = deque([root])
        labels[root].add(hub)
        while queue:
            w = queue.popleft()
            for x in adjacency[w]:
                if x in visited:
                    continue
                visited.add(x)
                if rank[x] < hub_rank:
                    continue  # higher-order vertex blocks the branch
                if x == hub or self._dominated(hub, x, labels, reverse_labels):
                    continue
                labels[x].add(hub)
                queue.append(x)

    def _dominated(self, hub, w, labels, reverse_labels) -> bool:
        """Is there an indexed higher-order hub ``h`` with
        ``hub → h → w`` (forward sense)?  Sound witnesses suffice."""
        hub_rank = self._rank[hub]
        a, b = reverse_labels[hub], labels[w]
        if len(b) < len(a):
            a, b = b, a
        return any(self._rank[h] < hub_rank and h in b for h in a)

    def _sweep_stale(self, u: int, v: int) -> None:
        """Remove entries invalidated by new walks through ``(u, v)``.

        Candidates are pairs ``(a, w)`` with ``a`` reaching ``u`` and
        ``w`` reachable from ``v`` — the only pairs that gained walks.
        """
        reaches_from_v = self._plain_bfs(v, self._out_adj)
        reaches_to_u = self._plain_bfs(u, self._in_adj)
        for w in reaches_from_v:
            for a in [x for x in self.in_labels[w] if x in reaches_to_u or x == w]:
                if self._dominated(a, w, self.in_labels, self.out_labels):
                    self.in_labels[w].discard(a)
        for w in reaches_to_u:
            for b in [x for x in self.out_labels[w] if x in reaches_from_v or x == w]:
                if self._dominated(b, w, self.out_labels, self.in_labels):
                    self.out_labels[w].discard(b)

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete_edge(self, u: int, v: int) -> bool:
        """Delete ``(u, v)``; returns False if it was not present."""
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._out_adj[u]:
            return False
        # Affected sources are computed on the OLD graph (vertices that
        # could route a walk through the edge).
        affected_fwd = self._plain_bfs(u, self._in_adj)   # everyone reaching u
        affected_bwd = self._plain_bfs(v, self._out_adj)  # everyone v reaches
        self._out_adj[u].discard(v)
        self._in_adj[v].discard(u)
        self._repair_after_removal(affected_fwd, affected_bwd)
        # Listeners fire only here, on the single exit where both
        # repair paths (per-vertex recompute and rebuild fallback) have
        # settled — a listener must never observe a stale snapshot.
        self._notify("delete", u, v)
        self._check_drift(u, v)
        return True

    def _repair_after_removal(
        self, affected_fwd: set[int], affected_bwd: set[int]
    ) -> None:
        """Restore exactness after edges vanished, given the affected
        vertex sets (computed on the pre-removal graph)."""
        threshold = self._rebuild_fraction * self._n
        if len(affected_fwd) + len(affected_bwd) > threshold:
            self._rebuild()
            return
        for a in affected_fwd:
            self._recompute_backward(a, forward=True)
        for b in affected_bwd:
            self._recompute_backward(b, forward=False)

    def _recompute_backward(self, hub: int, forward: bool) -> None:
        """Recompute ``L⁻`` of ``hub`` exactly (Theorem 3) and patch the
        label sets accordingly."""
        adjacency = self._out_adj if forward else self._in_adj
        labels = self.in_labels if forward else self.out_labels
        low, high = self._trimmed_bfs(hub, adjacency)
        eliminated: set[int] = set()
        for blocker in high:
            eliminated |= self._plain_bfs(blocker, adjacency)
        backward = low - eliminated
        for w in low | eliminated:
            if w in backward:
                labels[w].add(hub)
            else:
                labels[w].discard(hub)
        # Entries outside today's reachable set are unsound: drop them.
        for w in range(self._n):
            if hub in labels[w] and w not in backward:
                labels[w].discard(hub)

    # ------------------------------------------------------------------
    # Node-level updates
    # ------------------------------------------------------------------
    def add_node(self) -> int:
        """Add an isolated vertex; returns its id (always ``num_vertices``
        before the call — ids are assigned densely and never recycled).

        The new vertex joins at the **tail of the order** (lowest
        priority), which keeps the index exact for free: its own TOL
        round reaches only itself and no earlier round can reach it, so
        its labels are exactly ``{v}``/``{v}`` and nothing else moves.
        """
        v = self._n
        self._n += 1
        self._alive.append(True)
        self._out_adj.append(set())
        self._in_adj.append(set())
        self.in_labels.append({v})
        self.out_labels.append({v})
        self._order = VertexOrder(list(self._order.by_rank()) + [v])
        self._rank = self._order.ranks
        self._notify("add_node", v, v)
        return v

    def delete_node(self, v: int) -> bool:
        """Delete ``v``: remove every incident edge, tombstone the id.

        The id stays in the (dense) id space as an isolated vertex with
        labels ``{v}``/``{v}``, so ``snapshot()`` remains byte-equal to
        ``tol_index(current_graph(), order)`` and downstream consumers
        keyed by vertex id (shard maps, caches, replicas) need no
        remapping.  Further mutations of ``v`` raise; queries just see
        an isolated vertex.  Listeners observe one ``delete_node``
        notification, not one per removed edge.
        """
        self._check_vertex(v)
        # Affected sets on the OLD graph: one repair pass covers every
        # incident edge at once (each edge's affected set is contained
        # in these two BFS cones).
        affected_fwd = self._plain_bfs(v, self._in_adj)   # everyone reaching v
        affected_bwd = self._plain_bfs(v, self._out_adj)  # everyone v reaches
        for x in self._out_adj[v]:
            self._in_adj[x].discard(v)
        for x in self._in_adj[v]:
            self._out_adj[x].discard(v)
        self._out_adj[v].clear()
        self._in_adj[v].clear()
        self._alive[v] = False
        self._repair_after_removal(affected_fwd, affected_bwd)
        self._notify("delete_node", v, v)
        return True

    # ------------------------------------------------------------------
    # Order upgrades (the TOL butterfly rewrite)
    # ------------------------------------------------------------------
    def promote(self, v: int, new_rank: int | None = None) -> int | None:
        """Move ``v`` hub-ward to ``new_rank`` and rewrite the labels.

        ``new_rank`` defaults to ``v``'s current *degree rank* (its
        position under the paper's degree order on current degrees).
        Promotions only move up: when the target rank is not above the
        current one this is a silent no-op returning ``None``;
        otherwise the applied rank is returned and listeners see
        ``("promote", v, new_rank)``.

        The rewrite exploits that a single hub-ward move changes the
        exact index in only two ways: ``v``'s own entries grow (it lost
        dominators), and entries of the **band** hubs it overtook can
        die where ``v`` now dominates them (``h → v → w``).  So: shift
        the order, run one full pruned BFS pair from ``v`` under the
        new ranks, then sweep band entries through the standard
        domination test.  Every other entry is provably untouched.
        """
        self._check_vertex(v)
        if new_rank is None or new_rank < 0:
            new_rank = self._ideal_rank(v)
        old_rank = self._rank[v]
        if new_rank >= old_rank:
            return None
        by_rank = list(self._order.by_rank())
        del by_rank[old_rank]
        by_rank.insert(new_rank, v)
        self._order = VertexOrder(by_rank)
        self._rank = self._order.ranks
        # The band: hubs v overtook (their rank shifted down by one).
        band = set(by_rank[new_rank + 1 : old_rank + 1])

        # Grow side: v's coverage under the new order.  A fresh pruned
        # BFS pair is exact here because every domination witness it
        # consults involves hubs still above v, whose entries are
        # unchanged by the move.
        self._resume(v, v, forward=True)
        self._resume(v, v, forward=False)

        # Shrink side: only entries (h, w) with h in the band and
        # h → v → w can have died, and for each the exact index holds a
        # higher-order witness pair that the domination test finds in
        # the (sound superset) label sets.
        forward_cone = self._plain_bfs(v, self._out_adj)
        backward_cone = self._plain_bfs(v, self._in_adj)
        for w in forward_cone:
            for a in [x for x in self.in_labels[w] if x in band and x in backward_cone]:
                if self._dominated(a, w, self.in_labels, self.out_labels):
                    self.in_labels[w].discard(a)
        for w in backward_cone:
            for b in [x for x in self.out_labels[w] if x in band and x in forward_cone]:
                if self._dominated(b, w, self.out_labels, self.in_labels):
                    self.out_labels[w].discard(b)
        self._notify("promote", v, new_rank)
        return new_rank

    def drift(self, v: int) -> int:
        """How many positions ``v``'s frozen rank lags its degree rank.

        Positive drift means the order undervalues ``v`` (its degrees
        grew since the order froze); automatic upgrades fire when this
        exceeds the configured ``drift_threshold``.
        """
        self._check_vertex(v)
        return self._rank[v] - self._ideal_rank(v)

    def _degree_key(self, v: int) -> tuple[int, int]:
        """The paper's order key on *current* degrees (larger = higher
        priority; ids break ties exactly as :func:`degree_order`)."""
        return (
            (len(self._in_adj[v]) + 1) * (len(self._out_adj[v]) + 1),
            v,
        )

    def _ideal_rank(self, v: int) -> int:
        """``v``'s rank under the degree order on current degrees."""
        key = self._degree_key(v)
        return sum(
            1 for w in range(self._n) if w != v and self._degree_key(w) > key
        )

    def _check_drift(self, *vertices: int) -> None:
        """Auto-promote updated endpoints whose drift crossed the
        threshold (no-op without a ``drift_threshold``)."""
        if self._drift_threshold is None:
            return
        for v in vertices:
            if self._alive[v] and self.drift(v) > self._drift_threshold:
                self.promote(v)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise ValueError(f"vertex {v} out of range [0, {self._n})")
        if not self._alive[v]:
            raise ValueError(f"vertex {v} was deleted")

    def _plain_bfs(self, source: int, adjacency: list[set[int]]) -> set[int]:
        visited = {source}
        queue = deque([source])
        while queue:
            w = queue.popleft()
            for x in adjacency[w]:
                if x not in visited:
                    visited.add(x)
                    queue.append(x)
        return visited

    def _trimmed_bfs(
        self, source: int, adjacency: list[set[int]]
    ) -> tuple[set[int], set[int]]:
        rank = self._rank
        source_rank = rank[source]
        low = {source}
        high: set[int] = set()
        queue = deque([source])
        while queue:
            w = queue.popleft()
            for x in adjacency[w]:
                if x in low or x in high:
                    continue
                if rank[x] > source_rank:
                    low.add(x)
                    queue.append(x)
                else:
                    high.add(x)
        return low, high

    def _rebuild(self) -> None:
        """Recompute every label from scratch under the current order."""
        from repro.core.tol import tol_index

        index = tol_index(self.current_graph(), self._order)
        for w in range(self._n):
            self.in_labels[w] = set(index.in_labels(w))
            self.out_labels[w] = set(index.out_labels(w))
