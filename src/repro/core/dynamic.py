"""Dynamic maintenance of the TOL index under edge updates.

The paper defers "maintaining indexes on distributed dynamic graphs" to
future work but inherits the setting from TOL (Zhu et al., SIGMOD'14),
whose index is explicitly designed for dynamic graphs.  This module
provides a *centralized* dynamic index with exact semantics:

**The vertex order is fixed at construction** (TOL's total-order
approach): updates never re-rank vertices, so "the TOL index" remains
well-defined as the index TOL would build on the current graph under
the original order.  :meth:`DynamicReachabilityIndex.snapshot` is
guaranteed equal to ``tol_index(current_graph, original_order)``.

Update algorithms
-----------------
*Insertion* ``(u, v)`` uses resumed trimmed BFSs: every hub
``a ∈ L_in(u)`` resumes its forward BFS from ``v`` and every hub
``b ∈ L_out(v)`` resumes its backward BFS from ``u``, with the
order-respecting prune (block at ``w`` whenever a higher-order hub
``h`` with ``a → h → w`` is already indexed).  This yields a *sound
superset* of the exact index that still contains every exact entry; a
targeted stale-entry sweep then removes newly dominated entries.  The
sweep cannot remove a valid entry: its criterion (∃ higher-order
``h ∈ L_out(a) ∩ L_in(w)``) only requires the witness entries to be
*sound*, and any such witness certifies a real higher-order walk,
which by Theorem 1 makes ``(a, w)`` invalid.

*Deletion* ``(u, v)`` recomputes the backward label sets of every
vertex that could reach ``u`` (forward side) or be reached from ``v``
(backward side) — the only vertices whose Theorem 1 status can change —
using the basic labeling method on the new graph.  When the affected
set exceeds ``rebuild_fraction`` of the graph, a full rebuild is
cheaper and is used instead.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.core.labels import ReachabilityIndex
from repro.graph.digraph import DiGraph
from repro.graph.order import VertexOrder, degree_order


class DynamicReachabilityIndex:
    """A TOL index that stays exact under edge insertions and deletions.

    Parameters
    ----------
    graph:
        Initial graph; its edges seed the mutable adjacency.
    order:
        Fixed total order (defaults to the *initial* graph's degree
        order; it is never recomputed — TOL's total-order contract).
    rebuild_fraction:
        Deletion falls back to a full rebuild when the affected vertex
        set exceeds this fraction of all vertices.  Per-vertex
        recomputation costs several BFSs, so the break-even point is
        low (default 10%); hub-dominated graphs, where most vertices
        reach the deleted edge, effectively always rebuild on deletion.
    """

    def __init__(
        self,
        graph: DiGraph,
        order: VertexOrder | None = None,
        rebuild_fraction: float = 0.1,
    ):
        if order is None:
            order = degree_order(graph)
        if len(order) != graph.num_vertices:
            raise ValueError("order does not cover the graph's vertices")
        if not 0.0 < rebuild_fraction <= 1.0:
            raise ValueError("rebuild_fraction must be in (0, 1]")
        n = graph.num_vertices
        self._n = n
        self._rank = order.ranks
        self._order = order
        self._rebuild_fraction = rebuild_fraction
        self._out_adj: list[set[int]] = [set() for _ in range(n)]
        self._in_adj: list[set[int]] = [set() for _ in range(n)]
        for a, b in graph.edges():
            self._out_adj[a].add(b)
            self._in_adj[b].add(a)
        # Label sets: in_labels[w] = L_in(w), out_labels[w] = L_out(w).
        self.in_labels: list[set[int]] = [set() for _ in range(n)]
        self.out_labels: list[set[int]] = [set() for _ in range(n)]
        self._listeners: list = []
        self._rebuild()

    # ------------------------------------------------------------------
    # Queries and views
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices (fixed at construction)."""
        return self._n

    @property
    def order(self) -> VertexOrder:
        """The fixed total order every update maintains the index under.

        Exposed so external checkers (``repro.fuzz`` oracles, tests)
        can rebuild the reference ``tol_index(current_graph(), order)``
        the snapshot contract promises equality with.
        """
        return self._order

    @property
    def num_edges(self) -> int:
        """Current number of edges."""
        return sum(len(adj) for adj in self._out_adj)

    def has_edge(self, u: int, v: int) -> bool:
        """True if the edge ``(u, v)`` is currently present."""
        return v in self._out_adj[u]

    def edges(self) -> Iterable[tuple[int, int]]:
        """Iterate over the current edges."""
        for u in range(self._n):
            for v in sorted(self._out_adj[u]):
                yield u, v

    def query(self, s: int, t: int) -> bool:
        """``q(s, t)`` on the current graph."""
        a, b = self.out_labels[s], self.in_labels[t]
        if len(b) < len(a):
            a, b = b, a
        return any(h in b for h in a)

    def snapshot(self) -> ReachabilityIndex:
        """An immutable copy of the current (exact TOL) index."""
        return ReachabilityIndex.from_label_lists(self.in_labels, self.out_labels)

    def current_graph(self) -> DiGraph:
        """The current graph as an immutable :class:`DiGraph`."""
        return DiGraph(self._n, list(self.edges()))

    # ------------------------------------------------------------------
    # Update hooks
    # ------------------------------------------------------------------
    def subscribe(self, listener) -> None:
        """Register ``listener(op, u, v)`` to run after every *applied*
        update (``op`` is ``"insert"`` or ``"delete"``).

        Listeners fire only when the graph actually changed — inserting
        a present edge or deleting an absent one is a no-op and stays
        silent.  They run after the label sets are consistent again, so
        a listener may query the index.  This is the invalidation hook
        the serving layer's :class:`~repro.serve.QueryCache` attaches
        to (see ``docs/serving.md``).
        """
        self._listeners.append(listener)

    def unsubscribe(self, listener) -> None:
        """Remove a previously registered listener."""
        self._listeners.remove(listener)

    def _notify(self, op: str, u: int, v: int) -> None:
        for listener in self._listeners:
            listener(op, u, v)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> bool:
        """Insert ``(u, v)``; returns False if it was already present.

        Self-loops are rejected (they never affect reachability).
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise ValueError("self-loops do not affect reachability")
        if v in self._out_adj[u]:
            return False
        self._out_adj[u].add(v)
        self._in_adj[v].add(u)

        # Resume every hub that covers into u forward from v, and every
        # hub that covers out of v backward from u.
        for a in sorted(self.in_labels[u], key=lambda x: self._rank[x]):
            self._resume(a, v, forward=True)
        for b in sorted(self.out_labels[v], key=lambda x: self._rank[x]):
            self._resume(b, u, forward=False)
        self._sweep_stale(u, v)
        self._notify("insert", u, v)
        return True

    def _resume(self, hub: int, root: int, forward: bool) -> None:
        """Resume ``hub``'s (trimmed, pruned) BFS from ``root``."""
        rank = self._rank
        hub_rank = rank[hub]
        adjacency = self._out_adj if forward else self._in_adj
        labels = self.in_labels if forward else self.out_labels
        reverse_labels = self.out_labels if forward else self.in_labels
        if rank[root] < hub_rank or self._dominated(hub, root, labels, reverse_labels):
            return
        visited = {root}
        queue = deque([root])
        labels[root].add(hub)
        while queue:
            w = queue.popleft()
            for x in adjacency[w]:
                if x in visited:
                    continue
                visited.add(x)
                if rank[x] < hub_rank:
                    continue  # higher-order vertex blocks the branch
                if x == hub or self._dominated(hub, x, labels, reverse_labels):
                    continue
                labels[x].add(hub)
                queue.append(x)

    def _dominated(self, hub, w, labels, reverse_labels) -> bool:
        """Is there an indexed higher-order hub ``h`` with
        ``hub → h → w`` (forward sense)?  Sound witnesses suffice."""
        hub_rank = self._rank[hub]
        a, b = reverse_labels[hub], labels[w]
        if len(b) < len(a):
            a, b = b, a
        return any(self._rank[h] < hub_rank and h in b for h in a)

    def _sweep_stale(self, u: int, v: int) -> None:
        """Remove entries invalidated by new walks through ``(u, v)``.

        Candidates are pairs ``(a, w)`` with ``a`` reaching ``u`` and
        ``w`` reachable from ``v`` — the only pairs that gained walks.
        """
        reaches_from_v = self._plain_bfs(v, self._out_adj)
        reaches_to_u = self._plain_bfs(u, self._in_adj)
        for w in reaches_from_v:
            for a in [x for x in self.in_labels[w] if x in reaches_to_u or x == w]:
                if self._dominated(a, w, self.in_labels, self.out_labels):
                    self.in_labels[w].discard(a)
        for w in reaches_to_u:
            for b in [x for x in self.out_labels[w] if x in reaches_from_v or x == w]:
                if self._dominated(b, w, self.out_labels, self.in_labels):
                    self.out_labels[w].discard(b)

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete_edge(self, u: int, v: int) -> bool:
        """Delete ``(u, v)``; returns False if it was not present."""
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._out_adj[u]:
            return False
        # Affected sources are computed on the OLD graph (vertices that
        # could route a walk through the edge).
        affected_fwd = self._plain_bfs(u, self._in_adj)   # everyone reaching u
        affected_bwd = self._plain_bfs(v, self._out_adj)  # everyone v reaches
        self._out_adj[u].discard(v)
        self._in_adj[v].discard(u)

        threshold = self._rebuild_fraction * self._n
        if len(affected_fwd) + len(affected_bwd) > threshold:
            self._rebuild()
            self._notify("delete", u, v)
            return True

        for a in affected_fwd:
            self._recompute_backward(a, forward=True)
        for b in affected_bwd:
            self._recompute_backward(b, forward=False)
        self._notify("delete", u, v)
        return True

    def _recompute_backward(self, hub: int, forward: bool) -> None:
        """Recompute ``L⁻`` of ``hub`` exactly (Theorem 3) and patch the
        label sets accordingly."""
        adjacency = self._out_adj if forward else self._in_adj
        labels = self.in_labels if forward else self.out_labels
        low, high = self._trimmed_bfs(hub, adjacency)
        eliminated: set[int] = set()
        for blocker in high:
            eliminated |= self._plain_bfs(blocker, adjacency)
        backward = low - eliminated
        for w in low | eliminated:
            if w in backward:
                labels[w].add(hub)
            else:
                labels[w].discard(hub)
        # Entries outside today's reachable set are unsound: drop them.
        for w in range(self._n):
            if hub in labels[w] and w not in backward:
                labels[w].discard(hub)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise ValueError(f"vertex {v} out of range [0, {self._n})")

    def _plain_bfs(self, source: int, adjacency: list[set[int]]) -> set[int]:
        visited = {source}
        queue = deque([source])
        while queue:
            w = queue.popleft()
            for x in adjacency[w]:
                if x not in visited:
                    visited.add(x)
                    queue.append(x)
        return visited

    def _trimmed_bfs(
        self, source: int, adjacency: list[set[int]]
    ) -> tuple[set[int], set[int]]:
        rank = self._rank
        source_rank = rank[source]
        low = {source}
        high: set[int] = set()
        queue = deque([source])
        while queue:
            w = queue.popleft()
            for x in adjacency[w]:
                if x in low or x in high:
                    continue
                if rank[x] > source_rank:
                    low.add(x)
                    queue.append(x)
                else:
                    high.add(x)
        return low, high

    def _rebuild(self) -> None:
        """Recompute every label from scratch under the fixed order."""
        from repro.core.tol import tol_index

        index = tol_index(self.current_graph(), self._order)
        for w in range(self._n):
            self.in_labels[w] = set(index.in_labels(w))
            self.out_labels[w] = set(index.out_labels(w))
