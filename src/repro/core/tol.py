"""TOL — Total Order Labeling (Algorithm 1; Zhu et al., SIGMOD'14).

The serial gold standard.  Every distributed algorithm in this library
must produce an index *identical* to TOL's.

Two implementations are provided:

- :func:`tol_index_reference` follows Algorithm 1 literally: in round
  ``i`` it collects ``DES^{G_i}(v_i)`` / ``ANC^{G_i}(v_i)`` in full and
  applies the pruning test to *every* member.
- :func:`tol_index` additionally *blocks expansion* at pruned vertices
  (the pruned-landmark optimization): if ``L_out(v_i) ∩ L_in(w) ≠ ∅``
  there is a higher-order hop ``s`` with ``v_i → s → w``, and for any
  ``x`` beyond ``w`` the walk ``v_i → s → w → x`` shows ``x`` is pruned
  too, so the search need not continue through ``w``.

Both are equivalent (asserted by the test suite on thousands of random
graphs); benchmarks use the optimized one, as the TOL authors do.

A BFS in the shrinking graph ``G_i`` (all higher-order vertices deleted)
is exactly a trimmed BFS in ``G`` (higher-order vertices block their
branch), so neither implementation materializes ``G_i``.
"""

from __future__ import annotations

from collections import deque

from repro.graph.digraph import DiGraph
from repro.graph.order import VertexOrder, degree_order
from repro.pregel.serial import SerialMeter

#: Estimated per-vertex bookkeeping bytes for the memory gate: queue,
#: status array, and two label-set headers, as a C++ TOL would allocate.
_TOL_VERTEX_OVERHEAD = 40


def tol_index_reference(graph: DiGraph, order: VertexOrder | None = None):
    """Algorithm 1, literally.  Returns a :class:`ReachabilityIndex`.

    Quadratic in the worst case — use :func:`tol_index` outside tests.
    """
    return _tol(graph, order, prune_expansion=False, meter=None)


def tol_index(
    graph: DiGraph,
    order: VertexOrder | None = None,
    meter: SerialMeter | None = None,
):
    """Production TOL with pruned expansion.

    Parameters
    ----------
    graph:
        Input graph (cyclic graphs allowed, as in the paper).
    order:
        Vertex order; defaults to the paper's degree-based order.
    meter:
        Optional :class:`SerialMeter` for cost accounting (charges one
        unit per edge scan and per label-entry comparison) and for the
        single-node memory gate.
    """
    return _tol(graph, order, prune_expansion=True, meter=meter)


def _tol(
    graph: DiGraph,
    order: VertexOrder | None,
    prune_expansion: bool,
    meter: SerialMeter | None,
):
    from repro.core.labels import ReachabilityIndex

    if order is None:
        order = degree_order(graph)
    n = graph.num_vertices
    if meter is not None:
        index_bytes_guess = 16 * n  # refined as labels grow
        meter.check_memory(
            graph.memory_bytes() + _TOL_VERTEX_OVERHEAD * n + index_bytes_guess,
            what="TOL",
        )

    rank = order.ranks
    reverse = graph.reverse()
    in_label_sets: list[set[int]] = [set() for _ in range(n)]
    out_label_sets: list[set[int]] = [set() for _ in range(n)]
    # Scratch: last_seen[w] == current round marks w visited this round.
    last_seen = [-1] * n

    for round_no in range(n):
        v = order.vertex_at_rank(round_no)
        # Round i, forward: add v to L_in(w) for surviving descendants.
        _label_one_direction(
            graph,
            v,
            rank,
            out_label_sets[v],
            in_label_sets,
            last_seen,
            2 * round_no,
            prune_expansion,
            meter,
        )
        # Round i, backward: add v to L_out(w) for surviving ancestors.
        # Reading L_in(v) *after* the forward pass is safe: the only
        # label added this round so far is v itself, and v can never be
        # in L_out(w) yet, so the intersections below match L^i exactly.
        _label_one_direction(
            reverse,
            v,
            rank,
            in_label_sets[v],
            out_label_sets,
            last_seen,
            2 * round_no + 1,
            prune_expansion,
            meter,
        )

    return ReachabilityIndex.from_label_lists(in_label_sets, out_label_sets)


def _label_one_direction(
    graph: DiGraph,
    v: int,
    rank,
    source_labels: set[int],
    target_labels: list[set[int]],
    last_seen: list[int],
    stamp: int,
    prune_expansion: bool,
    meter: SerialMeter | None,
) -> None:
    """One half of TOL round ``i``: a trimmed BFS from ``v`` that adds
    ``v`` to ``target_labels[w]`` whenever the pruning test passes."""
    v_rank = rank[v]
    queue = deque([v])
    last_seen[v] = stamp
    units = 0
    while queue:
        w = queue.popleft()
        # Pruning operation (Algorithm 1 lines 8/11).
        candidate_labels = target_labels[w]
        small, large = (
            (source_labels, candidate_labels)
            if len(source_labels) < len(candidate_labels)
            else (candidate_labels, source_labels)
        )
        units += len(small) + 1
        pruned = any(x in large for x in small)
        if not pruned:
            candidate_labels.add(v)
        if pruned and prune_expansion:
            continue
        for x in graph.out_neighbors(w):
            units += 1
            if last_seen[x] != stamp and rank[x] > v_rank:
                last_seen[x] = stamp
                queue.append(x)
        if meter is not None and units > 4096:
            meter.charge(units)
            units = 0
    if meter is not None and units:
        meter.charge(units)
