"""The paper's core contribution: reachability labeling algorithms.

Public API
----------
- :class:`~repro.core.labels.ReachabilityIndex` — the 2-hop index.
- :func:`~repro.core.tol.tol_index` — serial TOL (Algorithm 1).
- :func:`~repro.core.drl.drl_index` — distributed DRL (Algorithm 3).
- :func:`~repro.core.drl_basic.drl_basic_index` — DRL⁻ (Theorem 3).
- :func:`~repro.core.drl_batch.drl_batch_index` — DRL_b (Algorithm 4).
- :func:`~repro.core.multicore.drl_multicore_index` — DRL_b^M (Exp 3).
- :func:`~repro.core.build.build_index` — one-call façade.
"""

from repro.core.backward import (
    backward_in_labels_basic,
    backward_in_labels_improved,
    backward_in_labels_naive,
    backward_label_sets,
    higher_order_descendants,
)
from repro.core.batching import batch_sequence
from repro.core.build import build_index
from repro.core.condensed import CondensedIndex, build_condensed_index
from repro.core.dynamic import DynamicReachabilityIndex
from repro.core.collect import CollectionPlan, plan_collection
from repro.core.drl import drl_index, inverted_list_stats
from repro.core.drl_basic import drl_basic_index
from repro.core.drl_batch import drl_batch_index
from repro.core.labels import LabelingResult, ReachabilityIndex
from repro.core.multicore import drl_multicore_index
from repro.core.tol import tol_index, tol_index_reference
from repro.core.validate import (
    ValidationReport,
    check_canonical,
    check_cover,
    check_soundness,
)

__all__ = [
    "CollectionPlan",
    "CondensedIndex",
    "DynamicReachabilityIndex",
    "LabelingResult",
    "ReachabilityIndex",
    "ValidationReport",
    "backward_in_labels_basic",
    "backward_in_labels_improved",
    "backward_in_labels_naive",
    "backward_label_sets",
    "batch_sequence",
    "build_condensed_index",
    "build_index",
    "check_canonical",
    "check_cover",
    "check_soundness",
    "drl_basic_index",
    "drl_batch_index",
    "drl_index",
    "drl_multicore_index",
    "higher_order_descendants",
    "inverted_list_stats",
    "plan_collection",
    "tol_index",
    "tol_index_reference",
]
