"""DRL_b^M — the multi-core (shared-memory) variant of DRL_b (Exp 3).

Same algorithm as :func:`~repro.core.drl_batch.drl_batch_index`, but
the "cluster" is the cores of a single machine: data exchange happens
through shared memory (zero byte cost, near-free barriers) while the
*whole graph* must fit in that one machine's memory — which is exactly
why the paper's DRL_b^M is slightly faster than DRL_b on medium graphs
yet cannot index the billion-edge ones.
"""

from __future__ import annotations

from repro.core.drl_batch import drl_batch_index
from repro.core.labels import LabelingResult
from repro.faults import FaultPlan
from repro.graph.digraph import DiGraph
from repro.graph.order import VertexOrder
from repro.graph.partition import (
    HashPartitioner,
    Partitioner,
    node_assignment,
)
from repro.pregel.cost_model import CostModel, shared_memory_model

#: Estimated per-vertex working-state bytes (status maps, lists).
_WORKING_BYTES_PER_VERTEX = 64


def per_core_working_bytes(
    graph: DiGraph, partitioner: Partitioner
) -> list[int]:
    """Estimated working-state bytes per core under ``partitioner``.

    Uses the same :func:`~repro.graph.partition.node_assignment` helper
    as both execution engines, so the memory estimate and the engines
    can never disagree on which core owns which vertex.
    """
    vertices_per_core = [0] * partitioner.num_nodes
    for core in node_assignment(partitioner, graph.num_vertices):
        vertices_per_core[core] += 1
    return [
        _WORKING_BYTES_PER_VERTEX * count for count in vertices_per_core
    ]


def drl_multicore_index(
    graph: DiGraph,
    order: VertexOrder | None = None,
    num_cores: int = 32,
    initial_batch_size: float = 2,
    growth_factor: float = 2.0,
    cost_model: CostModel | None = None,
    partitioner: Partitioner | None = None,
    faults: FaultPlan | None = None,
    checkpoint_interval: int | None = None,
    engine: str = "sim",
    workers: int | None = None,
) -> LabelingResult:
    """Build the TOL index with DRL_b^M on one multi-core machine.

    Raises :class:`~repro.errors.OutOfMemoryError` when the graph plus
    working state exceeds the single machine's budget.  A fault plan
    here models core/process failures (a worker process dying mid-build)
    with the same recovery semantics as the distributed variants.
    ``engine="mp"`` additionally makes the build *really* multi-core:
    the supersteps execute across ``workers`` processes, with the same
    vertex-to-core assignment the memory estimate below is based on.
    """
    if cost_model is None:
        cost_model = shared_memory_model()
    if partitioner is None:
        partitioner = HashPartitioner(num_cores)
    cost_model.check_memory(
        graph.memory_bytes() + sum(per_core_working_bytes(graph, partitioner)),
        what="DRL_b^M",
    )
    return drl_batch_index(
        graph,
        order=order,
        num_nodes=num_cores,
        initial_batch_size=initial_batch_size,
        growth_factor=growth_factor,
        cost_model=cost_model,
        partitioner=partitioner,
        faults=faults,
        checkpoint_interval=checkpoint_interval,
        engine=engine,
        workers=workers,
    )
