"""The reachability index: per-vertex in/out label sets (Definition 2).

An index ``L`` assigns every vertex ``v`` a sorted in-label set
``L_in(v) ⊆ ANC(v)`` and out-label set ``L_out(v) ⊆ DES(v)``; a query
``q(s, t)`` is true iff ``L_out(s) ∩ L_in(t) ≠ ∅`` (the cover
constraint, Definition 3).  Sorted-array intersection makes queries
``O(|L_out(s)| + |L_in(t)|)``, as in the paper.
"""

from __future__ import annotations

import struct
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.pregel.metrics import RunStats

_INDEX_MAGIC = b"RLIX"
_INDEX_VERSION = 1
_INDEX_VERSION_COMPRESSED = 2


def _write_varint(out: bytearray, value: int) -> None:
    """LEB128 unsigned varint."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    """Returns (value, next position); raises on truncation."""
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


class ReachabilityIndex:
    """A 2-hop reachability index over vertices ``0 .. n-1``.

    Construct via :meth:`from_label_lists` or
    :meth:`from_backward_sets`; instances are immutable by convention.
    """

    __slots__ = ("_in_labels", "_out_labels")

    def __init__(self, in_labels: list[array], out_labels: list[array]):
        if len(in_labels) != len(out_labels):
            raise ValueError("in/out label lists must cover the same vertices")
        self._in_labels = in_labels
        self._out_labels = out_labels

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_label_lists(
        cls,
        in_labels: Iterable[Iterable[int]],
        out_labels: Iterable[Iterable[int]],
    ) -> "ReachabilityIndex":
        """Build from per-vertex label iterables (sorted internally)."""
        ins = [array("q", sorted(labels)) for labels in in_labels]
        outs = [array("q", sorted(labels)) for labels in out_labels]
        return cls(ins, outs)

    @classmethod
    def from_backward_sets(
        cls,
        num_vertices: int,
        backward_in: Mapping[int, Iterable[int]],
        backward_out: Mapping[int, Iterable[int]],
    ) -> "ReachabilityIndex":
        """Invert backward label sets (Definition 4) into an index.

        ``w ∈ L⁻_in(v)`` means ``v ∈ L_in(w)``, and symmetrically for
        the out direction.
        """
        ins: list[list[int]] = [[] for _ in range(num_vertices)]
        outs: list[list[int]] = [[] for _ in range(num_vertices)]
        for v, members in backward_in.items():
            for w in members:
                ins[w].append(v)
        for v, members in backward_out.items():
            for w in members:
                outs[w].append(v)
        return cls.from_label_lists(ins, outs)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of indexed vertices."""
        return len(self._in_labels)

    def in_labels(self, v: int) -> array:
        """``L_in(v)`` as a sorted array."""
        return self._in_labels[v]

    def out_labels(self, v: int) -> array:
        """``L_out(v)`` as a sorted array."""
        return self._out_labels[v]

    def query(self, s: int, t: int) -> bool:
        """``q(s, t)``: can ``s`` reach ``t``?  Sorted-merge intersection."""
        a = self._out_labels[s]
        b = self._in_labels[t]
        i = j = 0
        len_a, len_b = len(a), len(b)
        while i < len_a and j < len_b:
            x, y = a[i], b[j]
            if x == y:
                return True
            if x < y:
                i += 1
            else:
                j += 1
        return False

    def hop_vertex(self, s: int, t: int) -> int | None:
        """The smallest common hop ``w`` with ``s → w → t``, or ``None``."""
        a = self._out_labels[s]
        b = self._in_labels[t]
        i = j = 0
        while i < len(a) and j < len(b):
            x, y = a[i], b[j]
            if x == y:
                return x
            if x < y:
                i += 1
            else:
                j += 1
        return None

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        """Total label entries across all vertices."""
        return sum(len(labels) for labels in self._in_labels) + sum(
            len(labels) for labels in self._out_labels
        )

    def size_bytes(self, entry_bytes: int = 8) -> int:
        """Index size as the paper reports it (8 bytes per entry)."""
        return self.num_entries * entry_bytes

    @property
    def largest_label(self) -> int:
        """``Δ = max_v max(|L_in(v)|, |L_out(v)|)`` (Section II-A)."""
        if not self._in_labels:
            return 0
        return max(
            max(len(self._in_labels[v]), len(self._out_labels[v]))
            for v in range(self.num_vertices)
        )

    @property
    def average_label(self) -> float:
        """Mean label-set size over both directions."""
        if not self._in_labels:
            return 0.0
        return self.num_entries / (2 * self.num_vertices)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def save(self, path: str | Path, compress: bool = False) -> None:
        """Write the index to ``path``.

        ``compress=True`` uses delta-varint encoding: labels are sorted,
        so consecutive gaps are small and typically fit one byte each —
        usually several times smaller than the fixed-width format.
        """
        if compress:
            self._save_compressed(path)
            return
        with open(path, "wb") as handle:
            handle.write(_INDEX_MAGIC)
            handle.write(struct.pack("<IQ", _INDEX_VERSION, self.num_vertices))
            for labels_per_vertex in (self._in_labels, self._out_labels):
                for labels in labels_per_vertex:
                    handle.write(struct.pack("<Q", len(labels)))
                    handle.write(labels.tobytes())

    def _save_compressed(self, path: str | Path) -> None:
        payload = bytearray()
        for labels_per_vertex in (self._in_labels, self._out_labels):
            for labels in labels_per_vertex:
                _write_varint(payload, len(labels))
                previous = 0
                for value in labels:
                    _write_varint(payload, value - previous)
                    previous = value
        with open(path, "wb") as handle:
            handle.write(_INDEX_MAGIC)
            handle.write(
                struct.pack("<IQ", _INDEX_VERSION_COMPRESSED, self.num_vertices)
            )
            handle.write(payload)

    @classmethod
    def load(cls, path: str | Path) -> "ReachabilityIndex":
        """Read an index written by :meth:`save`."""
        with open(path, "rb") as handle:
            if handle.read(4) != _INDEX_MAGIC:
                raise ValueError(f"{path}: not a reachability index file")
            version, n = struct.unpack("<IQ", handle.read(12))
            if version == _INDEX_VERSION_COMPRESSED:
                return cls._load_compressed(handle.read(), n, path)
            if version != _INDEX_VERSION:
                raise ValueError(f"{path}: unsupported index version {version}")
            sides = []
            for _side in range(2):
                labels_per_vertex = []
                for _v in range(n):
                    header = handle.read(8)
                    payload = b""
                    if len(header) == 8:
                        (count,) = struct.unpack("<Q", header)
                        payload = handle.read(8 * count)
                    if len(header) != 8 or len(payload) != 8 * count:
                        raise ValueError(f"{path}: truncated label payload")
                    labels = array("q")
                    labels.frombytes(payload)
                    labels_per_vertex.append(labels)
                sides.append(labels_per_vertex)
        return cls(sides[0], sides[1])

    @classmethod
    def _load_compressed(
        cls, data: bytes, n: int, path: str | Path
    ) -> "ReachabilityIndex":
        pos = 0
        sides = []
        try:
            for _side in range(2):
                labels_per_vertex = []
                for _v in range(n):
                    count, pos = _read_varint(data, pos)
                    labels = array("q")
                    value = 0
                    for _i in range(count):
                        delta, pos = _read_varint(data, pos)
                        value += delta
                        labels.append(value)
                    labels_per_vertex.append(labels)
                sides.append(labels_per_vertex)
        except ValueError as exc:
            raise ValueError(f"{path}: truncated compressed payload") from exc
        return cls(sides[0], sides[1])

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReachabilityIndex):
            return NotImplemented
        return (
            self._in_labels == other._in_labels
            and self._out_labels == other._out_labels
        )

    def __hash__(self) -> int:
        return hash((self.num_vertices, self.num_entries))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReachabilityIndex(n={self.num_vertices}, "
            f"entries={self.num_entries}, delta={self.largest_label})"
        )


@dataclass(frozen=True)
class LabelingResult:
    """An index together with the run statistics that produced it."""

    index: ReachabilityIndex
    stats: "RunStats"
