"""Index a graph through its SCC condensation.

The paper deliberately indexes cyclic graphs *directly*, because
distributed SCC contraction is expensive (Section II-C).  On a single
machine, however, condensing first is a classic optimization: every
vertex of a strongly connected component shares the component's
labels, so the index stores one label pair per component instead of
per vertex.  This module provides that option and the query mapping;
answers are identical to a direct index (property-tested), only the
representation changes.
"""

from __future__ import annotations

from repro.core.build import build_index
from repro.core.labels import LabelingResult, ReachabilityIndex
from repro.graph.digraph import DiGraph
from repro.graph.scc import Condensation, condensation


class CondensedIndex:
    """A reachability index over SCCs with a vertex-level query API."""

    def __init__(self, cond: Condensation, dag_index: ReachabilityIndex):
        self._cond = cond
        self._dag_index = dag_index

    @property
    def num_vertices(self) -> int:
        """Number of original vertices covered."""
        return len(self._cond.component_of)

    @property
    def num_components(self) -> int:
        """Number of SCCs (vertices of the condensation DAG)."""
        return len(self._cond.members)

    @property
    def dag_index(self) -> ReachabilityIndex:
        """The underlying component-level index."""
        return self._dag_index

    def query(self, s: int, t: int) -> bool:
        """``q(s, t)`` in the original (possibly cyclic) graph."""
        cs = self._cond.component_of[s]
        ct = self._cond.component_of[t]
        return cs == ct or self._dag_index.query(cs, ct)

    def size_bytes(self, entry_bytes: int = 8) -> int:
        """Component labels plus the vertex-to-component map."""
        return self._dag_index.size_bytes(entry_bytes) + 4 * self.num_vertices

    def component_of(self, v: int) -> int:
        """The SCC id of vertex ``v``."""
        return self._cond.component_of[v]


def build_condensed_index(
    graph: DiGraph, method: str = "drl-b", **kwargs
) -> tuple[CondensedIndex, LabelingResult]:
    """Condense ``graph`` and index the DAG with any labeling method.

    Returns the vertex-level query wrapper and the underlying
    :class:`LabelingResult` (whose stats describe the DAG run).
    """
    cond = condensation(graph)
    result = build_index(cond.dag, method=method, **kwargs)
    return CondensedIndex(cond, result.index), result
