"""Index validation utilities.

Library-grade checks a downstream user can run against any index —
their own, a loaded one, or one produced by a modified algorithm:

- :func:`check_cover` — the cover constraint (Definition 3) against
  exact reachability, for all pairs or a sample.
- :func:`check_soundness` — every label entry corresponds to a real
  reachability relation (necessary for any correct index).
- :func:`check_canonical` — the index is *exactly* TOL's under a given
  order (Theorem 1's characterisation), i.e. no redundant entries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.baselines.transitive_closure import TransitiveClosure
from repro.core.labels import ReachabilityIndex
from repro.graph.digraph import DiGraph
from repro.graph.order import VertexOrder


#: Violation messages kept per report; the rest are only counted.
MAX_MESSAGES = 20


@dataclass
class ValidationReport:
    """Outcome of a validation pass.

    At most :data:`MAX_MESSAGES` violation messages are stored;
    further violations are still *counted* in :attr:`suppressed` (and
    still fail the report), they just carry no message text.
    """

    checked: int = 0
    violations: list[str] = field(default_factory=list)
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        """True when no violation was found."""
        return not self.violations and not self.suppressed

    @property
    def total_violations(self) -> int:
        """All violations found, including suppressed ones."""
        return len(self.violations) + self.suppressed

    def add(self, message: str) -> None:
        """Record a violation (keeps at most :data:`MAX_MESSAGES`
        messages; the overflow is tallied in :attr:`suppressed`)."""
        if len(self.violations) < MAX_MESSAGES:
            self.violations.append(message)
        else:
            self.suppressed += 1

    def __str__(self) -> str:
        if self.ok:
            return f"OK ({self.checked} checked)"
        head = f"FAILED ({self.checked} checked, {self.total_violations} violations"
        if self.suppressed:
            head += f", {self.suppressed} suppressed"
        return head + ")"


def check_cover(
    index: ReachabilityIndex,
    graph: DiGraph,
    sample: int | None = None,
    seed: int = 0,
) -> ValidationReport:
    """Verify ``q(s, t) ⇔ s → t`` for all pairs (or a random sample)."""
    if index.num_vertices != graph.num_vertices:
        report = ValidationReport()
        report.add("index and graph disagree on the vertex count")
        return report
    oracle = TransitiveClosure(graph)
    n = graph.num_vertices
    report = ValidationReport()
    if sample is None:
        pairs = ((s, t) for s in range(n) for t in range(n))
    else:
        rng = random.Random(seed)
        pairs = (
            (rng.randrange(n), rng.randrange(n)) for _ in range(sample)
        )
    for s, t in pairs:
        report.checked += 1
        expected = oracle.query(s, t)
        if index.query(s, t) != expected:
            verb = "misses" if expected else "fabricates"
            report.add(f"query({s}, {t}) {verb} reachability")
    return report


def check_soundness(index: ReachabilityIndex, graph: DiGraph) -> ValidationReport:
    """Verify every label entry encodes a true reachability relation:
    ``u ∈ L_in(w) ⇒ u → w`` and ``u ∈ L_out(w) ⇒ w → u``."""
    oracle = TransitiveClosure(graph)
    report = ValidationReport()
    for w in range(index.num_vertices):
        for u in index.in_labels(w):
            report.checked += 1
            if not oracle.query(u, w):
                report.add(f"{u} ∈ L_in({w}) but {u} cannot reach {w}")
        for u in index.out_labels(w):
            report.checked += 1
            if not oracle.query(w, u):
                report.add(f"{u} ∈ L_out({w}) but {w} cannot reach {u}")
    return report


def check_canonical(
    index: ReachabilityIndex, graph: DiGraph, order: VertexOrder
) -> ValidationReport:
    """Verify the index is exactly TOL's under ``order`` (Theorem 1):
    ``u ∈ L_in(w)`` iff ``u`` is the highest-order vertex on every
    ``u``-``w`` walk, and symmetrically for out-labels."""
    from repro.core.backward import backward_label_sets

    report = ValidationReport()
    backward_in, backward_out = backward_label_sets(graph, order)
    for side, backward, getter in (
        ("L_in", backward_in, index.in_labels),
        ("L_out", backward_out, index.out_labels),
    ):
        expected: list[set[int]] = [set() for _ in range(graph.num_vertices)]
        for hub, members in backward.items():
            for w in members:
                expected[w].add(hub)
        for w in range(graph.num_vertices):
            report.checked += 1
            actual = set(getter(w))
            if actual != expected[w]:
                missing = expected[w] - actual
                extra = actual - expected[w]
                report.add(
                    f"{side}({w}): missing {sorted(missing)}, "
                    f"redundant {sorted(extra)}"
                )
    return report
