"""Backward label sets and the filtering-and-refinement framework.

Pure-function implementations of the paper's three characterisations of
``L⁻_in(v) = {w | v ∈ L_in(w)}`` (Definition 4):

- Theorem 2 (naive):    ``DES(v) − ∪_{u ∈ DES_hig(v)} DES(u)``
- Theorem 3 (basic):    ``BFS_low(v) − ∪_{u ∈ BFS_hig(v)} DES(u)``
- Theorem 4 (improved): ``BFS_low(v) − {w | ∃u ∈ IBFS_low(v),
  w ∈ BFS_low(u)}``

These serve as independent oracles for the distributed algorithms and
as readable statements of the theory.  ``L⁻_out`` is obtained by
applying the same functions to the inverse graph.

Note on ``IBFS_low`` (Definition 6): a trimmed BFS trivially visits its
own source, so the literal definition would put ``v`` in its own
inverted list and Theorem 4's refinement would then eliminate
everything.  As in the paper's Algorithm 3 (where a source never
processes its own message), the inverted lists here exclude the source
itself.
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph
from repro.graph.order import VertexOrder
from repro.graph.traversal import reachable_set, trimmed_bfs


def higher_order_descendants(
    graph: DiGraph, v: int, order: VertexOrder
) -> set[int]:
    """``DES_hig(v)``: descendants with order higher than ``v`` (Def. 5)."""
    return {u for u in reachable_set(graph, v) if order.higher(u, v)}


def backward_in_labels_naive(
    graph: DiGraph, v: int, order: VertexOrder
) -> set[int]:
    """Theorem 2: filter with ``DES(v)``, refine with ``DES_hig(v)``."""
    candidates = reachable_set(graph, v)
    for u in higher_order_descendants(graph, v, order):
        candidates -= reachable_set(graph, u)
    return candidates


def backward_in_labels_basic(
    graph: DiGraph, v: int, order: VertexOrder
) -> set[int]:
    """Theorem 3: filter with ``BFS_low(v)``, refine with ``BFS_hig(v)``."""
    result = trimmed_bfs(graph, v, order)
    candidates = set(result.low)
    for u in result.high:
        candidates -= reachable_set(graph, u)
    return candidates


def backward_in_labels_improved(
    graph: DiGraph, order: VertexOrder
) -> dict[int, set[int]]:
    """Theorem 4 for *all* vertices: refinement via inverted lists.

    Returns ``{v: L⁻_in(v)}``.  Unlike the naive and basic variants this
    is an all-sources computation, because the inverted lists couple the
    vertices together.
    """
    n = graph.num_vertices
    reverse = graph.reverse()
    forward_low = [set(trimmed_bfs(graph, v, order).low) for v in range(n)]
    inverted: list[list[int]] = [[] for _ in range(n)]
    for u in range(n):
        for w in trimmed_bfs(reverse, u, order).low:
            if w != u:  # see the module docstring on self-visits
                inverted[w].append(u)
    backward: dict[int, set[int]] = {}
    for v in range(n):
        eliminated: set[int] = set()
        for u in inverted[v]:
            eliminated |= forward_low[u]
        backward[v] = forward_low[v] - eliminated
    return backward


def backward_label_sets(
    graph: DiGraph, order: VertexOrder
) -> tuple[dict[int, set[int]], dict[int, set[int]]]:
    """Both backward directions for all vertices, via Theorem 4.

    Returns ``(backward_in, backward_out)``; the out direction is the
    in direction of the inverse graph.
    """
    backward_in = backward_in_labels_improved(graph, order)
    backward_out = backward_in_labels_improved(graph.reverse(), order)
    return backward_in, backward_out
