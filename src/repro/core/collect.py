"""Collecting the distributed index onto one machine.

After labeling, the paper collects every vertex's label sets "on one
machine to obtain an index the same as TOL to support reachability
queries" (end of Section III-D), which is viable precisely because the
TOL index is small (their SK example: ≤ 1 GB for billions of edges).
This module models that gather step: its network cost, and whether the
collected index fits the query machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.labels import ReachabilityIndex
from repro.pregel.cost_model import CostModel


@dataclass(frozen=True)
class CollectionPlan:
    """Cost estimate for gathering a distributed index on one node.

    Attributes
    ----------
    total_bytes:
        Bytes shipped to the collector (the full index, minus the share
        already resident on the collecting node).
    seconds:
        Simulated gather time: payload at ``t_byte`` plus one barrier.
    fits_in_memory:
        Whether the collected index respects the node's memory budget.
    """

    total_bytes: int
    seconds: float
    fits_in_memory: bool


def plan_collection(
    index: ReachabilityIndex,
    num_nodes: int,
    cost_model: CostModel | None = None,
) -> CollectionPlan:
    """Estimate the cost of gathering ``index`` from ``num_nodes`` nodes.

    A hash-partitioned index is spread evenly, so the collector already
    holds ``1/num_nodes`` of it; the rest crosses the network once.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be at least 1")
    if cost_model is None:
        cost_model = CostModel()
    index_bytes = index.size_bytes(cost_model.entry_bytes)
    shipped = 0 if num_nodes == 1 else index_bytes * (num_nodes - 1) // num_nodes
    seconds = shipped * cost_model.t_byte + cost_model.t_barrier
    fits = index_bytes <= cost_model.node_memory_bytes
    return CollectionPlan(
        total_bytes=shipped, seconds=seconds, fits_in_memory=fits
    )
