"""DRL⁻ — the basic labeling method (Theorem 3) on the cluster.

Two vertex-centric phases per run:

1. **Filtering**: all-sources trimmed-BFS flooding (both directions at
   once, like DRL but with no ``Check`` refinement), which also records
   each source's blocker set ``BFS_hig(v)``.
2. **Refinement**: a *plain* BFS flood from every distinct blocker
   (``∪_v BFS_hig(v)``), computing which blockers reach which vertices;
   ``w`` is then removed from ``L⁻_in(v)`` iff some ``u ∈ BFS_hig(v)``
   reaches ``w``.

The refinement floods are untrimmed and numerous — this is precisely
why DRL⁻ is orders of magnitude slower than DRL (Fig. 5) and times out
on several graphs.
"""

from __future__ import annotations

from repro.core.drl import FORWARD, REVERSE
from repro.core.labels import LabelingResult, ReachabilityIndex
from repro.faults import FaultPlan
from repro.graph.digraph import DiGraph
from repro.graph.order import VertexOrder, degree_order
from repro.graph.partition import Partitioner
from repro.pregel.cost_model import CostModel
from repro.pregel.engine import Cluster, ComputeContext, FinalizeContext
from repro.pregel.metrics import RunStats
from repro.pregel.vertex_program import VertexProgram
from repro.telemetry import trace_span


class _TrimmedFloodProgram(VertexProgram):
    """Phase 1: trimmed BFS from every vertex, recording blockers."""

    mp_supported = True

    def __init__(self, graph: DiGraph, order: VertexOrder):
        n = graph.num_vertices
        self._graph = graph
        self._rank = order.ranks
        self.fwd_set: list[set[int]] = [set() for _ in range(n)]
        self.rev_set: list[set[int]] = [set() for _ in range(n)]
        # BFS_hig per source, per direction (shared for refinement).
        self.hig_fwd: list[set[int]] = [set() for _ in range(n)]
        self.hig_rev: list[set[int]] = [set() for _ in range(n)]

    def compute(self, ctx: ComputeContext, w: int, messages) -> None:
        if ctx.superstep == 1:
            ctx.charge()
            self.fwd_set[w].add(w)
            self.rev_set[w].add(w)
            graph = self._graph
            for x in graph.out_neighbors(w):
                ctx.charge()
                ctx.send(x, (w, FORWARD))
            for x in graph.in_neighbors(w):
                ctx.charge()
                ctx.send(x, (w, REVERSE))
            return
        rank = self._rank
        for v, direction in messages:
            status = self.fwd_set[w] if direction == FORWARD else self.rev_set[w]
            if v in status:
                continue
            if rank[v] >= rank[w]:
                # w blocks the branch and becomes part of BFS_hig(v);
                # the blocker entry is replicated for the refinement.
                hig = self.hig_fwd[v] if direction == FORWARD else self.hig_rev[v]
                if w not in hig:
                    hig.add(w)
                    ctx.publish_entries()
                continue
            status.add(v)
            graph = self._graph
            neighbors = (
                graph.out_neighbors(w)
                if direction == FORWARD
                else graph.in_neighbors(w)
            )
            for x in neighbors:
                ctx.charge()
                ctx.send(x, (v, direction))

    # -- multiprocessing-engine hooks ----------------------------------
    # ``hig_fwd[v]`` is keyed by the *source* ``v`` but written by the
    # computing vertex ``w``'s owner, so under the mp engine each worker
    # replica accumulates a disjoint-by-``w`` share of every blocker
    # set.  The sets are never read during the flood (only by phase 2,
    # which starts after collection), so a union merge at the end is
    # exact — and the ``w not in hig`` dedup stays exact too, because
    # all adds of a given ``w`` happen on one worker.
    def mp_collect(self, vertices):
        return (
            [(w, self.fwd_set[w], self.rev_set[w]) for w in vertices],
            [(v, s) for v, s in enumerate(self.hig_fwd) if s],
            [(v, s) for v, s in enumerate(self.hig_rev) if s],
        )

    def mp_merge(self, collected) -> None:
        label_sets, hig_fwd, hig_rev = collected
        for w, fwd, rev in label_sets:
            self.fwd_set[w] = fwd
            self.rev_set[w] = rev
        for v, blockers in hig_fwd:
            self.hig_fwd[v] |= blockers
        for v, blockers in hig_rev:
            self.hig_rev[v] |= blockers


class _DescendantFloodProgram(VertexProgram):
    """Phase 2: plain reachability flood from every distinct blocker,
    followed by the Theorem 3 set subtraction in ``finalize``."""

    mp_supported = True

    def __init__(self, filtering: _TrimmedFloodProgram, graph: DiGraph):
        n = graph.num_vertices
        self._graph = graph
        self._filtering = filtering
        self._src_fwd = bytearray(n)
        self._src_rev = bytearray(n)
        for hig in filtering.hig_fwd:
            for u in hig:
                self._src_fwd[u] = 1
        for hig in filtering.hig_rev:
            for u in hig:
                self._src_rev[u] = 1
        self.des_fwd: list[set[int]] = [set() for _ in range(n)]
        self.des_rev: list[set[int]] = [set() for _ in range(n)]

    def compute(self, ctx: ComputeContext, w: int, messages) -> None:
        if ctx.superstep == 1:
            graph = self._graph
            if self._src_fwd[w]:
                ctx.charge()
                self.des_fwd[w].add(w)
                for x in graph.out_neighbors(w):
                    ctx.charge()
                    ctx.send(x, (w, FORWARD))
            if self._src_rev[w]:
                ctx.charge()
                self.des_rev[w].add(w)
                for x in graph.in_neighbors(w):
                    ctx.charge()
                    ctx.send(x, (w, REVERSE))
            return
        graph = self._graph
        for u, direction in messages:
            des = self.des_fwd[w] if direction == FORWARD else self.des_rev[w]
            if u in des:
                continue
            des.add(u)
            neighbors = (
                graph.out_neighbors(w)
                if direction == FORWARD
                else graph.in_neighbors(w)
            )
            for x in neighbors:
                ctx.charge()
                ctx.send(x, (u, direction))

    def finalize_vertices(self, fctx: FinalizeContext, vertices) -> None:
        """Theorem 3: drop ``w`` from ``L⁻(v)`` when a blocker of ``v``
        reaches ``w``.  Per-vertex: ``w``'s refinement only writes
        ``w``'s filtering sets and reads the (complete) blocker sets."""
        filtering = self._filtering
        for w in vertices:
            self._refine(fctx, w, filtering.fwd_set[w], filtering.hig_fwd, self.des_fwd[w])
            self._refine(fctx, w, filtering.rev_set[w], filtering.hig_rev, self.des_rev[w])

    # -- multiprocessing-engine hooks ----------------------------------
    # Collect both the descendant sets and the filtering sets this
    # worker's finalize pass refined in its replica.
    def mp_collect(self, vertices):
        filtering = self._filtering
        return [
            (
                w,
                self.des_fwd[w],
                self.des_rev[w],
                filtering.fwd_set[w],
                filtering.rev_set[w],
            )
            for w in vertices
        ]

    def mp_merge(self, collected) -> None:
        filtering = self._filtering
        for w, des_fwd, des_rev, fwd, rev in collected:
            self.des_fwd[w] = des_fwd
            self.des_rev[w] = des_rev
            filtering.fwd_set[w] = fwd
            filtering.rev_set[w] = rev

    @staticmethod
    def _refine(
        fctx: FinalizeContext,
        w: int,
        local: set[int],
        hig: list[set[int]],
        reaching: set[int],
    ) -> None:
        for v in sorted(local):
            blockers = hig[v]
            small, large = (
                (blockers, reaching)
                if len(blockers) < len(reaching)
                else (reaching, blockers)
            )
            fctx.charge(w, len(small) + 1)
            if any(u in large for u in small):
                local.discard(v)


def drl_basic_index(
    graph: DiGraph,
    order: VertexOrder | None = None,
    num_nodes: int = 32,
    cost_model: CostModel | None = None,
    partitioner: Partitioner | None = None,
    faults: FaultPlan | None = None,
    checkpoint_interval: int | None = None,
    node_timeline: bool = False,
    engine: str = "sim",
    workers: int | None = None,
) -> LabelingResult:
    """Build the TOL index with DRL⁻ (Theorem 3) on a cluster.

    May raise :class:`~repro.errors.TimeLimitExceeded`: on graphs with
    many blockers the refinement floods exceed the cut-off, exactly as
    in the paper's Fig. 5/6 failure markers.  Both phases share one
    cluster, so a fault plan's crash events fire at most once across
    the whole build.
    """
    if order is None:
        order = degree_order(graph)
    cluster = Cluster(
        num_nodes=num_nodes,
        cost_model=cost_model,
        partitioner=partitioner,
        faults=faults,
        checkpoint_interval=checkpoint_interval,
        engine=engine,
        workers=workers,
    )
    stats = RunStats(num_nodes=cluster.num_nodes)
    stats.per_node_units = [0] * cluster.num_nodes

    with trace_span(
        "drl-.build", vertices=graph.num_vertices, num_nodes=num_nodes
    ) as span:
        filtering = _TrimmedFloodProgram(graph, order)
        with trace_span("drl-.filtering") as phase:
            cluster.run(graph, filtering, stats=stats, node_timeline=node_timeline)
            phase.add_simulated(stats.simulated_seconds)
        refinement = _DescendantFloodProgram(filtering, graph)
        with trace_span("drl-.refinement") as phase:
            before = stats.simulated_seconds
            cluster.run(graph, refinement, stats=stats, node_timeline=node_timeline)
            phase.add_simulated(stats.simulated_seconds - before)
        with trace_span("drl-.collection"):
            index = ReachabilityIndex.from_label_lists(
                filtering.fwd_set, filtering.rev_set
            )
        span.add_simulated(stats.simulated_seconds)
        span.set(entries=index.num_entries)
    return LabelingResult(index=index, stats=stats)
