"""One-call façade over every index construction method."""

from __future__ import annotations

from typing import Callable

from repro.core.drl import drl_index
from repro.core.drl_basic import drl_basic_index
from repro.core.drl_batch import drl_batch_index
from repro.core.labels import LabelingResult
from repro.core.multicore import drl_multicore_index
from repro.core.tol import tol_index
from repro.graph.digraph import DiGraph
from repro.graph.order import VertexOrder
from repro.pregel.serial import SerialMeter


def _tol_result(graph, order=None, num_nodes=1, cost_model=None, **_) -> LabelingResult:
    meter = SerialMeter(cost_model)
    index = tol_index(graph, order=order, meter=meter)
    return LabelingResult(index=index, stats=meter.stats())


_METHODS: dict[str, Callable[..., LabelingResult]] = {
    "tol": _tol_result,
    "drl-": drl_basic_index,
    "drl": drl_index,
    "drl-b": drl_batch_index,
    "drl-b-m": lambda graph, num_nodes=32, **kw: drl_multicore_index(
        graph, num_cores=num_nodes, **kw
    ),
}


def build_index(
    graph: DiGraph,
    method: str = "drl-b",
    order: VertexOrder | None = None,
    num_nodes: int = 32,
    **kwargs,
) -> LabelingResult:
    """Build a TOL-identical reachability index with the chosen method.

    Parameters
    ----------
    graph:
        The input graph (cyclic allowed).
    method:
        One of ``"tol"`` (serial Algorithm 1), ``"drl-"`` (Theorem 3),
        ``"drl"`` (Algorithm 3), ``"drl-b"`` (Algorithm 4, the paper's
        best), or ``"drl-b-m"`` (multi-core DRL_b).
    order:
        Vertex order; defaults to the paper's degree-based order.
    num_nodes:
        Simulated cluster size (cores, for ``"drl-b-m"``); ignored by
        ``"tol"``.
    kwargs:
        Method-specific options (``cost_model``, ``partitioner``,
        ``initial_batch_size``, ``growth_factor``, ``faults``,
        ``checkpoint_interval``, ...).  The serial ``"tol"`` baseline
        runs on one machine and ignores cluster-only options such as
        fault plans.

    Returns
    -------
    LabelingResult
        The index (identical across all methods) plus run statistics.
    """
    try:
        builder = _METHODS[method]
    except KeyError:
        known = ", ".join(sorted(_METHODS))
        raise ValueError(f"unknown method {method!r}; choose one of: {known}")
    return builder(graph, order=order, num_nodes=num_nodes, **kwargs)


METHOD_NAMES = tuple(sorted(_METHODS))
"""All method names accepted by :func:`build_index`."""
