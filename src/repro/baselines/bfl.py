"""BFL — Bloom Filter Labeling (Su et al., TKDE'16): ``BFL^C``.

The index-assisted competitor of Exp 2.  Each vertex ``v`` carries a
Bloom-filter summary of ``DES(v)`` (out-label) and ``ANC(v)``
(in-label) plus a DFS-tree interval:

- if ``t`` lies in ``s``'s DFS subtree, ``s → t`` — answered positively
  from the interval alone;
- if ``bloom_out(t) ⊄ bloom_out(s)`` then ``DES(t) ⊄ DES(s)`` and
  ``s ↛ t`` — answered negatively from labels alone;
- otherwise the query falls back to a label-pruned graph search, which
  is why BFL must keep the graph in memory at query time (the key
  disadvantage the paper exploits on distributed graphs).

Cyclic graphs are handled through SCC condensation — this is where the
DFS post-order requirement comes from, and why a distributed version
needs distributed DFS (see :mod:`repro.baselines.bfl_distributed`).
"""

from __future__ import annotations

import random

from repro.graph.digraph import DiGraph
from repro.graph.scc import Condensation, condensation
from repro.pregel.serial import SerialMeter

#: Default Bloom-filter width in bits (the BFL paper's default setup
#: uses 160-bit filters).
DEFAULT_S_BITS = 160


class BflIndex:
    """A built BFL index; query via :meth:`query`."""

    def __init__(
        self,
        graph: DiGraph,
        cond: Condensation,
        pre: list[int],
        post: list[int],
        bloom_out: list[int],
        bloom_in: list[int],
        s_bits: int,
    ):
        self._graph = graph
        self._cond = cond
        self._pre = pre
        self._post = post
        self._bloom_out = bloom_out
        self._bloom_in = bloom_in
        self._s_bits = s_bits

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of indexed vertices."""
        return self._graph.num_vertices

    def size_bytes(self) -> int:
        """Index size: two Bloom filters + one interval per component,
        plus the vertex-to-component map."""
        per_component = 2 * (self._s_bits // 8) + 16
        return (
            len(self._bloom_out) * per_component + 4 * self._graph.num_vertices
        )

    # ------------------------------------------------------------------
    def query(self, s: int, t: int, meter: SerialMeter | None = None) -> bool:
        """Answer ``s → t``; optionally charge work to ``meter``."""
        answer, _fallback = self.query_verbose(s, t, meter)
        return answer

    def query_verbose(
        self, s: int, t: int, meter: SerialMeter | None = None
    ) -> tuple[bool, bool]:
        """Returns ``(answer, used_graph_fallback)``."""
        cs = self._cond.component_of[s]
        ct = self._cond.component_of[t]
        if meter is not None:
            # Interval compare plus two Bloom subset tests over
            # s_bits-wide filters (one word-op per 64 bits).
            meter.charge(2 + 2 * max(1, self._s_bits // 64))
        if cs == ct:
            return True, False
        if self._tree_contains(cs, ct):
            return True, False
        if self._label_refutes(cs, ct):
            return False, False
        # Labels are inconclusive: label-pruned search on the DAG.
        return self._fallback_search(cs, ct, meter), True

    # ------------------------------------------------------------------
    def _tree_contains(self, cs: int, ct: int) -> bool:
        return self._pre[cs] <= self._pre[ct] and self._post[ct] <= self._post[cs]

    def _label_refutes(self, cs: int, ct: int) -> bool:
        if self._bloom_out[ct] & ~self._bloom_out[cs]:
            return True  # DES(t) not a subset of DES(s)
        if self._bloom_in[cs] & ~self._bloom_in[ct]:
            return True  # ANC(s) not a subset of ANC(t)
        return False

    def _fallback_search(self, cs: int, ct: int, meter: SerialMeter | None) -> bool:
        dag = self._cond.dag
        seen = {cs}
        stack = [cs]
        units = 0
        while stack:
            c = stack.pop()
            for d in dag.out_neighbors(c):
                units += 1
                if d == ct or self._tree_contains(d, ct):
                    if meter is not None:
                        meter.charge(units)
                    return True
                if d in seen or self._label_refutes(d, ct):
                    continue
                seen.add(d)
                stack.append(d)
        if meter is not None:
            meter.charge(units + 1)
        return False


def build_bfl(
    graph: DiGraph,
    s_bits: int = DEFAULT_S_BITS,
    seed: int = 0,
    meter: SerialMeter | None = None,
) -> BflIndex:
    """Build a BFL index (centralized, ``BFL^C``).

    Parameters
    ----------
    graph:
        Input graph (cycles handled via condensation).
    s_bits:
        Bloom-filter width.
    seed:
        Seed for the vertex-hash assignment.
    meter:
        Optional accounting/memory-gate meter (charges the condensation
        DFS, the interval DFS, and the Bloom merges).
    """
    n = graph.num_vertices
    if meter is not None:
        meter.check_memory(
            graph.memory_bytes() + n * (2 * s_bits // 8 + 24), what="BFL^C"
        )
        meter.charge(graph.num_edges + n)  # condensation DFS
    cond = condensation(graph)
    dag = cond.dag
    num_components = dag.num_vertices

    pre, post = _dfs_intervals(dag, meter)

    rng = random.Random(seed)
    word_units = max(1, s_bits // 64)
    bloom_out = [0] * num_components
    bloom_in = [0] * num_components
    # Tarjan emission order: out-neighbors of c precede c, so ascending
    # order merges descendants and descending order merges ancestors.
    for c in range(num_components):
        bits = 1 << rng.randrange(s_bits)
        for d in dag.out_neighbors(c):
            bits |= bloom_out[d]
            if meter is not None:
                meter.charge(word_units)
        bloom_out[c] = bits
    rng = random.Random(seed)  # same hash positions for the in side
    hashes = [1 << rng.randrange(s_bits) for _ in range(num_components)]
    for c in range(num_components - 1, -1, -1):
        bits = hashes[c]
        for d in dag.in_neighbors(c):
            bits |= bloom_in[d]
            if meter is not None:
                meter.charge(word_units)
        bloom_in[c] = bits
    return BflIndex(graph, cond, pre, post, bloom_out, bloom_in, s_bits)


def _dfs_intervals(
    dag: DiGraph, meter: SerialMeter | None
) -> tuple[list[int], list[int]]:
    """Pre/post numbering of a DFS forest over the DAG: the subtree of
    ``c`` occupies pre-order positions ``[pre[c], post[c]]``."""
    n = dag.num_vertices
    pre = [-1] * n
    post = [0] * n
    counter = 0
    units = 0
    # Tarjan emits components in reverse topological order, so high ids
    # are sources: rooting the DFS there gives deep, useful subtrees.
    for root in range(n - 1, -1, -1):
        if pre[root] != -1:
            continue
        stack = [(root, iter(dag.out_neighbors(root)))]
        pre[root] = counter
        counter += 1
        while stack:
            c, neighbors = stack[-1]
            advanced = False
            for d in neighbors:
                units += 1
                if pre[d] == -1:
                    pre[d] = counter
                    counter += 1
                    stack.append((d, iter(dag.out_neighbors(d))))
                    advanced = True
                    break
            if not advanced:
                post[c] = counter - 1
                stack.pop()
    if meter is not None:
        meter.charge(units + n)
    return pre, post
