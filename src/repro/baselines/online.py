"""Index-free online search (Section I / Related Work).

The motivating strawman: answering ``q(s, t)`` by searching the graph
at query time.  Centralized search is cheap per query but needs the
whole graph in memory; *distributed* online search additionally pays
network costs for every traversed cross-node edge, which is why the
paper dismisses index-free approaches for distributed graphs.
"""

from __future__ import annotations

from collections import deque

from repro.graph.digraph import DiGraph
from repro.graph.partition import HashPartitioner, Partitioner
from repro.pregel.cost_model import CostModel


class OnlineSearcher:
    """Centralized BFS-based reachability queries."""

    def __init__(self, graph: DiGraph, cost_model: CostModel | None = None):
        self._graph = graph
        self._cost = cost_model if cost_model is not None else CostModel()
        # Version-stamped visited array: queries reuse one allocation.
        self._stamp = 0
        self._seen = [0] * graph.num_vertices

    def query(self, s: int, t: int) -> bool:
        """BFS from ``s`` until ``t`` is found or the frontier empties."""
        answer, _units = self._search(s, t)
        return answer

    def query_with_cost(self, s: int, t: int) -> tuple[bool, float]:
        """Like :meth:`query`, also returning simulated seconds."""
        answer, units = self._search(s, t)
        return answer, units * self._cost.t_op

    def _search(self, s: int, t: int) -> tuple[bool, int]:
        if s == t:
            return True, 1
        self._stamp += 1
        stamp = self._stamp
        seen = self._seen
        graph = self._graph
        seen[s] = stamp
        queue = deque([s])
        units = 1
        while queue:
            u = queue.popleft()
            for w in graph.out_neighbors(u):
                units += 1
                if w == t:
                    return True, units
                if seen[w] != stamp:
                    seen[w] = stamp
                    queue.append(w)
        return False, units


class DistributedOnlineSearcher:
    """Per-query BFS over a partitioned graph with message accounting.

    Each BFS wavefront is one communication round; remote edges pay
    byte costs and every round pays a barrier — the latency the paper's
    introduction warns about.
    """

    def __init__(
        self,
        graph: DiGraph,
        num_nodes: int = 32,
        cost_model: CostModel | None = None,
        partitioner: Partitioner | None = None,
    ):
        self._graph = graph
        self._cost = cost_model if cost_model is not None else CostModel()
        partitioner = (
            partitioner if partitioner is not None else HashPartitioner(num_nodes)
        )
        self._node_of = [partitioner.node_of(v) for v in graph.vertices()]
        self._stamp = 0
        self._seen = [0] * graph.num_vertices

    def query(self, s: int, t: int) -> bool:
        """Distributed BFS answer only."""
        answer, _seconds = self.query_with_cost(s, t)
        return answer

    def query_with_cost(self, s: int, t: int) -> tuple[bool, float]:
        """Returns ``(answer, simulated seconds)`` for one query."""
        cost = self._cost
        if s == t:
            return True, cost.t_op
        self._stamp += 1
        stamp = self._stamp
        seen = self._seen
        graph = self._graph
        node_of = self._node_of
        seen[s] = stamp
        frontier = [s]
        seconds = cost.t_op
        while frontier:
            next_frontier = []
            units = 0
            remote_bytes = 0
            found = False
            for u in frontier:
                for w in graph.out_neighbors(u):
                    units += 1
                    if node_of[w] != node_of[u]:
                        remote_bytes += cost.message_bytes
                    if w == t:
                        found = True
                    if seen[w] != stamp:
                        seen[w] = stamp
                        next_frontier.append(w)
            seconds += units * cost.t_op + remote_bytes * cost.t_byte + cost.t_barrier
            if found:
                return True, seconds
            frontier = next_frontier
        return False, seconds


def ground_truth_matrix(graph: DiGraph) -> list[set[int]]:
    """``DES(v)`` for every vertex via repeated BFS (test helper)."""
    searcher = OnlineSearcher(graph)
    return [
        {t for t in graph.vertices() if searcher.query(s, t)}
        for s in graph.vertices()
    ]
