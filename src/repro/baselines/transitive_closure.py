"""Exact transitive closure — the ground-truth reachability oracle.

Stores one bitset of descendants per SCC of the condensation, computed
by a reverse-topological sweep with big-int bitwise ORs.  ``O(n²/64)``
space, so meant for tests and small/medium graphs (the paper's Related
Work explains why TC does not scale as an index).
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph
from repro.graph.scc import condensation


class TransitiveClosure:
    """Answers ``s → t`` exactly for every pair."""

    def __init__(self, graph: DiGraph):
        self._n = graph.num_vertices
        cond = condensation(graph)
        self._component_of = cond.component_of
        dag = cond.dag
        # Tarjan emits components in reverse topological order: every
        # out-neighbor of component c is emitted before c, so a single
        # forward sweep accumulates full descendant bitsets.
        num_components = dag.num_vertices
        closure = [0] * num_components
        for c in range(num_components):
            bits = 1 << c
            for d in dag.out_neighbors(c):
                bits |= closure[d]
            closure[c] = bits
        self._closure = closure

    @property
    def num_vertices(self) -> int:
        """Number of vertices covered."""
        return self._n

    def query(self, s: int, t: int) -> bool:
        """True iff ``s`` can reach ``t`` (every vertex reaches itself)."""
        cs = self._component_of[s]
        ct = self._component_of[t]
        return bool(self._closure[cs] >> ct & 1)

    def descendants(self, v: int) -> set[int]:
        """``DES(v)`` including ``v`` itself."""
        bits = self._closure[self._component_of[v]]
        component_of = self._component_of
        return {w for w in range(self._n) if bits >> component_of[w] & 1}

    def reachable_pairs(self) -> int:
        """Number of ordered pairs ``(s, t)`` with ``s → t``."""
        component_sizes = [0] * len(self._closure)
        for v in range(self._n):
            component_sizes[self._component_of[v]] += 1
        total = 0
        for c, bits in enumerate(self._closure):
            reachable = 0
            d = 0
            while bits:
                if bits & 1:
                    reachable += component_sizes[d]
                bits >>= 1
                d += 1
            total += component_sizes[c] * reachable
        return total
