"""Competitor methods evaluated against the DRL family.

- :mod:`~repro.baselines.bfl` — BFL (Su et al., TKDE'16), the
  index-assisted competitor of Exp 2 (centralized, ``BFL^C``).
- :mod:`~repro.baselines.bfl_distributed` — ``BFL^D``: the same index
  built and queried with distributed DFS.
- :mod:`~repro.baselines.online` — index-free online search, the
  motivation strawman of Section I.
- :mod:`~repro.baselines.transitive_closure` — exact reachability
  oracle (ground truth for tests, index-only strawman).
"""

from repro.baselines.bfl import BflIndex, build_bfl
from repro.baselines.chain_tc import ChainTcIndex, build_chain_tc
from repro.baselines.grail import GrailIndex, build_grail
from repro.baselines.ip_label import IpIndex, build_ip
from repro.baselines.bfl_distributed import (
    DistributedBflIndex,
    build_bfl_distributed,
)
from repro.baselines.online import (
    DistributedOnlineSearcher,
    OnlineSearcher,
)
from repro.baselines.transitive_closure import TransitiveClosure

__all__ = [
    "BflIndex",
    "ChainTcIndex",
    "DistributedBflIndex",
    "DistributedOnlineSearcher",
    "GrailIndex",
    "IpIndex",
    "OnlineSearcher",
    "TransitiveClosure",
    "build_bfl",
    "build_bfl_distributed",
    "build_chain_tc",
    "build_grail",
    "build_ip",
]
