"""GRAIL — scalable reachability via randomized interval labeling
(Yildirim, Chaoji, Zaki; VLDB'10).  Related-work baseline [7].

Each of ``d`` dimensions assigns every vertex an interval
``[m_i(v), r_i(v)]`` from a randomized post-order traversal of the
condensation DAG: ``r_i`` is the post-order rank and ``m_i`` the
minimum rank in the vertex's reachable set.  ``u → v`` implies
``L_i(v) ⊆ L_i(u)`` in every dimension, so a single non-containment
*refutes* reachability; containment in all dimensions is inconclusive
and falls back to an interval-pruned DFS — the same index-assisted
trade-off as BFL, with intervals instead of Bloom filters.
"""

from __future__ import annotations

import random

from repro.graph.digraph import DiGraph
from repro.graph.scc import Condensation, condensation
from repro.pregel.serial import SerialMeter

#: Default number of interval dimensions (GRAIL's paper uses 2-5).
DEFAULT_DIMENSIONS = 3


class GrailIndex:
    """A built GRAIL index; query via :meth:`query`."""

    def __init__(
        self,
        graph: DiGraph,
        cond: Condensation,
        mins: list[list[int]],
        ranks: list[list[int]],
    ):
        self._graph = graph
        self._cond = cond
        self._mins = mins    # one list per dimension, indexed by component
        self._ranks = ranks

    @property
    def num_dimensions(self) -> int:
        """Number of interval dimensions."""
        return len(self._mins)

    @property
    def num_vertices(self) -> int:
        """Number of indexed vertices."""
        return self._graph.num_vertices

    def size_bytes(self) -> int:
        """Two 4-byte rank fields per dimension per component, plus the
        vertex-to-component map."""
        components = len(self._cond.members)
        return components * 8 * self.num_dimensions + 4 * self.num_vertices

    # ------------------------------------------------------------------
    def query(self, s: int, t: int, meter: SerialMeter | None = None) -> bool:
        """Answer ``s → t``; optionally charge work to ``meter``."""
        answer, _fallback = self.query_verbose(s, t, meter)
        return answer

    def query_verbose(
        self, s: int, t: int, meter: SerialMeter | None = None
    ) -> tuple[bool, bool]:
        """Returns ``(answer, used_graph_fallback)``."""
        cs = self._cond.component_of[s]
        ct = self._cond.component_of[t]
        if meter is not None:
            meter.charge(1 + self.num_dimensions)
        if cs == ct:
            return True, False
        if self._refutes(cs, ct):
            return False, False
        return self._fallback_search(cs, ct, meter), True

    def _refutes(self, cs: int, ct: int) -> bool:
        """True when some dimension's interval containment fails."""
        for mins, ranks in zip(self._mins, self._ranks):
            if mins[ct] < mins[cs] or ranks[ct] > ranks[cs]:
                return True
        return False

    def _fallback_search(self, cs: int, ct: int, meter) -> bool:
        dag = self._cond.dag
        seen = {cs}
        stack = [cs]
        units = 0
        while stack:
            c = stack.pop()
            for d in dag.out_neighbors(c):
                units += 1
                if d == ct:
                    if meter is not None:
                        meter.charge(units)
                    return True
                if d in seen or self._refutes(d, ct):
                    continue
                seen.add(d)
                stack.append(d)
        if meter is not None:
            meter.charge(units + 1)
        return False


def build_grail(
    graph: DiGraph,
    dimensions: int = DEFAULT_DIMENSIONS,
    seed: int = 0,
    meter: SerialMeter | None = None,
) -> GrailIndex:
    """Build a GRAIL index with ``dimensions`` randomized traversals."""
    if dimensions < 1:
        raise ValueError("need at least one interval dimension")
    if meter is not None:
        meter.check_memory(
            graph.memory_bytes() + 8 * dimensions * graph.num_vertices,
            what="GRAIL",
        )
        meter.charge(graph.num_edges + graph.num_vertices)  # condensation
    cond = condensation(graph)
    dag = cond.dag
    mins: list[list[int]] = []
    ranks: list[list[int]] = []
    for dim in range(dimensions):
        rng = random.Random(seed * 1_000_003 + dim)
        rank = _randomized_postorder(dag, rng)
        if meter is not None:
            meter.charge(dag.num_edges + dag.num_vertices)
        low = list(rank)
        # Tarjan emission order is reverse topological: ascending ids
        # see their out-neighbors' minima already final.
        for c in range(dag.num_vertices):
            for d in dag.out_neighbors(c):
                if low[d] < low[c]:
                    low[c] = low[d]
                if meter is not None:
                    meter.charge()
        mins.append(low)
        ranks.append(rank)
    return GrailIndex(graph, cond, mins, ranks)


def _randomized_postorder(dag: DiGraph, rng: random.Random) -> list[int]:
    """Post-order ranks from a DFS with shuffled roots and children."""
    n = dag.num_vertices
    rank = [0] * n
    visited = bytearray(n)
    counter = 0
    # Roots in random order, high (source-side) components first so the
    # traversal trees are deep.
    roots = list(range(n - 1, -1, -1))
    rng.shuffle(roots)
    for root in roots:
        if visited[root]:
            continue
        visited[root] = 1
        children = list(dag.out_neighbors(root))
        rng.shuffle(children)
        stack = [(root, children)]
        while stack:
            v, pending = stack[-1]
            advanced = False
            while pending:
                w = pending.pop()
                if not visited[w]:
                    visited[w] = 1
                    grandchildren = list(dag.out_neighbors(w))
                    rng.shuffle(grandchildren)
                    stack.append((w, grandchildren))
                    advanced = True
                    break
            if not advanced:
                rank[v] = counter
                counter += 1
                stack.pop()
    return rank
