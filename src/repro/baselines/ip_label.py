"""IP — Independent-Permutation labeling (Wei et al., VLDB'14).

Related-work baseline [8]: an index-assisted scheme whose labels are
*k-min sketches*.  Under a random permutation ``π`` of the vertices,
``sketch_out(v)`` keeps the ``k`` smallest ``π``-values of ``DES(v)``
(and symmetrically ``sketch_in`` over ``ANC(v)``).  If ``s → t`` then
``DES(t) ⊆ DES(s)``, so every member of ``sketch_out(t)`` smaller than
``max(sketch_out(s))`` must appear in ``sketch_out(s)`` — a violated
containment *refutes* reachability from the labels alone.  When a
sketch is *complete* (the reachable set had fewer than ``k`` members),
the subset test is exact and can also answer positively.  Everything
else falls back to a sketch-pruned DFS, as with BFL and GRAIL.
"""

from __future__ import annotations

import random

from repro.graph.digraph import DiGraph
from repro.graph.scc import Condensation, condensation
from repro.pregel.serial import SerialMeter

DEFAULT_K = 16


class _SketchSide:
    """Per-direction sketches over the condensation."""

    __slots__ = ("sketches", "complete")

    def __init__(self, sketches: list[list[int]], complete: bytearray):
        self.sketches = sketches
        self.complete = complete

    def refutes(self, big: int, small: int) -> bool:
        """True when 'reachable set of `small` ⊆ reachable set of
        `big`' is disproven by the sketches."""
        sketch_big = self.sketches[big]
        sketch_small = self.sketches[small]
        if self.complete[big]:
            # Exact set: plain subset test.
            big_set = set(sketch_big)
            return any(x not in big_set for x in sketch_small)
        if not sketch_big:
            return bool(sketch_small)
        threshold = sketch_big[-1]  # max of the k smallest
        big_set = set(sketch_big)
        return any(x < threshold and x not in big_set for x in sketch_small)

    def confirms(self, big: int, small: int) -> bool:
        """True when both sketches are exact and subset holds."""
        if not (self.complete[big] and self.complete[small]):
            return False
        big_set = set(self.sketches[big])
        return all(x in big_set for x in self.sketches[small])


class IpIndex:
    """A built IP index; query via :meth:`query`."""

    def __init__(self, graph: DiGraph, cond: Condensation, k: int,
                 out_sides: list[_SketchSide], in_sides: list[_SketchSide]):
        self._graph = graph
        self._cond = cond
        self._k = k
        self._out_sides = out_sides
        self._in_sides = in_sides

    @property
    def num_permutations(self) -> int:
        """Number of independent permutations."""
        return len(self._out_sides)

    def size_bytes(self) -> int:
        """Sketch entries (4 bytes each) plus the component map."""
        entries = sum(
            len(s) for side in self._out_sides + self._in_sides
            for s in side.sketches
        )
        return 4 * entries + 4 * self._graph.num_vertices

    def query(self, s: int, t: int, meter: SerialMeter | None = None) -> bool:
        """Answer ``s → t``; optionally charge work to ``meter``."""
        answer, _fallback = self.query_verbose(s, t, meter)
        return answer

    def query_verbose(
        self, s: int, t: int, meter: SerialMeter | None = None
    ) -> tuple[bool, bool]:
        """Returns ``(answer, used_graph_fallback)``."""
        cs = self._cond.component_of[s]
        ct = self._cond.component_of[t]
        if meter is not None:
            meter.charge(1 + 2 * self._k * self.num_permutations)
        if cs == ct:
            return True, False
        if self._refutes(cs, ct):
            return False, False
        if self._confirms(cs, ct):
            return True, False
        return self._fallback_search(cs, ct, meter), True

    def _refutes(self, cs: int, ct: int) -> bool:
        return any(
            side.refutes(cs, ct) for side in self._out_sides
        ) or any(side.refutes(ct, cs) for side in self._in_sides)

    def _confirms(self, cs: int, ct: int) -> bool:
        return any(side.confirms(cs, ct) for side in self._out_sides)

    def _fallback_search(self, cs, ct, meter) -> bool:
        dag = self._cond.dag
        seen = {cs}
        stack = [cs]
        units = 0
        while stack:
            c = stack.pop()
            for d in dag.out_neighbors(c):
                units += 1
                if d == ct:
                    if meter is not None:
                        meter.charge(units)
                    return True
                if d in seen or self._refutes(d, ct):
                    continue
                if self._confirms(d, ct):
                    if meter is not None:
                        meter.charge(units)
                    return True
                seen.add(d)
                stack.append(d)
        if meter is not None:
            meter.charge(units + 1)
        return False


def build_ip(
    graph: DiGraph,
    k: int = DEFAULT_K,
    num_permutations: int = 2,
    seed: int = 0,
    meter: SerialMeter | None = None,
) -> IpIndex:
    """Build an IP index with ``num_permutations`` independent sketches."""
    if k < 1:
        raise ValueError("k must be at least 1")
    if num_permutations < 1:
        raise ValueError("need at least one permutation")
    if meter is not None:
        meter.check_memory(
            graph.memory_bytes()
            + 8 * k * num_permutations * graph.num_vertices,
            what="IP",
        )
        meter.charge(graph.num_edges + graph.num_vertices)
    cond = condensation(graph)
    dag = cond.dag
    out_sides = []
    in_sides = []
    for perm_index in range(num_permutations):
        rng = random.Random(seed * 7_368_787 + perm_index)
        pi = list(range(dag.num_vertices))
        rng.shuffle(pi)
        out_sides.append(_build_side(dag, pi, k, forward=True, meter=meter))
        in_sides.append(_build_side(dag, pi, k, forward=False, meter=meter))
    return IpIndex(graph, cond, k, out_sides, in_sides)


def _build_side(
    dag: DiGraph, pi: list[int], k: int, forward: bool, meter
) -> _SketchSide:
    """Merge k-min sketches over the DAG in (reverse) emission order."""
    n = dag.num_vertices
    sketches: list[list[int]] = [[] for _ in range(n)]
    complete = bytearray(n)
    order = range(n) if forward else range(n - 1, -1, -1)
    for c in order:
        neighbors = dag.out_neighbors(c) if forward else dag.in_neighbors(c)
        merged = {pi[c]}
        all_complete = True
        for d in neighbors:
            merged.update(sketches[d])
            all_complete = all_complete and bool(complete[d])
            if meter is not None:
                meter.charge(len(sketches[d]) + 1)
        smallest = sorted(merged)
        if len(smallest) <= k and all_complete:
            complete[c] = 1
        sketches[c] = smallest[:k]
    return _SketchSide(sketches, complete)
