"""``BFL^D`` — BFL built and queried with *distributed DFS* (Exp 2).

BFL's construction is tied to DFS post-order, and DFS is inherently
serial: a single token walks the graph, paying one network hop every
time it crosses a partition boundary and being unable to batch those
hops (unlike BSP messages).  Queries that the labels cannot decide must
traverse the distributed graph the same way.  Both facts make BFL^D
slow — the paper measures it ~52× slower than DRL_b at indexing and
~870× slower at querying, which is exactly the behaviour this model
reproduces.

The *index* produced is identical to ``BFL^C`` (same labels); only the
cost accounting differs.
"""

from __future__ import annotations

import random

from repro.baselines.bfl import DEFAULT_S_BITS, BflIndex, build_bfl
from repro.faults import FaultPlan
from repro.graph.digraph import DiGraph
from repro.graph.partition import HashPartitioner, Partitioner
from repro.pregel.cost_model import CostModel
from repro.pregel.metrics import RunStats


class DistributedBflIndex:
    """A BFL index whose fallback searches run on the distributed graph."""

    def __init__(
        self,
        inner: BflIndex,
        graph: DiGraph,
        node_of: list[int],
        cost_model: CostModel,
    ):
        self._inner = inner
        self._graph = graph
        self._node_of = node_of
        self._cost = cost_model
        self._stamp = 0
        self._seen = [0] * graph.num_vertices

    @property
    def inner(self) -> BflIndex:
        """The underlying label structure (same as BFL^C)."""
        return self._inner

    def size_bytes(self) -> int:
        """Same labels as BFL^C, hence the same index size."""
        return self._inner.size_bytes()

    def query(self, s: int, t: int) -> bool:
        """Distributed answer (identical truth value to BFL^C)."""
        answer, _seconds = self.query_with_cost(s, t)
        return answer

    def query_with_cost(self, s: int, t: int) -> tuple[bool, float]:
        """Returns ``(answer, simulated seconds)`` for one query.

        Label checks are free-ish (labels are small enough to
        replicate); an inconclusive query pays a serialized token walk
        over the partitioned graph, pruned by the labels like BFL^C's
        fallback but charged one ``t_hop`` per cross-node edge.
        """
        cost = self._cost
        answer, used_fallback = self._inner.query_verbose(s, t)
        # Labels live with their owning nodes: every query first fetches
        # the labels of s and t (two serialized hops).
        label_fetch = 2 * cost.t_hop + 8 * cost.t_op
        if not used_fallback:
            return answer, label_fetch
        units, hops = self._fallback_walk(s, t)
        return answer, label_fetch + units * cost.t_op + hops * cost.t_hop

    def _fallback_walk(self, s: int, t: int) -> tuple[int, int]:
        """Label-pruned DFS token walk from ``s``; counts work + hops."""
        inner = self._inner
        component_of = inner._cond.component_of
        ct = component_of[t]
        graph = self._graph
        node_of = self._node_of
        self._stamp += 1
        stamp = self._stamp
        seen = self._seen
        seen[s] = stamp
        stack = [s]
        units = 1
        hops = 0
        while stack:
            u = stack.pop()
            for w in graph.out_neighbors(u):
                units += 1
                if node_of[w] != node_of[u]:
                    hops += 1
                if w == t:
                    return units, hops
                if seen[w] == stamp:
                    continue
                cw = component_of[w]
                if cw == ct or inner._tree_contains(cw, ct):
                    return units, hops
                if inner._label_refutes(cw, ct):
                    continue
                seen[w] = stamp
                stack.append(w)
        return units, hops


def build_bfl_distributed(
    graph: DiGraph,
    num_nodes: int = 32,
    s_bits: int = DEFAULT_S_BITS,
    seed: int = 0,
    cost_model: CostModel | None = None,
    partitioner: Partitioner | None = None,
    faults: FaultPlan | None = None,
    checkpoint_interval: int | None = None,
) -> tuple[DistributedBflIndex, RunStats]:
    """Build BFL over a partitioned graph with distributed-DFS costs.

    Returns the index and a :class:`RunStats` whose simulated time
    reflects the serial token walk (computation) plus one ``t_hop`` for
    every cross-node edge traversal (communication).

    Faults (see :mod:`repro.faults`) are applied analytically — BFL^D
    has no super-steps, so a :class:`~repro.faults.NodeCrash`'s
    ``superstep`` is read as the *hop index* of the serialized token
    walk at which the node dies.  With ``checkpoint_interval`` the
    walker snapshots its visited map every that-many hops; a crash
    loses only the walk since the last snapshot, otherwise the whole
    walk restarts.  Stragglers slow the fraction of the walk spent on
    their partition; transit faults charge retransmitted hops.  As in
    the BSP engine, the produced index is identical to the fault-free
    build — only the cost accounting changes.
    """
    if cost_model is None:
        cost_model = CostModel()
    if checkpoint_interval is not None and checkpoint_interval < 1:
        raise ValueError("checkpoint_interval must be at least 1")
    if faults is not None:
        faults.validate_for(num_nodes)
    partitioner = (
        partitioner if partitioner is not None else HashPartitioner(num_nodes)
    )
    node_of = [partitioner.node_of(v) for v in graph.vertices()]

    # Work: the DFS/condensation and label merges (same as BFL^C).
    units = 2 * (graph.num_edges + graph.num_vertices)
    units += graph.num_vertices * max(1, s_bits // 64)
    # Token hops: the DFS walks every edge once forward and retreats
    # back over tree edges; crossing edges pay a serialized hop each way.
    hops = 0
    for u, v in graph.edges():
        if node_of[u] != node_of[v]:
            hops += 2
    computation = units * cost_model.t_op
    communication = hops * cost_model.t_hop

    inner = build_bfl(graph, s_bits=s_bits, seed=seed)
    stats = RunStats(
        num_nodes=num_nodes,
        compute_units=units,
        remote_messages=hops,
        remote_bytes=hops * cost_model.message_bytes,
        computation_seconds=computation,
        communication_seconds=communication,
        per_node_units=[units] + [0] * (num_nodes - 1),
    )
    if faults is not None or checkpoint_interval is not None:
        _apply_analytic_faults(
            stats, graph, node_of, hops, faults, checkpoint_interval, cost_model
        )
    cost_model.check_time(stats.simulated_seconds)
    return DistributedBflIndex(inner, graph, node_of, cost_model), stats


def _apply_analytic_faults(
    stats: RunStats,
    graph: DiGraph,
    node_of: list[int],
    hops: int,
    faults: FaultPlan | None,
    checkpoint_interval: int | None,
    cost: CostModel,
) -> None:
    """Fold a fault plan into BFL^D's analytic accounting (in place).

    The token walk is serial, so costs amortize cleanly: one "hop" of
    progress costs ``(computation + communication) / hops`` seconds,
    and a crash at hop ``s`` loses the progress since the last
    checkpointed hop.  Checkpoints persist the walker's visited map
    (one entry per vertex), written by the single active node.
    """
    n = graph.num_vertices
    checkpoint_bytes = n * cost.entry_bytes
    per_hop = stats.simulated_seconds / hops if hops else 0.0

    if checkpoint_interval is not None and hops:
        count = hops // checkpoint_interval
        stats.checkpoints += count
        stats.checkpoint_seconds += (
            count * checkpoint_bytes * cost.t_checkpoint_byte
        )
    if faults is None:
        return

    if faults.stragglers:
        slowdown = faults.slowdowns(stats.num_nodes)
        share = [0] * stats.num_nodes
        for v in range(n):
            share[node_of[v]] += 1
        if n:
            multiplier = sum(
                share[node] * slowdown[node] for node in range(stats.num_nodes)
            ) / n
            stats.computation_seconds *= multiplier

    if faults.has_transit_faults and hops:
        rng = random.Random(faults.seed)
        lost = duplicated = 0
        loss, dup = faults.loss_rate, faults.duplication_rate
        if loss:
            for _ in range(hops):
                if rng.random() < loss:
                    lost += 1
        if dup:
            for _ in range(hops):
                if rng.random() < dup:
                    duplicated += 1
        stats.messages_lost += lost
        stats.messages_duplicated += duplicated
        stats.communication_seconds += (lost + duplicated) * cost.t_hop

    for crash in faults.crashes:
        if crash.superstep > hops:
            continue  # the walk finished before the node died
        stats.crashes += 1
        if checkpoint_interval is not None:
            lost_hops = crash.superstep % checkpoint_interval
            restore = checkpoint_bytes * cost.t_checkpoint_byte
        else:
            lost_hops = crash.superstep
            restore = 0.0
        stats.recovery_seconds += (
            cost.failover_seconds + restore + lost_hops * per_hop
        )
