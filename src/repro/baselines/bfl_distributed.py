"""``BFL^D`` — BFL built and queried with *distributed DFS* (Exp 2).

BFL's construction is tied to DFS post-order, and DFS is inherently
serial: a single token walks the graph, paying one network hop every
time it crosses a partition boundary and being unable to batch those
hops (unlike BSP messages).  Queries that the labels cannot decide must
traverse the distributed graph the same way.  Both facts make BFL^D
slow — the paper measures it ~52× slower than DRL_b at indexing and
~870× slower at querying, which is exactly the behaviour this model
reproduces.

The *index* produced is identical to ``BFL^C`` (same labels); only the
cost accounting differs.
"""

from __future__ import annotations

from repro.baselines.bfl import DEFAULT_S_BITS, BflIndex, build_bfl
from repro.graph.digraph import DiGraph
from repro.graph.partition import HashPartitioner, Partitioner
from repro.pregel.cost_model import CostModel
from repro.pregel.metrics import RunStats


class DistributedBflIndex:
    """A BFL index whose fallback searches run on the distributed graph."""

    def __init__(
        self,
        inner: BflIndex,
        graph: DiGraph,
        node_of: list[int],
        cost_model: CostModel,
    ):
        self._inner = inner
        self._graph = graph
        self._node_of = node_of
        self._cost = cost_model
        self._stamp = 0
        self._seen = [0] * graph.num_vertices

    @property
    def inner(self) -> BflIndex:
        """The underlying label structure (same as BFL^C)."""
        return self._inner

    def size_bytes(self) -> int:
        """Same labels as BFL^C, hence the same index size."""
        return self._inner.size_bytes()

    def query(self, s: int, t: int) -> bool:
        """Distributed answer (identical truth value to BFL^C)."""
        answer, _seconds = self.query_with_cost(s, t)
        return answer

    def query_with_cost(self, s: int, t: int) -> tuple[bool, float]:
        """Returns ``(answer, simulated seconds)`` for one query.

        Label checks are free-ish (labels are small enough to
        replicate); an inconclusive query pays a serialized token walk
        over the partitioned graph, pruned by the labels like BFL^C's
        fallback but charged one ``t_hop`` per cross-node edge.
        """
        cost = self._cost
        answer, used_fallback = self._inner.query_verbose(s, t)
        # Labels live with their owning nodes: every query first fetches
        # the labels of s and t (two serialized hops).
        label_fetch = 2 * cost.t_hop + 8 * cost.t_op
        if not used_fallback:
            return answer, label_fetch
        units, hops = self._fallback_walk(s, t)
        return answer, label_fetch + units * cost.t_op + hops * cost.t_hop

    def _fallback_walk(self, s: int, t: int) -> tuple[int, int]:
        """Label-pruned DFS token walk from ``s``; counts work + hops."""
        inner = self._inner
        component_of = inner._cond.component_of
        ct = component_of[t]
        graph = self._graph
        node_of = self._node_of
        self._stamp += 1
        stamp = self._stamp
        seen = self._seen
        seen[s] = stamp
        stack = [s]
        units = 1
        hops = 0
        while stack:
            u = stack.pop()
            for w in graph.out_neighbors(u):
                units += 1
                if node_of[w] != node_of[u]:
                    hops += 1
                if w == t:
                    return units, hops
                if seen[w] == stamp:
                    continue
                cw = component_of[w]
                if cw == ct or inner._tree_contains(cw, ct):
                    return units, hops
                if inner._label_refutes(cw, ct):
                    continue
                seen[w] = stamp
                stack.append(w)
        return units, hops


def build_bfl_distributed(
    graph: DiGraph,
    num_nodes: int = 32,
    s_bits: int = DEFAULT_S_BITS,
    seed: int = 0,
    cost_model: CostModel | None = None,
    partitioner: Partitioner | None = None,
) -> tuple[DistributedBflIndex, RunStats]:
    """Build BFL over a partitioned graph with distributed-DFS costs.

    Returns the index and a :class:`RunStats` whose simulated time
    reflects the serial token walk (computation) plus one ``t_hop`` for
    every cross-node edge traversal (communication).
    """
    if cost_model is None:
        cost_model = CostModel()
    partitioner = (
        partitioner if partitioner is not None else HashPartitioner(num_nodes)
    )
    node_of = [partitioner.node_of(v) for v in graph.vertices()]

    # Work: the DFS/condensation and label merges (same as BFL^C).
    units = 2 * (graph.num_edges + graph.num_vertices)
    units += graph.num_vertices * max(1, s_bits // 64)
    # Token hops: the DFS walks every edge once forward and retreats
    # back over tree edges; crossing edges pay a serialized hop each way.
    hops = 0
    for u, v in graph.edges():
        if node_of[u] != node_of[v]:
            hops += 2
    computation = units * cost_model.t_op
    communication = hops * cost_model.t_hop
    cost_model.check_time(computation + communication)

    inner = build_bfl(graph, s_bits=s_bits, seed=seed)
    stats = RunStats(
        num_nodes=num_nodes,
        compute_units=units,
        remote_messages=hops,
        remote_bytes=hops * cost_model.message_bytes,
        computation_seconds=computation,
        communication_seconds=communication,
        per_node_units=[units] + [0] * (num_nodes - 1),
    )
    return DistributedBflIndex(inner, graph, node_of, cost_model), stats
