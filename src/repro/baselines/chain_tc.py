"""Chain-compressed transitive closure (Jagadish; Chen & Chen).

Related-work baseline [27]: an *index-only* approach that compresses
the transitive closure with a chain decomposition.  The (condensed)
DAG's vertices are partitioned into chains — paths in topological
order — and every vertex stores, per chain, the smallest chain
position it can reach.  A query is then two array lookups:

    s → t  ⇔  reach_s[chain(t)] ≤ position(t)

Exact with no graph fallback, like TOL's index, but with ``O(n·c)``
space for ``c`` chains — the trade-off the paper's Related Work section
describes for transitive-closure compression.
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph
from repro.graph.scc import Condensation, condensation
from repro.pregel.serial import SerialMeter

_UNREACHABLE = 0x7FFFFFFF


class ChainTcIndex:
    """A built chain-compressed transitive closure."""

    def __init__(
        self,
        cond: Condensation,
        chain_of: list[int],
        position: list[int],
        reach: list[list[int]],
    ):
        self._cond = cond
        self._chain_of = chain_of
        self._position = position
        self._reach = reach

    @property
    def num_chains(self) -> int:
        """Number of chains in the decomposition."""
        return len(self._reach[0]) if self._reach else 0

    @property
    def num_vertices(self) -> int:
        """Number of original vertices covered."""
        return len(self._cond.component_of)

    def size_bytes(self) -> int:
        """Per-component reach vectors (4 bytes per chain entry) plus
        chain/position/component maps."""
        components = len(self._reach)
        return 4 * components * self.num_chains + 12 * self.num_vertices

    def query(self, s: int, t: int, meter: SerialMeter | None = None) -> bool:
        """Exact ``s → t`` in O(1)."""
        if meter is not None:
            meter.charge(3)
        cs = self._cond.component_of[s]
        ct = self._cond.component_of[t]
        return self._reach[cs][self._chain_of[ct]] <= self._position[ct]


def build_chain_tc(
    graph: DiGraph, meter: SerialMeter | None = None
) -> ChainTcIndex:
    """Condense, decompose into chains, and materialize reach vectors."""
    cond = condensation(graph)
    dag = cond.dag
    n = dag.num_vertices
    if meter is not None:
        meter.charge(graph.num_edges + graph.num_vertices)

    chain_of, position, num_chains = _greedy_chains(dag)
    if meter is not None:
        meter.charge(dag.num_edges + n)

    # Reverse-topological sweep (Tarjan emission: ascending ids see
    # their out-neighbors first): minimum reachable position per chain.
    reach: list[list[int]] = [[] for _ in range(n)]
    for c in range(n):
        vector = [_UNREACHABLE] * num_chains
        vector[chain_of[c]] = position[c]
        for d in dag.out_neighbors(c):
            other = reach[d]
            for chain in range(num_chains):
                if other[chain] < vector[chain]:
                    vector[chain] = other[chain]
            if meter is not None:
                meter.charge(num_chains)
        reach[c] = vector
        if meter is not None:
            meter.check_memory(4 * (c + 1) * num_chains, what="chain TC")
    return ChainTcIndex(cond, chain_of, position, reach)


def _greedy_chains(dag: DiGraph) -> tuple[list[int], list[int], int]:
    """Greedy path cover in topological order.

    Walks vertices from sources to sinks (descending Tarjan emission
    ids), repeatedly extending each chain along the first unassigned
    out-neighbor.
    """
    n = dag.num_vertices
    chain_of = [-1] * n
    position = [0] * n
    num_chains = 0
    for start in range(n - 1, -1, -1):
        if chain_of[start] != -1:
            continue
        chain = num_chains
        num_chains += 1
        v = start
        pos = 0
        while True:
            chain_of[v] = chain
            position[v] = pos
            pos += 1
            extension = -1
            for w in dag.out_neighbors(v):
                if chain_of[w] == -1:
                    extension = w
                    break
            if extension == -1:
                break
            v = extension
    return chain_of, position, num_chains
