"""Campaign driver behind ``repro fuzz``.

Runs seeded cases through the oracle matrix, shrinks every failure,
serialises each reduced repro to ``fuzz-failures/*.json``, and renders
the per-family / per-oracle summary table.  Repro files replay with
``repro fuzz --replay FILE``.
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass, field, replace
from itertools import islice
from pathlib import Path
from typing import Callable, Iterator, Sequence

from repro.fuzz.cases import FuzzCase, _case_iter, generate_cases
from repro.fuzz.oracles import CaseResult, OracleFailure, run_case
from repro.fuzz.shrink import ShrinkResult, shrink_case

#: Default directory for serialized failure repros.
DEFAULT_FAILURES_DIR = Path("fuzz-failures")


@dataclass(frozen=True)
class FailureRecord:
    """One failing case: the original, its reduction, and the repro file."""

    case: FuzzCase
    failure: OracleFailure
    fingerprint: str
    shrunk: FuzzCase | None = None
    path: Path | None = None

    @property
    def reduced_vertices(self) -> int:
        """Vertex count of the repro actually written to disk."""
        final = self.shrunk if self.shrunk is not None else self.case
        return final.num_vertices


@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign."""

    seed: int
    requested: int | None
    completed: int = 0
    elapsed_seconds: float = 0.0
    budget_exhausted: bool = False
    family_cases: dict[str, int] = field(default_factory=dict)
    family_failures: dict[str, int] = field(default_factory=dict)
    oracle_runs: dict[str, int] = field(default_factory=dict)
    oracle_failures: dict[str, int] = field(default_factory=dict)
    failures: list[FailureRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every case passed every applicable oracle."""
        return not self.failures

    def record(self, result: CaseResult) -> None:
        """Fold one case result into the tallies."""
        self.completed += 1
        family = result.case.family
        self.family_cases[family] = self.family_cases.get(family, 0) + 1
        failed_oracles = {f.oracle for f in result.failures}
        if result.failures:
            self.family_failures[family] = (
                self.family_failures.get(family, 0) + 1
            )
        for name in result.oracles_run:
            self.oracle_runs[name] = self.oracle_runs.get(name, 0) + 1
            if name in failed_oracles:
                self.oracle_failures[name] = (
                    self.oracle_failures.get(name, 0) + 1
                )

    def render(self) -> str:
        """The campaign summary table."""
        lines = []
        requested = "∞" if self.requested is None else str(self.requested)
        verdict = "CLEAN" if self.ok else f"{len(self.failures)} FAILURE(S)"
        lines.append(
            f"fuzz campaign: seed {self.seed}, {self.completed}/{requested} "
            f"cases in {self.elapsed_seconds:.1f}s — {verdict}"
        )
        if self.budget_exhausted:
            lines.append("(stopped by --time-budget)")
        lines.append("")
        lines.append(f"{'family':<12} {'cases':>6} {'failures':>9}")
        for family in sorted(self.family_cases):
            lines.append(
                f"{family:<12} {self.family_cases[family]:>6} "
                f"{self.family_failures.get(family, 0):>9}"
            )
        lines.append("")
        lines.append(f"{'oracle':<18} {'runs':>6} {'failures':>9}")
        for oracle in sorted(self.oracle_runs):
            lines.append(
                f"{oracle:<18} {self.oracle_runs[oracle]:>6} "
                f"{self.oracle_failures.get(oracle, 0):>9}"
            )
        if self.failures:
            lines.append("")
            lines.append("failures:")
            for record in self.failures:
                where = f" -> {record.path}" if record.path else ""
                shrunk = ""
                if record.shrunk is not None:
                    shrunk = (
                        f" (shrunk {record.case.num_vertices} -> "
                        f"{record.shrunk.num_vertices} vertices)"
                    )
                lines.append(
                    f"  case {record.case.case_id} "
                    f"[{record.failure.oracle}]{shrunk}{where}"
                )
                lines.append(f"    {record.failure.message}")
        return "\n".join(lines)


def _repro_filename(seed: int, case_id: int, fingerprint: str) -> str:
    slug = re.sub(r"[^A-Za-z0-9_-]+", "-", fingerprint).strip("-")
    return f"case-s{seed}-{case_id}-{slug}.json"


def write_failure(
    record: FailureRecord, failures_dir: Path, seed: int
) -> Path:
    """Serialise one failure as a standalone JSON repro file."""
    failures_dir.mkdir(parents=True, exist_ok=True)
    final = record.shrunk if record.shrunk is not None else record.case
    payload = {
        "seed": seed,
        "case_id": record.case.case_id,
        "oracle": record.failure.oracle,
        "fingerprint": record.fingerprint,
        "message": record.failure.message,
        "case": final.concretize().to_dict(),
        "original_case": record.case.to_dict(),
    }
    path = failures_dir / _repro_filename(seed, record.case.case_id,
                                          record.fingerprint)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_failure(path: str | Path) -> dict:
    """Read a repro file; returns its dict with ``case`` as a FuzzCase."""
    data = json.loads(Path(path).read_text())
    if "case" not in data:  # a bare case file is also accepted
        data = {"case": data}
    data["case"] = FuzzCase.from_dict(data["case"])
    return data


def replay_failure(
    path: str | Path, oracles: dict | None = None
) -> tuple[dict, CaseResult]:
    """Re-run the oracle matrix on a serialized repro file."""
    data = load_failure(path)
    return data, run_case(data["case"], oracles=oracles)


def run_fuzz(
    seed: int = 0,
    count: int | None = 100,
    time_budget: float | None = None,
    families: Sequence[str] | None = None,
    failures_dir: Path | None = DEFAULT_FAILURES_DIR,
    shrink: bool = True,
    oracles: dict | None = None,
    max_vertices: int = 26,
    engine: str = "sim",
    progress: Callable[[str], None] | None = None,
) -> FuzzReport:
    """Run a fuzz campaign; fully deterministic for a given seed.

    ``count=None`` with a ``time_budget`` fuzzes until the budget runs
    out (the nightly-CI mode); the case stream is the same infinite
    sequence either way, so ``--cases 200`` sees exactly the first 200
    cases of ``--time-budget``'s stream for the same seed.  Failing
    cases are shrunk (unless ``shrink=False``) and written under
    ``failures_dir`` (``None`` disables the files).

    ``engine="mp"`` stamps every case so the ``engine-mismatch`` oracle
    cross-checks each method's multiprocessing build against the
    simulator build; the case stream itself is unchanged, so an mp
    campaign sees exactly the same graphs as a sim one.
    """
    if count is None and time_budget is None:
        raise ValueError("give a case count, a time budget, or both")
    report = FuzzReport(seed=seed, requested=count)
    cases: Iterator[FuzzCase] = _case_iter(
        seed, families=families, max_vertices=max_vertices
    )
    if engine != "sim":
        cases = (replace(case, engine=engine) for case in cases)
    if count is not None:
        cases = islice(cases, count)
    start = time.monotonic()
    for case in cases:
        if time_budget is not None and time.monotonic() - start >= time_budget:
            report.budget_exhausted = True
            break
        result = run_case(case, oracles=oracles)
        report.record(result)
        if result.ok:
            continue
        failure = result.failures[0]
        if progress is not None:
            progress(
                f"case {case.case_id} failed [{failure.fingerprint}]: "
                f"{failure.message}"
            )
        shrunk: FuzzCase | None = None
        if shrink:
            reduction: ShrinkResult = shrink_case(
                case, fingerprint=failure.fingerprint, oracles=oracles
            )
            shrunk = reduction.case
            failure = reduction.failure
        record = FailureRecord(
            case=case,
            failure=failure,
            fingerprint=failure.fingerprint,
            shrunk=shrunk,
        )
        if failures_dir is not None:
            path = write_failure(record, Path(failures_dir), seed)
            record = FailureRecord(
                case=record.case,
                failure=record.failure,
                fingerprint=record.fingerprint,
                shrunk=record.shrunk,
                path=path,
            )
            if progress is not None:
                progress(f"repro written to {path}")
        report.failures.append(record)
    report.elapsed_seconds = time.monotonic() - start
    return report


__all__ = [
    "DEFAULT_FAILURES_DIR",
    "FailureRecord",
    "FuzzReport",
    "generate_cases",
    "load_failure",
    "replay_failure",
    "run_fuzz",
    "write_failure",
]
