"""Fuzz-case generation: graph families × build configurations.

A :class:`FuzzCase` is everything needed to reproduce one differential
check: a graph (either regenerated from ``(family, num_vertices,
seed)`` or pinned as an explicit edge list after shrinking), the
cluster/batch/fault configuration every builder runs under, and an
optional edge-update workload for the dynamic oracle.  Cases serialize
to plain JSON so a failing case becomes a one-file repro.

Generation is fully deterministic: ``generate_cases(seed=s, ...)``
returns the same case list on every machine and run.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, replace
from itertools import count as count_from_zero
from itertools import islice
from pathlib import Path
from typing import Iterator, Sequence

from repro.faults import FaultPlan, NodeCrash, Straggler
from repro.graph import generators
from repro.graph.digraph import DiGraph
from repro.graph.partition import PARTITIONER_STRATEGIES, Partitioner
from repro.workloads.updates import UpdateOp, mixed_update_stream

#: The sampled graph families; each stresses a different index regime.
FAMILIES = ("dag", "cyclic", "scc-heavy", "power-law", "lattice")


def family_graph(family: str, num_vertices: int, seed: int) -> DiGraph:
    """Deterministically generate one graph of ``family``.

    - ``dag`` — layered citation DAG (deep, acyclic),
    - ``cyclic`` — uniform random digraph (small sparse cycles),
    - ``scc-heavy`` — cycle components bridged into a DAG of SCCs,
    - ``power-law`` — directed preferential attachment (hub-dominated),
    - ``lattice`` — directed grid (hub-free, worst case for pruning;
      odd seeds wrap into a torus, i.e. one giant SCC).
    """
    n = max(num_vertices, 4)
    if family == "dag":
        return generators.citation_graph(n, avg_refs=2.5, seed=seed)
    if family == "cyclic":
        m = min(2 * n, n * (n - 1))
        return generators.random_digraph(n, m, seed=seed)
    if family == "scc-heavy":
        return generators.scc_heavy_graph(n, seed=seed)
    if family == "power-law":
        return generators.social_graph(n, avg_out_degree=3.0, seed=seed)
    if family == "lattice":
        rows = max(2, int(n**0.5))
        cols = max(2, -(-n // rows))
        return generators.lattice_graph(
            rows, cols, wrap=bool(seed % 2), diagonal_prob=0.25, seed=seed
        )
    raise ValueError(
        f"unknown graph family {family!r}; choose from {', '.join(FAMILIES)}"
    )


@dataclass(frozen=True)
class FuzzCase:
    """One differential-testing case (immutable; shrinking copies).

    ``edges`` is ``None`` for generated cases (the graph comes from
    ``family_graph(family, num_vertices, seed)``) and an explicit edge
    list once a case has been pinned for shrinking or replay.
    """

    case_id: int
    family: str
    seed: int
    num_vertices: int
    edges: tuple[tuple[int, int], ...] | None = None
    num_nodes: int = 4
    partitioner: str = "hash"
    batch_size: float = 2
    growth_factor: float = 2.0
    checkpoint_interval: int | None = None
    faults: str | None = None
    updates: tuple[UpdateOp, ...] = ()
    query_sample: int = 150
    #: Execution engine to cross-check: ``"sim"`` runs everything on the
    #: simulator; ``"mp"`` additionally builds each label method on the
    #: multiprocessing engine and diffs the indexes (the
    #: ``engine-mismatch`` oracle).
    engine: str = "sim"

    # ------------------------------------------------------------------
    def graph(self) -> DiGraph:
        """The case's graph (regenerated or from pinned edges)."""
        if self.edges is not None:
            return DiGraph(self.num_vertices, list(self.edges))
        return family_graph(self.family, self.num_vertices, self.seed)

    def concretize(self) -> "FuzzCase":
        """Pin the generated graph as an explicit edge list.

        The shrinker and the repro files both work on concrete cases so
        a reduced case no longer depends on generator internals.
        """
        if self.edges is not None:
            return self
        graph = self.graph()
        return replace(
            self,
            num_vertices=graph.num_vertices,
            edges=tuple(graph.edges()),
        )

    def fault_plan(self) -> FaultPlan | None:
        """The parsed fault plan, or ``None``."""
        return FaultPlan.parse(self.faults) if self.faults else None

    def make_partitioner(self, num_vertices: int) -> Partitioner:
        """Instantiate the configured partitioner for this case."""
        try:
            factory = PARTITIONER_STRATEGIES[self.partitioner]
        except KeyError:
            known = ", ".join(sorted(PARTITIONER_STRATEGIES))
            raise ValueError(
                f"unknown partitioner {self.partitioner!r}; one of: {known}"
            )
        return factory(self.num_nodes, num_vertices)

    def describe(self) -> str:
        """One-line summary for logs and the campaign table."""
        graph = self.graph()
        bits = [
            f"case {self.case_id}",
            f"{self.family}",
            f"n={graph.num_vertices} m={graph.num_edges}",
            f"nodes={self.num_nodes}",
            f"part={self.partitioner}",
            f"b={self.batch_size:g} k={self.growth_factor:g}",
        ]
        if self.checkpoint_interval is not None:
            bits.append(f"ckpt={self.checkpoint_interval}")
        if self.faults:
            bits.append(f"faults[{self.faults}]")
        if self.updates:
            bits.append(f"updates={len(self.updates)}")
        if self.engine != "sim":
            bits.append(f"engine={self.engine}")
        return " ".join(bits)

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return {
            "case_id": self.case_id,
            "family": self.family,
            "seed": self.seed,
            "num_vertices": self.num_vertices,
            "edges": None if self.edges is None else [list(e) for e in self.edges],
            "num_nodes": self.num_nodes,
            "partitioner": self.partitioner,
            "batch_size": self.batch_size,
            "growth_factor": self.growth_factor,
            "checkpoint_interval": self.checkpoint_interval,
            "faults": self.faults,
            "updates": [[op, u, v] for op, u, v in self.updates],
            "query_sample": self.query_sample,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzCase":
        """Rebuild a case from :meth:`to_dict` output."""
        edges = data.get("edges")
        return cls(
            case_id=int(data["case_id"]),
            family=data["family"],
            seed=int(data["seed"]),
            num_vertices=int(data["num_vertices"]),
            edges=(
                None
                if edges is None
                else tuple((int(u), int(v)) for u, v in edges)
            ),
            num_nodes=int(data.get("num_nodes", 4)),
            partitioner=data.get("partitioner", "hash"),
            batch_size=float(data.get("batch_size", 2)),
            growth_factor=float(data.get("growth_factor", 2.0)),
            checkpoint_interval=data.get("checkpoint_interval"),
            faults=data.get("faults"),
            updates=tuple(
                (op, int(u), int(v)) for op, u, v in data.get("updates", ())
            ),
            query_sample=int(data.get("query_sample", 150)),
            engine=data.get("engine", "sim"),
        )

    def save(self, path: str | Path) -> None:
        """Write the case as a standalone JSON file."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "FuzzCase":
        """Read a case written by :meth:`save` (or a repro file's
        ``case`` field — see :func:`repro.fuzz.runner.load_failure`)."""
        data = json.loads(Path(path).read_text())
        if "case" in data:  # failure repro file wrapping the case
            data = data["case"]
        return cls.from_dict(data)


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
def _random_fault_spec(rng: random.Random, num_nodes: int) -> str:
    """A valid fault spec for a cluster of ``num_nodes`` (≥ 2)."""
    plan_crashes: list[NodeCrash] = []
    plan_stragglers: list[Straggler] = []
    if rng.random() < 0.7:
        plan_crashes.append(
            NodeCrash(rng.randrange(num_nodes), rng.randint(1, 4))
        )
    if rng.random() < 0.5:
        plan_stragglers.append(
            Straggler(rng.randrange(num_nodes), round(rng.uniform(1.5, 4.0), 1))
        )
    plan = FaultPlan(
        crashes=tuple(plan_crashes),
        stragglers=tuple(plan_stragglers),
        loss_rate=round(rng.choice([0.0, 0.01, 0.05]), 3),
        duplication_rate=round(rng.choice([0.0, 0.02]), 3),
        seed=rng.randrange(2**16),
    )
    return plan.to_spec()


def _case_iter(
    seed: int = 0,
    families: Sequence[str] | None = None,
    min_vertices: int = 4,
    max_vertices: int = 26,
) -> Iterator[FuzzCase]:
    """The infinite deterministic case stream behind :func:`generate_cases`.

    One RNG drives the whole stream, so a prefix of the stream is the
    same regardless of how many cases are ultimately consumed — a
    time-budgeted campaign and a counted one see identical cases.

    Sizes stay small on purpose: every case runs an all-methods build
    plus exact oracles (transitive closure is quadratic), and small
    graphs shrink to readable repros anyway.
    """
    chosen = tuple(families) if families else FAMILIES
    for family in chosen:
        if family not in FAMILIES:
            raise ValueError(
                f"unknown graph family {family!r}; choose from "
                f"{', '.join(FAMILIES)}"
            )
    if not 1 <= min_vertices <= max_vertices:
        raise ValueError("need 1 <= min_vertices <= max_vertices")
    rng = random.Random(seed)
    for case_id in count_from_zero():
        family = chosen[case_id % len(chosen)]
        n = rng.randint(min_vertices, max_vertices)
        graph_seed = rng.randrange(2**31)
        num_nodes = rng.choice([1, 2, 3, 4, 8])
        partitioner = rng.choice(sorted(PARTITIONER_STRATEGIES))
        batch_size = rng.choice([1, 2, 3])
        growth_factor = rng.choice([1.5, 2.0, 3.0])
        checkpoint_interval = rng.choice([None, 1, 2, 3])
        faults = None
        if num_nodes >= 2 and rng.random() < 0.5:
            faults = _random_fault_spec(rng, num_nodes) or None
        case = FuzzCase(
            case_id=case_id,
            family=family,
            seed=graph_seed,
            num_vertices=n,
            num_nodes=num_nodes,
            partitioner=partitioner,
            batch_size=batch_size,
            growth_factor=growth_factor,
            checkpoint_interval=checkpoint_interval,
            faults=faults,
        )
        if rng.random() < 0.6:
            graph = case.graph()
            if graph.num_vertices >= 2:
                # Mostly edge-only streams (the historical shape), with
                # a slice of mixed streams adding node ops and order
                # upgrades so the dynamic oracle covers all five kinds.
                ops = mixed_update_stream(
                    graph,
                    count=rng.randint(1, 8),
                    insert_ratio=rng.choice([0.3, 0.5, 0.7]),
                    node_ratio=rng.choice([0.0, 0.0, 0.25]),
                    promote_ratio=rng.choice([0.0, 0.2]),
                    seed=rng.randrange(2**31),
                )
                case = replace(case, updates=tuple(ops))
        yield case


def generate_cases(
    seed: int = 0,
    count: int = 100,
    families: Sequence[str] | None = None,
    min_vertices: int = 4,
    max_vertices: int = 26,
) -> list[FuzzCase]:
    """Deterministically sample ``count`` cases, round-robin over the
    families, crossing graphs with cluster/batch/fault/update configs.

    Same ``seed`` → same case list, always; a longer list is a strict
    extension of a shorter one.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return list(
        islice(
            _case_iter(
                seed,
                families=families,
                min_vertices=min_vertices,
                max_vertices=max_vertices,
            ),
            count,
        )
    )
