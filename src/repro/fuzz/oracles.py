"""The oracle matrix: every equivalence claim the library makes,
checked against one fuzz case.

Each oracle is a function ``(ctx) -> list[str]`` returning violation
messages (empty = pass).  The oracles encode, per the paper:

- ``methods-agree`` — TOL, DRL⁻, DRL, DRL_b and multicore DRL_b build
  the *identical* index under a shared order (Theorems 3, 5, 6);
- ``cover`` / ``soundness`` / ``canonical`` — Definition 3's cover
  constraint, label soundness, and Theorem 1's canonical-index
  characterisation via :mod:`repro.core.validate`;
- ``query-oracle`` — index answers equal online BFS and the exact
  transitive closure on sampled pairs;
- ``condensed`` — the SCC-condensed index answers identically;
- ``fault-equivalence`` — a fault-injected build yields the fault-free
  index (the recovery contract of :mod:`repro.faults`);
- ``dynamic-vs-rebuild`` — incremental updates maintain exactly the
  index a full rebuild produces (§V / TOL's dynamic contract);
- ``engine-mismatch`` — the multiprocessing engine builds the identical
  index to the simulator for every label method (the equivalence
  contract of :mod:`repro.pregel.mp`; ``engine="mp"`` cases only).

Oracle *crashes* (unexpected exceptions) are findings too: they are
reported as failures with a distinct fingerprint instead of aborting
the campaign.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.baselines.online import OnlineSearcher
from repro.baselines.transitive_closure import TransitiveClosure
from repro.core.build import METHOD_NAMES, build_index
from repro.core.condensed import build_condensed_index
from repro.core.dynamic import DynamicReachabilityIndex
from repro.core.labels import ReachabilityIndex
from repro.core.tol import tol_index
from repro.core.validate import check_canonical, check_cover, check_soundness
from repro.fuzz.cases import FuzzCase
from repro.graph.order import degree_order
from repro.pregel.cost_model import CostModel

#: Oracles never hit the simulated-time cut-off: a slow build is not a
#: correctness divergence.
_NO_LIMIT = CostModel(time_limit_seconds=None)

#: Above this vertex count, pairwise query oracles sample instead of
#: enumerating all n² pairs.
_FULL_PAIR_LIMIT = 18


@dataclass(frozen=True)
class OracleFailure:
    """One oracle's verdict on one case."""

    oracle: str
    message: str
    kind: str = "violation"  # or "exception"

    @property
    def fingerprint(self) -> str:
        """Stable identity of the failure *mode*, used by the shrinker
        to accept only candidates that fail the same way."""
        if self.kind == "exception":
            return f"{self.oracle}!{self.message.split(':', 1)[0]}"
        return self.oracle


@dataclass(frozen=True)
class CaseResult:
    """All oracle outcomes for one case."""

    case: FuzzCase
    oracles_run: tuple[str, ...]
    failures: tuple[OracleFailure, ...]

    @property
    def ok(self) -> bool:
        """True when every applicable oracle passed."""
        return not self.failures

    @property
    def fingerprints(self) -> frozenset[str]:
        """The set of failure-mode fingerprints."""
        return frozenset(f.fingerprint for f in self.failures)


class CaseContext:
    """Lazily-shared per-case artifacts (graph, order, oracle, builds).

    Several oracles need the same expensive objects; computing them
    once per case keeps the matrix affordable.
    """

    def __init__(self, case: FuzzCase):
        self.case = case
        self.graph = case.graph()
        self.order = degree_order(self.graph)
        self._closure: TransitiveClosure | None = None
        self._builds: dict[tuple[str, str], ReachabilityIndex] = {}

    @property
    def closure(self) -> TransitiveClosure:
        """The exact reachability oracle (computed once)."""
        if self._closure is None:
            self._closure = TransitiveClosure(self.graph)
        return self._closure

    def build(self, method: str, engine: str = "sim") -> ReachabilityIndex:
        """Build (and cache) the index with ``method`` under the case's
        configuration — shared order, cluster size, partitioner, and
        batch parameters, but no faults (clean builds).  ``engine="mp"``
        builds on the multiprocessing engine (two workers), used by the
        ``engine-mismatch`` differential oracle."""
        key = (method, engine)
        if key not in self._builds:
            kwargs: dict = {}
            if method in ("drl-", "drl", "drl-b"):
                kwargs["partitioner"] = self.case.make_partitioner(
                    self.graph.num_vertices
                )
            if method in ("drl-b", "drl-b-m"):
                kwargs["initial_batch_size"] = self.case.batch_size
                kwargs["growth_factor"] = self.case.growth_factor
            if engine != "sim":
                kwargs["engine"] = engine
                kwargs["workers"] = 2
            self._builds[key] = build_index(
                self.graph,
                method=method,
                order=self.order,
                num_nodes=self.case.num_nodes,
                cost_model=_NO_LIMIT,
                **kwargs,
            ).index
        return self._builds[key]

    def query_pairs(self, salt: int = 0) -> list[tuple[int, int]]:
        """All pairs on small graphs, a seeded sample on larger ones."""
        n = self.graph.num_vertices
        if n <= _FULL_PAIR_LIMIT:
            return [(s, t) for s in range(n) for t in range(n)]
        rng = random.Random((self.case.seed << 4) ^ salt)
        return [
            (rng.randrange(n), rng.randrange(n))
            for _ in range(self.case.query_sample)
        ]


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------
def _index_diff(built: ReachabilityIndex, reference: ReachabilityIndex) -> str:
    """First differing vertex between two indexes, for messages."""
    if built.num_vertices != reference.num_vertices:
        return (
            f"vertex counts differ: {built.num_vertices} "
            f"vs {reference.num_vertices}"
        )
    for v in range(reference.num_vertices):
        for side, getter in (
            ("L_in", lambda i, w: list(i.in_labels(w))),
            ("L_out", lambda i, w: list(i.out_labels(w))),
        ):
            got, want = getter(built, v), getter(reference, v)
            if got != want:
                return f"{side}({v}) = {got}, expected {want}"
    return "indexes equal"  # pragma: no cover - only called on mismatch


def oracle_methods_agree(ctx: CaseContext) -> list[str]:
    """Every construction method yields the identical index."""
    reference = ctx.build("tol")
    violations: list[str] = []
    for method in METHOD_NAMES:
        if method == "tol":
            continue
        built = ctx.build(method)
        if built != reference:
            violations.append(
                f"method {method!r} diverges from tol: "
                + _index_diff(built, reference)
            )
    return violations


def oracle_cover(ctx: CaseContext) -> list[str]:
    """Cover constraint (Definition 3) of the DRL_b index."""
    n = ctx.graph.num_vertices
    sample = None if n <= _FULL_PAIR_LIMIT else ctx.case.query_sample
    report = check_cover(
        ctx.build("drl-b"), ctx.graph, sample=sample, seed=ctx.case.seed
    )
    return list(report.violations)


def oracle_soundness(ctx: CaseContext) -> list[str]:
    """Every label entry encodes a true reachability relation."""
    return list(check_soundness(ctx.build("drl-b"), ctx.graph).violations)


def oracle_canonical(ctx: CaseContext) -> list[str]:
    """The index is exactly TOL's under the order (Theorem 1)."""
    return list(
        check_canonical(ctx.build("drl-b"), ctx.graph, ctx.order).violations
    )


def oracle_query_vs_online(ctx: CaseContext) -> list[str]:
    """Index answers equal online BFS and the transitive closure."""
    index = ctx.build("drl-b")
    searcher = OnlineSearcher(ctx.graph)
    violations: list[str] = []
    for s, t in ctx.query_pairs(salt=0x51):
        indexed = index.query(s, t)
        online = searcher.query(s, t)
        exact = ctx.closure.query(s, t)
        if online != exact:
            violations.append(
                f"online BFS({s}, {t}) = {online} but closure says {exact}"
            )
        if indexed != exact:
            violations.append(
                f"index.query({s}, {t}) = {indexed} but closure says {exact}"
            )
        if len(violations) >= 20:
            break
    return violations


def oracle_condensed(ctx: CaseContext) -> list[str]:
    """The SCC-condensed index answers identically to the direct one."""
    condensed, _ = build_condensed_index(
        ctx.graph, method="drl-b", cost_model=_NO_LIMIT
    )
    violations: list[str] = []
    for s, t in ctx.query_pairs(salt=0xC0):
        got = condensed.query(s, t)
        want = ctx.closure.query(s, t)
        if got != want:
            violations.append(
                f"condensed.query({s}, {t}) = {got}, expected {want}"
            )
            if len(violations) >= 20:
                break
    return violations


def oracle_fault_equivalence(ctx: CaseContext) -> list[str]:
    """A fault-injected DRL_b build equals the fault-free index."""
    plan = ctx.case.fault_plan()
    if plan is None:  # pragma: no cover - guarded by oracles_for
        return []
    clean = ctx.build("drl-b")
    faulty = build_index(
        ctx.graph,
        method="drl-b",
        order=ctx.order,
        num_nodes=ctx.case.num_nodes,
        cost_model=_NO_LIMIT,
        partitioner=ctx.case.make_partitioner(ctx.graph.num_vertices),
        initial_batch_size=ctx.case.batch_size,
        growth_factor=ctx.case.growth_factor,
        faults=plan,
        checkpoint_interval=ctx.case.checkpoint_interval,
    ).index
    if faulty != clean:
        return [
            f"faulty build ({plan.describe()}) diverges from clean: "
            + _index_diff(faulty, clean)
        ]
    return []


def oracle_dynamic_vs_rebuild(ctx: CaseContext) -> list[str]:
    """Incremental maintenance equals a from-scratch rebuild after
    every update in the case's workload (all five op kinds, plus
    drift-triggered automatic order upgrades on a slice of cases)."""
    if not ctx.case.updates:  # pragma: no cover - guarded by oracles_for
        return []
    # Every third case (by seed) also enables automatic drift-triggered
    # promotion, so organic order upgrades — not just the explicit
    # promote ops in the stream — are under the oracle too.
    drift = 2 if ctx.case.seed % 3 == 0 else None
    dynamic = DynamicReachabilityIndex(
        ctx.graph, order=ctx.order, drift_threshold=drift
    )
    violations: list[str] = []
    for step, (op, u, v) in enumerate(ctx.case.updates):
        if op == "insert":
            dynamic.insert_edge(u, v)
        elif op == "delete":
            dynamic.delete_edge(u, v)
        elif op == "add_node":
            dynamic.add_node()
        elif op == "delete_node":
            dynamic.delete_node(u)
        elif op == "promote":
            dynamic.promote(u, None if v < 0 else v)
        else:
            violations.append(f"update {step}: unknown op {op!r}")
            continue
        # Reread the order each step: node additions and promotions
        # (explicit or drift-triggered) replace it.
        rebuilt = tol_index(dynamic.current_graph(), dynamic.order)
        snapshot = dynamic.snapshot()
        if snapshot != rebuilt:
            violations.append(
                f"after update {step} ({op} {u}->{v}): "
                + _index_diff(snapshot, rebuilt)
            )
            break  # later steps inherit the corruption; one message suffices
    return violations


def oracle_engine_mismatch(ctx: CaseContext) -> list[str]:
    """The mp engine builds the identical index to the simulator.

    Differential engine check for every label method with an mp-capable
    program; ``tol`` (serial) and ``drl-b-m`` (same builder as ``drl-b``
    with a shared-memory cost model) add nothing here.
    """
    violations: list[str] = []
    for method in ("drl-", "drl", "drl-b"):
        reference = ctx.build(method)
        built = ctx.build(method, engine="mp")
        if built != reference:
            violations.append(
                f"method {method!r} on the mp engine diverges from sim: "
                + _index_diff(built, reference)
            )
    return violations


#: Name → oracle function; the campaign and the shrinker share this.
ORACLES: dict[str, Callable[[CaseContext], list[str]]] = {
    "methods-agree": oracle_methods_agree,
    "cover": oracle_cover,
    "soundness": oracle_soundness,
    "canonical": oracle_canonical,
    "query-oracle": oracle_query_vs_online,
    "condensed": oracle_condensed,
    "fault-equivalence": oracle_fault_equivalence,
    "dynamic-vs-rebuild": oracle_dynamic_vs_rebuild,
    "engine-mismatch": oracle_engine_mismatch,
}


def oracles_for(case: FuzzCase) -> tuple[str, ...]:
    """The oracle names applicable to ``case``."""
    names = [
        "methods-agree",
        "cover",
        "soundness",
        "canonical",
        "query-oracle",
        "condensed",
    ]
    if case.faults:
        names.append("fault-equivalence")
    if case.updates:
        names.append("dynamic-vs-rebuild")
    if case.engine == "mp":
        names.append("engine-mismatch")
    return tuple(names)


def run_case(
    case: FuzzCase,
    oracles: dict[str, Callable[[CaseContext], list[str]]] | None = None,
) -> CaseResult:
    """Run every applicable oracle against ``case``.

    ``oracles`` overrides the registry (used by tests to inject broken
    stubs).  Exceptions inside an oracle — including a case made
    invalid by shrinking — become ``kind="exception"`` failures.
    """
    registry = ORACLES if oracles is None else oracles
    names = tuple(n for n in oracles_for(case) if n in registry)
    failures: list[OracleFailure] = []
    try:
        ctx = CaseContext(case)
    except Exception as exc:  # noqa: BLE001 - a broken case is a finding
        return CaseResult(
            case=case,
            oracles_run=("setup",),
            failures=(
                OracleFailure(
                    "setup", f"{type(exc).__name__}: {exc}", kind="exception"
                ),
            ),
        )
    for name in names:
        try:
            for message in registry[name](ctx):
                failures.append(OracleFailure(name, message))
        except Exception as exc:  # noqa: BLE001 - crashes are findings
            failures.append(
                OracleFailure(
                    name, f"{type(exc).__name__}: {exc}", kind="exception"
                )
            )
    return CaseResult(case=case, oracles_run=names, failures=tuple(failures))
