"""Greedy delta-debugging of failing fuzz cases.

Given a case that fails some oracle, the shrinker searches for a
smaller case that fails *the same way* (same failure fingerprint):
it drops vertex chunks, then edges, then update operations (a ddmin
sweep over each list), then simplifies the configuration (drop the
fault plan, shrink the cluster, default the batch parameters), and
repeats until a whole round makes no progress or the evaluation
budget runs out.  The result is a pinned, explicit-edge-list
:class:`~repro.fuzz.cases.FuzzCase` small enough to read — typically
a handful of vertices — that replays the failure with one command.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.fuzz.cases import FuzzCase
from repro.fuzz.oracles import CaseResult, OracleFailure, run_case


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of a shrink run."""

    case: FuzzCase
    failure: OracleFailure
    fingerprint: str
    rounds: int
    evaluations: int


def _drop_vertices(case: FuzzCase, keep: Sequence[int]) -> FuzzCase | None:
    """The induced sub-case on ``keep`` (ids remapped to 0..k-1)."""
    if not keep:
        return None
    remap = {old: new for new, old in enumerate(sorted(keep))}
    assert case.edges is not None
    edges = tuple(
        (remap[u], remap[v])
        for u, v in case.edges
        if u in remap and v in remap
    )
    updates = tuple(
        (op, remap[u], remap[v])
        for op, u, v in case.updates
        if u in remap and v in remap
    )
    return replace(
        case, num_vertices=len(remap), edges=edges, updates=updates
    )


def _ddmin(
    items: list,
    rebuild: Callable[[list], FuzzCase | None],
    check: Callable[[FuzzCase | None], CaseResult | None],
    min_items: int = 0,
) -> list:
    """Greedy ddmin: remove ever-finer chunks while the failure holds."""
    granularity = 2
    while len(items) > min_items and granularity <= max(len(items), 2):
        chunk = max(1, len(items) // granularity)
        reduced = False
        start = 0
        while start < len(items):
            candidate_items = items[:start] + items[start + chunk:]
            if len(candidate_items) < min_items:
                start += chunk
                continue
            if check(rebuild(candidate_items)) is not None:
                items = candidate_items
                reduced = True
                # Do not advance: the next chunk slid into this position.
            else:
                start += chunk
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items


#: Config simplifications, tried in order each round.  Each returns a
#: simplified copy or ``None`` when already minimal.
_CONFIG_STEPS: tuple[Callable[[FuzzCase], FuzzCase | None], ...] = (
    lambda c: replace(c, faults=None) if c.faults else None,
    lambda c: replace(c, updates=()) if c.updates else None,
    lambda c: (
        replace(c, checkpoint_interval=None)
        if c.checkpoint_interval is not None
        else None
    ),
    lambda c: replace(c, num_nodes=1) if c.num_nodes > 1 else None,
    lambda c: replace(c, num_nodes=2) if c.num_nodes > 2 else None,
    lambda c: (
        replace(c, partitioner="hash") if c.partitioner != "hash" else None
    ),
    lambda c: (
        replace(c, batch_size=2, growth_factor=2.0)
        if (c.batch_size, c.growth_factor) != (2, 2.0)
        else None
    ),
    # Engine-independent failures simplify back to the simulator; an
    # actual engine-mismatch failure keeps engine="mp" because its
    # oracle only runs on mp-stamped cases.
    lambda c: replace(c, engine="sim") if c.engine != "sim" else None,
)


def shrink_case(
    case: FuzzCase,
    fingerprint: str | None = None,
    oracles: dict | None = None,
    max_evaluations: int = 400,
) -> ShrinkResult:
    """Minimise ``case`` while it keeps failing with ``fingerprint``.

    ``fingerprint`` defaults to the first failure of the initial run;
    raises ``ValueError`` if the case does not fail at all.  ``oracles``
    overrides the registry (tests inject broken stubs).  The evaluation
    budget bounds total oracle runs, so shrinking a pathological case
    degrades to a partial reduction instead of hanging the campaign.
    """
    concrete = case.concretize()
    initial = run_case(concrete, oracles=oracles)
    if initial.ok:
        raise ValueError(f"case {case.case_id} does not fail; nothing to shrink")
    if fingerprint is None:
        fingerprint = initial.failures[0].fingerprint
    elif fingerprint not in initial.fingerprints:
        raise ValueError(
            f"case {case.case_id} does not fail with fingerprint "
            f"{fingerprint!r} (observed: {sorted(initial.fingerprints)})"
        )

    evaluations = 0
    best: dict[str, CaseResult] = {"result": initial}

    def check(candidate: FuzzCase | None) -> CaseResult | None:
        nonlocal evaluations
        if candidate is None or evaluations >= max_evaluations:
            return None
        evaluations += 1
        result = run_case(candidate, oracles=oracles)
        if fingerprint in result.fingerprints:
            best["result"] = result
            return result
        return None

    current = concrete
    rounds = 0
    while evaluations < max_evaluations:
        rounds += 1
        before = current

        # 1. Vertices (ddmin over the id list; edges/updates remapped).
        vertices = _ddmin(
            list(range(current.num_vertices)),
            lambda keep: _drop_vertices(current, keep),
            check,
            min_items=1,
        )
        if len(vertices) < current.num_vertices:
            current = _drop_vertices(current, vertices)

        # 2. Edges.
        assert current.edges is not None
        fixed = current
        edges = _ddmin(
            list(fixed.edges),
            lambda kept: replace(fixed, edges=tuple(kept)),
            check,
        )
        if len(edges) < len(current.edges):
            current = replace(current, edges=tuple(edges))

        # 3. Update operations.
        if current.updates:
            fixed = current
            updates = _ddmin(
                list(fixed.updates),
                lambda kept: replace(fixed, updates=tuple(kept)),
                check,
            )
            if len(updates) < len(current.updates):
                current = replace(current, updates=tuple(updates))

        # 4. Configuration.
        for step in _CONFIG_STEPS:
            candidate = step(current)
            if candidate is not None and check(candidate) is not None:
                current = candidate

        if current == before:
            break

    final = best["result"]
    failure = next(f for f in final.failures if f.fingerprint == fingerprint)
    return ShrinkResult(
        case=final.case,
        failure=failure,
        fingerprint=fingerprint,
        rounds=rounds,
        evaluations=evaluations,
    )
