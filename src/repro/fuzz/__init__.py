"""Differential fuzzing harness for the reachability index family.

Five builders must agree bit-for-bit (TOL, DRL⁻, DRL, DRL_b, multicore
DRL_b), the condensed and dynamic paths must answer identically, and a
fault-injected build promises the fault-free index.  Hand-written unit
tests under-cover equivalence claims of that breadth; this package
exercises them continuously:

- :mod:`repro.fuzz.cases` — seeded case generation over graph families
  crossed with cluster/batch/fault/update configurations, with JSON
  round-tripping for repro files;
- :mod:`repro.fuzz.oracles` — the oracle matrix run against each case;
- :mod:`repro.fuzz.shrink` — greedy delta-debugging of failing cases;
- :mod:`repro.fuzz.runner` — the campaign driver behind ``repro fuzz``.
"""

from repro.fuzz.cases import FAMILIES, FuzzCase, family_graph, generate_cases
from repro.fuzz.oracles import (
    ORACLES,
    CaseResult,
    OracleFailure,
    oracles_for,
    run_case,
)
from repro.fuzz.runner import FuzzReport, load_failure, replay_failure, run_fuzz
from repro.fuzz.shrink import shrink_case

__all__ = [
    "FAMILIES",
    "FuzzCase",
    "family_graph",
    "generate_cases",
    "ORACLES",
    "CaseResult",
    "OracleFailure",
    "oracles_for",
    "run_case",
    "FuzzReport",
    "load_failure",
    "replay_failure",
    "run_fuzz",
    "shrink_case",
]
