"""Structured span tracing.

A :class:`Span` is a named, timestamped interval of work carrying both
**wall seconds** (real Python time) and **simulated seconds** (the cost
model's clock — see :mod:`repro.pregel.cost_model`).  Spans nest: the
tracer keeps a stack, so a span opened while another is active records
it as its parent, and sinks can reconstruct the full tree.

A :class:`TraceEvent` is a point-in-time record attached to the current
span (the engine emits one per super-step, carrying the
:class:`~repro.pregel.metrics.SuperstepTrace` fields).

Tracing is **off by default**: the module-level tracer is a
:class:`NullTracer` whose ``span()`` returns a shared no-op context
manager, so instrumented code pays one attribute check when telemetry
is disabled.  Install a real :class:`Tracer` with
:func:`~repro.telemetry.session` (or :func:`activate` directly).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Span:
    """One named interval of work, possibly nested under a parent."""

    name: str
    span_id: int
    parent_id: int | None
    start_wall: float
    attrs: dict = field(default_factory=dict)
    end_wall: float | None = None
    simulated_seconds: float = 0.0
    status: str = "ok"

    @property
    def wall_seconds(self) -> float:
        """Elapsed wall time (0.0 while the span is still open)."""
        if self.end_wall is None:
            return 0.0
        return self.end_wall - self.start_wall

    def set(self, **attrs) -> "Span":
        """Attach or overwrite attributes; returns ``self`` for chaining."""
        self.attrs.update(attrs)
        return self

    def add_simulated(self, seconds: float) -> None:
        """Accumulate simulated seconds onto this span."""
        self.simulated_seconds += seconds

    def to_dict(self) -> dict:
        """JSONL representation (see ``docs/observability.md``)."""
        return {
            "kind": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "start": self.start_wall,
            "wall_seconds": self.wall_seconds,
            "simulated_seconds": self.simulated_seconds,
            "status": self.status,
            "attrs": dict(self.attrs),
        }


@dataclass(frozen=True)
class TraceEvent:
    """A point-in-time record attached to the span active when emitted."""

    name: str
    span_id: int | None
    wall: float
    attrs: dict

    def to_dict(self) -> dict:
        """JSONL representation (see ``docs/observability.md``)."""
        return {
            "kind": "event",
            "name": self.name,
            "span": self.span_id,
            "wall": self.wall,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Produces spans and events and fans them out to sinks.

    Parameters
    ----------
    sinks:
        Objects implementing the :class:`~repro.telemetry.sinks.SpanSink`
        protocol (``on_span`` / ``on_event``).  A tracer with no sinks
        still records span nesting (useful for tests via
        :meth:`finished_spans` of an attached in-memory sink).
    """

    enabled = True

    def __init__(self, sinks=()):
        self.sinks = list(sinks)
        self._stack: list[Span] = []
        self._next_id = 1

    @property
    def current_span(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a span; it closes (and reaches the sinks) on exit.

        An exception propagating through the block marks the span's
        ``status`` with the exception class name before re-raising, so
        aborted work (e.g. a simulated ``TimeLimitExceeded``) is still
        visible in the trace.
        """
        parent = self._stack[-1].span_id if self._stack else None
        opened = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent,
            start_wall=time.perf_counter(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(opened)
        try:
            yield opened
        except BaseException as exc:
            opened.status = type(exc).__name__
            raise
        finally:
            opened.end_wall = time.perf_counter()
            self._stack.pop()
            for sink in self.sinks:
                sink.on_span(opened)

    def event(self, name: str, **attrs) -> TraceEvent:
        """Emit a point-in-time event under the current span."""
        current = self._stack[-1] if self._stack else None
        emitted = TraceEvent(
            name=name,
            span_id=current.span_id if current is not None else None,
            wall=time.perf_counter(),
            attrs=attrs,
        )
        for sink in self.sinks:
            sink.on_event(emitted)
        return emitted


class _NullSpan:
    """Shared no-op stand-in yielded when tracing is disabled."""

    __slots__ = ()
    simulated_seconds = 0.0

    def set(self, **attrs) -> "_NullSpan":
        return self

    def add_simulated(self, seconds: float) -> None:
        pass


class _NullSpanContext:
    """Reusable context manager yielding the shared null span."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """The disabled tracer: every operation is a cheap no-op."""

    enabled = False
    sinks: tuple = ()
    current_span = None

    def span(self, name: str, **attrs) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def event(self, name: str, **attrs) -> None:
        return None


NULL_TRACER = NullTracer()

_active_tracer: Tracer | NullTracer = NULL_TRACER


def current_tracer() -> Tracer | NullTracer:
    """The installed tracer (the shared :class:`NullTracer` when off)."""
    return _active_tracer


def set_tracer(tracer: Tracer | NullTracer | None) -> None:
    """Install ``tracer`` globally; ``None`` restores the null tracer."""
    global _active_tracer
    _active_tracer = tracer if tracer is not None else NULL_TRACER


@contextmanager
def activate(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for the duration of the block."""
    previous = _active_tracer
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


@contextmanager
def trace_span(name: str, **attrs) -> Iterator[Span | _NullSpan]:
    """Open a span on whatever tracer is installed.

    The instrumentation entry point: modules call
    ``with trace_span("drl.flood", dataset=...) as span: ...`` and the
    call is a no-op when telemetry is disabled.
    """
    with _active_tracer.span(name, **attrs) as opened:
        yield opened


def trace_event(name: str, **attrs) -> None:
    """Emit an event on whatever tracer is installed."""
    _active_tracer.event(name, **attrs)
