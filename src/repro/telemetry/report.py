"""Summaries of exported JSONL traces (the ``repro trace`` command).

A trace file is a sequence of JSON records (see
``docs/observability.md``): finished spans, point-in-time events, and
the session's final metric snapshots.  :func:`summarize_trace` turns
one into the analyst's view of a run:

- **top spans** by total simulated seconds, aggregated by name;
- **bench cell tables** — one per experiment tag, reconstructing the
  comp/comm split of Fig. 5 (or the timing grid of any other
  experiment) from the spans alone;
- a **super-step table** for the run with the most super-steps;
- **histogram percentiles** and counter/gauge values.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path

from repro.bench.results import Cell, ExperimentTable
from repro.telemetry.metrics import percentile_from_record


class TraceReadError(ValueError):
    """The trace file is missing or not valid JSONL."""


class TraceRecords(list):
    """The records of a trace file plus a log of skipped lines.

    A plain ``list`` of record dicts, so every existing consumer works
    unchanged; ``skipped`` holds one ``"path:lineno: reason"`` string
    per malformed line that was tolerated (truncated tails, partial
    writes from a killed run, stray text).
    """

    def __init__(self, records=(), skipped: list[str] | None = None):
        super().__init__(records)
        self.skipped: list[str] = skipped if skipped is not None else []


def read_trace(path: str | Path) -> TraceRecords:
    """Load the records of a JSONL trace file, tolerating bad lines.

    Malformed lines (invalid JSON, or JSON that is not a trace record)
    are skipped and logged in the returned :class:`TraceRecords`'
    ``skipped`` list — a truncated export from a killed run still
    summarizes.  Raises :class:`TraceReadError` only when the file
    contains no valid record at all, which means it is not a trace
    file (or an empty one) rather than a damaged one.
    """
    records = TraceRecords()
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                records.skipped.append(f"{path}:{lineno}: not JSON: {exc}")
                continue
            if not isinstance(record, dict) or "kind" not in record:
                records.skipped.append(f"{path}:{lineno}: not a trace record")
                continue
            records.append(record)
    if not records and records.skipped:
        raise TraceReadError(
            f"{path}: no valid trace records "
            f"({len(records.skipped)} malformed line(s); first: "
            f"{records.skipped[0]})"
        )
    return records


# ----------------------------------------------------------------------
# Section builders
# ----------------------------------------------------------------------
def top_spans_section(records: list[dict], top: int = 15) -> str:
    """Span names ranked by total simulated seconds."""
    totals: dict[str, list[float]] = defaultdict(lambda: [0, 0.0, 0.0])
    for record in records:
        if record["kind"] != "span":
            continue
        entry = totals[record["name"]]
        entry[0] += 1
        entry[1] += record.get("simulated_seconds", 0.0)
        entry[2] += record.get("wall_seconds", 0.0)
    ranked = sorted(totals.items(), key=lambda kv: kv[1][1], reverse=True)
    width = max([len(name) for name, _ in ranked[:top]] + [len("Name")])
    title = "Top spans by simulated time"
    lines = [title, "=" * len(title)]
    lines.append(
        f"{'Name'.ljust(width)} | {'count':>6} | {'simulated s':>12} | "
        f"{'wall s':>10}"
    )
    lines.append("-" * len(lines[-1]))
    for name, (count, simulated, wall) in ranked[:top]:
        lines.append(
            f"{name.ljust(width)} | {count:>6d} | {simulated:>12.6f} | "
            f"{wall:>10.6f}"
        )
    return "\n".join(lines)


def bench_cell_tables(records: list[dict]) -> list[ExperimentTable]:
    """Rebuild per-experiment comp/comm grids from ``bench.cell`` spans.

    Uses the same split as the harness: *comp* is computation plus
    barrier seconds, *comm* is communication seconds, so the rendered
    numbers match the experiment's own table.
    """
    by_experiment: dict[str, list[dict]] = defaultdict(list)
    for record in records:
        if record["kind"] == "span" and record["name"] == "bench.cell":
            experiment = record["attrs"].get("experiment", "?")
            by_experiment[experiment].append(record)
    tables = []
    for experiment in sorted(by_experiment):
        cells = by_experiment[experiment]
        methods: list[str] = []
        for record in cells:
            method = record["attrs"].get("method", "?")
            if method not in methods:
                methods.append(method)
        columns = []
        for method in methods:
            columns += [f"{method} comp", f"{method} comm"]
        table = ExperimentTable(
            f"Experiment {experiment} — comp/comm per cell (simulated s)",
            columns,
        )
        for record in cells:
            attrs = record["attrs"]
            dataset = attrs.get("dataset", "?")
            method = attrs.get("method", "?")
            if record.get("status", "ok") != "ok":
                table.set(dataset, f"{method} comp", Cell.timeout())
                table.set(dataset, f"{method} comm", Cell.timeout())
                continue
            comp = attrs.get("computation_seconds", 0.0) + attrs.get(
                "barrier_seconds", 0.0
            )
            table.set(dataset, f"{method} comp", comp)
            table.set(
                dataset, f"{method} comm", attrs.get("communication_seconds", 0.0)
            )
        tables.append(table)
    return tables


def superstep_table(records: list[dict], limit: int = 20) -> ExperimentTable | None:
    """Super-step rows of the longest run (by super-step events)."""
    by_span: dict[int | None, list[dict]] = defaultdict(list)
    for record in records:
        if record["kind"] == "event" and record["name"] == "pregel.superstep":
            by_span[record.get("span")].append(record)
    if not by_span:
        return None
    events = max(by_span.values(), key=len)
    columns = ["active", "units", "max node units", "remote msgs",
               "remote bytes", "broadcast bytes"]
    shown = min(len(events), limit)
    table = ExperimentTable(
        f"Super-steps of the longest run ({shown} of {len(events)} shown)",
        columns,
        precision=0,
    )
    for event in events[:limit]:
        attrs = event["attrs"]
        row = str(attrs.get("superstep", "?"))
        table.set(row, "active", float(attrs.get("active_vertices", 0)))
        table.set(row, "units", float(attrs.get("compute_units", 0)))
        table.set(row, "max node units", float(attrs.get("max_node_units", 0)))
        table.set(row, "remote msgs", float(attrs.get("remote_messages", 0)))
        table.set(row, "remote bytes", float(attrs.get("remote_bytes", 0)))
        table.set(row, "broadcast bytes", float(attrs.get("broadcast_bytes", 0)))
    return table


def request_records(records: list[dict]) -> list[dict]:
    """The ``serve.request`` events of a trace (see
    :mod:`repro.observe.tracing`), in arrival order within the file."""
    return [
        record
        for record in records
        if record["kind"] == "event"
        and record["name"] == "serve.request"
        and "trace_id" in record.get("attrs", {})
    ]


def format_request_trace(attrs: dict) -> str:
    """One request trace with its per-stage breakdown, as one line."""
    stages = []
    for stage in attrs.get("stages", ()):
        extras = [
            f"{key}={value}"
            for key, value in stage.items()
            if key not in ("stage", "seconds") and value is not None
        ]
        text = f"{stage.get('stage', '?')} {stage.get('seconds', 0.0):.2e}s"
        if extras:
            text += " (" + " ".join(extras) + ")"
        stages.append(text)
    head = (
        f"{attrs.get('trace_id', '?')}  "
        f"q({attrs.get('source', '?')},{attrs.get('target', '?')})  "
        f"{attrs.get('outcome', '?')}"
    )
    reason = attrs.get("reason")
    if reason:
        head += f"[{reason}]"
    head += f"  latency {attrs.get('latency_seconds', 0.0):.2e}s"
    if stages:
        head += "  |  " + " -> ".join(stages)
    return head


def requests_overview_section(records: list[dict]) -> str | None:
    """Outcome counts over the trace's ``serve.request`` events."""
    requests = request_records(records)
    if not requests:
        return None
    outcomes: dict[str, int] = defaultdict(int)
    reasons: dict[str, int] = defaultdict(int)
    for record in requests:
        attrs = record["attrs"]
        outcomes[attrs.get("outcome", "?")] += 1
        reason = attrs.get("reason")
        if reason:
            reasons[reason] += 1
    title = "Request traces"
    lines = [title, "=" * len(title)]
    lines.append(
        f"{len(requests)} traced requests: "
        + ", ".join(f"{count} {name}" for name, count in sorted(outcomes.items()))
    )
    if reasons:
        lines.append(
            "drop reasons: "
            + ", ".join(f"{count} {name}" for name, count in sorted(reasons.items()))
        )
    lines.append("(drill down with `repro top`, `repro trace --slowest N`, "
                 "or `repro trace --trace-id ID`)")
    return "\n".join(lines)


def slowest_requests_section(records: list[dict], n: int) -> str | None:
    """The ``n`` worst served request traces, per-stage breakdown."""
    requests = [
        record["attrs"]
        for record in request_records(records)
        if record["attrs"].get("outcome") == "served"
    ]
    if not requests:
        return None
    requests.sort(
        key=lambda attrs: (
            -attrs.get("latency_seconds", 0.0), attrs.get("trace_id", "")
        )
    )
    shown = requests[: max(n, 0)]
    title = f"Slowest {len(shown)} request(s)"
    lines = [title, "=" * len(title)]
    lines.extend(format_request_trace(attrs) for attrs in shown)
    return "\n".join(lines)


def find_request_traces(records: list[dict], trace_id: str) -> list[dict]:
    """The ``serve.request`` attrs matching one trace ID exactly."""
    return [
        record["attrs"]
        for record in request_records(records)
        if record["attrs"].get("trace_id") == trace_id
    ]


def metrics_lines(records: list[dict]) -> list[str]:
    """Human-readable lines for every exported metric record."""
    lines = []
    for record in records:
        if record["kind"] != "metric":
            continue
        name = record["name"]
        if record["metric"] == "histogram":
            count = record.get("count", 0)
            if not count:
                lines.append(f"{name}: histogram, no observations")
                continue
            mean = record.get("sum", 0.0) / count
            lines.append(
                f"{name}: count={count} mean={mean:.3e} "
                f"p50={percentile_from_record(record, 0.50):.3e} "
                f"p95={percentile_from_record(record, 0.95):.3e} "
                f"p99={percentile_from_record(record, 0.99):.3e} "
                f"max={record.get('max') or 0.0:.3e}"
            )
        else:
            lines.append(f"{name}: {record['value']}")
    return lines


def summarize_trace(
    records: list[dict], top: int = 15, superstep_limit: int = 20
) -> str:
    """The full text summary printed by ``repro trace``."""
    spans = sum(1 for r in records if r["kind"] == "span")
    events = sum(1 for r in records if r["kind"] == "event")
    metrics = sum(1 for r in records if r["kind"] == "metric")
    sections = [
        f"{len(records)} records: {spans} spans, {events} events, "
        f"{metrics} metrics"
    ]
    if spans:
        sections.append(top_spans_section(records, top=top))
    overview = requests_overview_section(records)
    if overview is not None:
        sections.append(overview)
    sections.extend(table.render() for table in bench_cell_tables(records))
    steps = superstep_table(records, limit=superstep_limit)
    if steps is not None:
        sections.append(steps.render())
    lines = metrics_lines(records)
    if lines:
        sections.append("Metrics\n=======\n" + "\n".join(lines))
    return "\n\n".join(sections)
