"""Metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments.
Unlike spans (which describe *one* interval), metrics aggregate across
a whole process: per-query latency lands in a histogram, per-super-step
active-vertex counts in another, label-entry growth in a gauge.

Histograms use **fixed buckets** (upper bounds, Prometheus-style), so
recording is O(log buckets) and export is bounded regardless of how
many observations arrive.  Percentiles are estimated from the bucket
boundaries — exact enough for the order-of-magnitude latency questions
the paper's Exps ask, and documented as estimates in
``docs/observability.md``.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import Iterator, Sequence


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` upper bounds growing geometrically from ``start``."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    bounds = []
    bound = start
    for _ in range(count):
        bounds.append(bound)
        bound *= factor
    return tuple(bounds)


#: Default buckets for simulated per-query latencies: the sorted-merge
#: of a 2-hop index costs ~1e-7 s, a pruned BFS fallback ~1e-3 s.
LATENCY_BUCKETS = exponential_buckets(1e-8, 10 ** 0.5, 16)

#: Default buckets for per-super-step active-vertex counts.
ACTIVE_VERTEX_BUCKETS = exponential_buckets(1, 4, 16)


def bucket_percentile(
    buckets: Sequence[float],
    counts: Sequence[int],
    count: int,
    maximum: float | None,
    fraction: float,
) -> float:
    """Estimate a percentile from fixed-bucket data.

    The single implementation behind :meth:`Histogram.percentile` (live
    instruments) and :func:`percentile_from_record` (exported JSONL
    records): returns the upper bound of the bucket holding the target
    rank, clamped to the observed maximum (the overflow bucket, which
    has no upper bound, reports the maximum itself).
    """
    if not 0 <= fraction <= 1:
        raise ValueError("fraction must be in [0, 1]")
    if not count:
        return 0.0
    rank = max(1, round(fraction * count))
    cumulative = 0
    for i, bucket_count in enumerate(counts):
        cumulative += bucket_count
        if cumulative >= rank:
            if i < len(buckets):
                bound = buckets[i]
                return min(bound, maximum) if maximum is not None else bound
            break
    return maximum if maximum is not None else 0.0


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def to_record(self) -> dict:
        return {"kind": "metric", "metric": "counter", "name": self.name,
                "value": self.value}


class Gauge:
    """A value that can move both ways (e.g. label entries so far).

    Values keep the type they were set with: an int-valued gauge
    exports as an int, so ``to_record`` round-trips through JSONL
    without float-coercion diffs (``120`` vs ``120.0``).
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def to_record(self) -> dict:
        return {"kind": "metric", "metric": "gauge", "name": self.name,
                "value": self.value}


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max sidecars.

    ``buckets`` are inclusive upper bounds; observations above the last
    bound land in an implicit overflow bucket.

    Observations may carry an **exemplar** — an opaque label, typically
    a trace ID — and each bucket keeps a bounded reservoir sample of
    the exemplars that landed in it (Prometheus's exemplar pattern), so
    a latency bucket links back to concrete requests.  The reservoir is
    seeded, so the same observation sequence always keeps the same
    exemplars.
    """

    __slots__ = (
        "name", "buckets", "counts", "count", "total", "min", "max",
        "exemplar_slots", "_exemplar_rng", "_exemplars", "_exemplar_seen",
    )

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        exemplar_slots: int = 2,
        exemplar_seed: int = 0,
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        if exemplar_slots < 0:
            raise ValueError("exemplar_slots must be non-negative")
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # + overflow
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.exemplar_slots = exemplar_slots
        self._exemplar_rng = random.Random(exemplar_seed)
        # bucket index -> [(exemplar, value)], lazily populated.
        self._exemplars: dict[int, list[tuple[object, float]]] = {}
        self._exemplar_seen: dict[int, int] = {}

    def observe(self, value: float, exemplar: object = None) -> None:
        index = bisect_left(self.buckets, value)
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if exemplar is not None and self.exemplar_slots:
            self._sample_exemplar(index, exemplar, value)

    def _sample_exemplar(self, index: int, exemplar: object, value: float) -> None:
        """Reservoir-sample one exemplar into its bucket's slots."""
        seen = self._exemplar_seen.get(index, 0) + 1
        self._exemplar_seen[index] = seen
        reservoir = self._exemplars.get(index)
        if reservoir is None:
            reservoir = self._exemplars[index] = []
        if len(reservoir) < self.exemplar_slots:
            reservoir.append((exemplar, value))
        else:
            slot = self._exemplar_rng.randrange(seen)
            if slot < self.exemplar_slots:
                reservoir[slot] = (exemplar, value)

    def exemplars(self, index: int) -> list[tuple[object, float]]:
        """The sampled ``(exemplar, value)`` pairs of one bucket index."""
        return list(self._exemplars.get(index, ()))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Estimated percentile: the upper bound of the bucket holding
        the target rank (the exact max for the overflow bucket)."""
        return bucket_percentile(
            self.buckets, self.counts, self.count, self.max, fraction
        )

    def to_record(self) -> dict:
        record = {
            "kind": "metric",
            "metric": "histogram",
            "name": self.name,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
        }
        if self._exemplars:
            record["exemplars"] = {
                str(index): [
                    {"exemplar": exemplar, "value": value}
                    for exemplar, value in reservoir
                ]
                for index, reservoir in sorted(self._exemplars.items())
            }
        return record


class MetricsRegistry:
    """Get-or-create namespace of instruments, exportable as a whole."""

    def __init__(self):
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind, *args):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name, *args)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, buckets: Sequence[float] = LATENCY_BUCKETS
    ) -> Histogram:
        return self._get_or_create(name, Histogram, buckets)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def as_dict(self) -> dict[str, float]:
        """Flat ``{name: value}`` view; histograms expand to
        ``name.count`` / ``name.sum`` / ``name.mean`` /
        ``name.p50|p95|p99`` / ``name.min`` / ``name.max``."""
        flat: dict[str, float] = {}
        for name, instrument in self._instruments.items():
            if isinstance(instrument, Histogram):
                flat[f"{name}.count"] = instrument.count
                flat[f"{name}.sum"] = instrument.total
                flat[f"{name}.mean"] = instrument.mean
                flat[f"{name}.p50"] = instrument.percentile(0.50)
                flat[f"{name}.p95"] = instrument.percentile(0.95)
                flat[f"{name}.p99"] = instrument.percentile(0.99)
                flat[f"{name}.min"] = instrument.min or 0.0
                flat[f"{name}.max"] = instrument.max or 0.0
            else:
                flat[name] = instrument.value
        return flat

    def iter_records(self) -> Iterator[dict]:
        """One JSONL-ready record per instrument, in name order."""
        for name in sorted(self._instruments):
            yield self._instruments[name].to_record()

    def reset(self) -> None:
        self._instruments.clear()


def percentile_from_record(record: dict, fraction: float) -> float:
    """Re-estimate a percentile from an exported histogram record.

    Used by ``repro trace`` to summarize a JSONL file without the live
    :class:`Histogram` object.
    """
    count = record.get("count", 0)
    if not count:
        return 0.0
    return bucket_percentile(
        record["buckets"], record["counts"], count, record.get("max"), fraction
    )
