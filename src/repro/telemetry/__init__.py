"""``repro.telemetry`` — spans, metrics, and trace export.

The observability layer behind every instrumented code path:

- :mod:`~repro.telemetry.spans` — nested, timestamped spans carrying
  wall *and* simulated seconds, plus point-in-time events;
- :mod:`~repro.telemetry.metrics` — counters, gauges, and fixed-bucket
  histograms in a :class:`MetricsRegistry`;
- :mod:`~repro.telemetry.sinks` — in-memory, JSONL-file, and
  stdlib-logging destinations;
- :mod:`~repro.telemetry.report` — summaries of exported JSONL traces
  (the ``repro trace`` subcommand).

Telemetry is off by default and near-free when off: instrumented code
checks one attribute (``tracer.enabled``) and moves on.  Turn it on for
a block of work with :func:`session`::

    from repro.telemetry import session
    from repro.telemetry.sinks import JsonlSink

    with session([JsonlSink("run.jsonl")]):
        build_index(graph, method="drl-b")

On exit the session flushes the metrics registry into every sink and
closes them.  See ``docs/observability.md`` for the JSONL schema.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.telemetry.metrics import (
    ACTIVE_VERTEX_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    exponential_buckets,
)
from repro.telemetry.spans import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceEvent,
    Tracer,
    activate,
    current_tracer,
    set_tracer,
    trace_event,
    trace_span,
)

__all__ = [
    "ACTIVE_VERTEX_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceEvent",
    "Tracer",
    "activate",
    "current_metrics",
    "current_tracer",
    "enabled",
    "exponential_buckets",
    "session",
    "set_tracer",
    "trace_event",
    "trace_span",
]

_metrics = MetricsRegistry()


def current_metrics() -> MetricsRegistry:
    """The active metrics registry (a fresh one inside each session)."""
    return _metrics


def enabled() -> bool:
    """True when a real tracer is installed (telemetry session active)."""
    return current_tracer().enabled


@contextmanager
def session(sinks=()) -> Iterator[Tracer]:
    """Run a telemetry session: install a tracer and a fresh registry.

    On exit the registry's metrics are flushed to every sink
    (``on_metrics``), the sinks are closed, and the previous
    tracer/registry are restored — sessions nest cleanly.
    """
    global _metrics
    tracer = Tracer(sinks)
    previous_metrics = _metrics
    _metrics = MetricsRegistry()
    try:
        with activate(tracer):
            yield tracer
    finally:
        for sink in tracer.sinks:
            sink.on_metrics(_metrics)
            sink.close()
        _metrics = previous_metrics
