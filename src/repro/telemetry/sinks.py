"""Trace sinks: where finished spans, events, and metrics go.

Three implementations cover the usual needs:

- :class:`InMemorySink` — keeps everything in lists (tests, notebooks);
- :class:`JsonlSink` — appends one JSON object per line to a file (the
  machine-readable export consumed by ``repro trace``);
- :class:`LoggingSink` — bridges to stdlib :mod:`logging` (the
  ``--verbose`` CLI flag).

The JSONL schema is documented in ``docs/observability.md``; every
record carries a ``"kind"`` discriminator (``span`` / ``event`` /
``metric``).
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Span, TraceEvent


@runtime_checkable
class SpanSink(Protocol):
    """Anything that can receive telemetry records."""

    def on_span(self, span: Span) -> None: ...  # pragma: no cover

    def on_event(self, event: TraceEvent) -> None: ...  # pragma: no cover

    def on_metrics(self, registry: MetricsRegistry) -> None: ...  # pragma: no cover

    def close(self) -> None: ...  # pragma: no cover


class InMemorySink:
    """Collects records in lists; ``records`` preserves arrival order."""

    def __init__(self):
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []
        self.metrics: list[dict] = []
        self.records: list[dict] = []

    def on_span(self, span: Span) -> None:
        self.spans.append(span)
        self.records.append(span.to_dict())

    def on_event(self, event: TraceEvent) -> None:
        self.events.append(event)
        self.records.append(event.to_dict())

    def on_metrics(self, registry: MetricsRegistry) -> None:
        rows = list(registry.iter_records())
        self.metrics.extend(rows)
        self.records.extend(rows)

    def close(self) -> None:
        pass

    def spans_named(self, name: str) -> list[Span]:
        """All finished spans with the given name, in finish order."""
        return [s for s in self.spans if s.name == name]


class JsonlSink:
    """Writes one JSON object per line to ``path`` (truncates on open)."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._file = self.path.open("w", encoding="utf-8")

    def _write(self, record: dict) -> None:
        self._file.write(json.dumps(record, separators=(",", ":")) + "\n")

    def on_span(self, span: Span) -> None:
        self._write(span.to_dict())

    def on_event(self, event: TraceEvent) -> None:
        self._write(event.to_dict())

    def on_metrics(self, registry: MetricsRegistry) -> None:
        for record in registry.iter_records():
            self._write(record)

    def close(self) -> None:
        self._file.close()


class LoggingSink:
    """Bridges telemetry to stdlib logging (logger ``repro.telemetry``)."""

    def __init__(self, logger: logging.Logger | None = None, level: int = logging.INFO):
        self._logger = logger if logger is not None else logging.getLogger("repro.telemetry")
        self._level = level

    def _format_attrs(self, attrs: dict) -> str:
        return " ".join(f"{k}={v}" for k, v in attrs.items())

    def on_span(self, span: Span) -> None:
        self._logger.log(
            self._level,
            "span %s wall=%.6fs sim=%.6fs status=%s %s",
            span.name,
            span.wall_seconds,
            span.simulated_seconds,
            span.status,
            self._format_attrs(span.attrs),
        )

    def on_event(self, event: TraceEvent) -> None:
        self._logger.log(
            self._level,
            "event %s %s",
            event.name,
            self._format_attrs(event.attrs),
        )

    def on_metrics(self, registry: MetricsRegistry) -> None:
        for name, value in sorted(registry.as_dict().items()):
            self._logger.log(self._level, "metric %s=%s", name, value)

    def close(self) -> None:
        pass
