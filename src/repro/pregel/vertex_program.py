"""The vertex-centric programming interface (Section II-C of the paper).

A :class:`VertexProgram` is executed by the cluster engine in
super-steps: in each super-step every *active* vertex receives the
messages addressed to it in the previous super-step, updates its state,
and sends messages for the next super-step.  The computation ends when
no messages are in flight.

BSP discipline, enforced by convention
--------------------------------------
``compute(ctx, v, messages)`` may only touch state *owned by vertex v*
plus data that has been explicitly *published* (broadcast) at an earlier
barrier — exactly what a real vertex-centric system allows.  The engine
cannot stop a simulator program from peeking at other vertices' state,
but every algorithm in :mod:`repro.core` keeps a published/pending split
for shared structures so that remote reads always observe the previous
barrier's snapshot.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.pregel.engine import ComputeContext, FinalizeContext


class VertexProgram(ABC):
    """User code run by the cluster engine."""

    #: Opt-in message combiner: when True, duplicate ``(destination,
    #: payload)`` messages sent from the same node within one super-step
    #: are dropped before they hit the network (Pregel's combiner).
    #: Only sound for programs whose message handling is idempotent.
    combine_duplicates: bool = False

    def aggregators(self) -> dict:
        """Aggregators this program uses: ``{name: Aggregator}``.

        Contribute with ``ctx.aggregate(name, value)``; read the
        *previous* super-step's combined result with
        ``ctx.aggregated(name)`` (Pregel visibility rules).
        """
        return {}

    def setup(self, ctx: "ComputeContext") -> None:
        """Called once before super-step 1 (allocate state)."""

    @abstractmethod
    def compute(self, ctx: "ComputeContext", vertex: int, messages: Sequence) -> None:
        """Process ``messages`` addressed to ``vertex`` and send new ones.

        In super-step 1 every vertex is invoked with an empty message
        list (this is where sources kick off their traversals).
        """

    def on_barrier(self, superstep: int) -> None:
        """Called at every super-step barrier (publish shared snapshots)."""

    def finalize(self, ctx: "FinalizeContext") -> None:
        """Called once after the message loop (e.g. Alg. 3 lines 19-20).

        Work done here must be charged through ``ctx.charge(vertex,
        units)`` so the post-pass appears in the cost accounting.
        """
