"""The vertex-centric programming interface (Section II-C of the paper).

A :class:`VertexProgram` is executed by the cluster engine in
super-steps: in each super-step every *active* vertex receives the
messages addressed to it in the previous super-step, updates its state,
and sends messages for the next super-step.  The computation ends when
no messages are in flight.

BSP discipline, enforced by convention
--------------------------------------
``compute(ctx, v, messages)`` may only touch state *owned by vertex v*
plus data that has been explicitly *published* (broadcast) at an earlier
barrier — exactly what a real vertex-centric system allows.  The engine
cannot stop a simulator program from peeking at other vertices' state,
but every algorithm in :mod:`repro.core` keeps a published/pending split
for shared structures so that remote reads always observe the previous
barrier's snapshot.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

from repro.graph.digraph import DiGraph

if TYPE_CHECKING:  # pragma: no cover
    from repro.pregel.engine import ComputeContext, FinalizeContext


def _copy_state(attrs: dict) -> dict:
    """Deep-copy an attribute dict, sharing (not copying) any graphs.

    Input graphs are immutable by convention and can be huge; the memo
    is pre-seeded with every :class:`DiGraph` reachable as a direct
    attribute (including via nested programs, which hold the same graph
    object), so ``deepcopy`` treats them as already-copied.
    """
    memo: dict[int, object] = {}
    stack = [attrs]
    while stack:
        current = stack.pop()
        for value in current.values():
            if isinstance(value, DiGraph):
                memo[id(value)] = value
            elif isinstance(value, VertexProgram):
                stack.append(vars(value))
    return copy.deepcopy(attrs, memo)


class VertexProgram(ABC):
    """User code run by the cluster engine."""

    #: Opt-in message combiner: when True, duplicate ``(destination,
    #: payload)`` messages sent from the same node within one super-step
    #: are dropped before they hit the network (Pregel's combiner).
    #: Only sound for programs whose message handling is idempotent.
    combine_duplicates: bool = False

    #: Opt-in for the multiprocessing engine (:mod:`repro.pregel.mp`).
    #: A program that sets this True promises that ``compute()`` for a
    #: vertex only writes state owned by that vertex's node (so state
    #: partitions cleanly across worker replicas), and implements
    #: :meth:`mp_collect` / :meth:`mp_merge` — plus
    #: :meth:`mp_publish_delta` / :meth:`mp_apply_published` if it keeps
    #: published (barrier-visible) shared structures.
    mp_supported: bool = False

    def aggregators(self) -> dict:
        """Aggregators this program uses: ``{name: Aggregator}``.

        Contribute with ``ctx.aggregate(name, value)``; read the
        *previous* super-step's combined result with
        ``ctx.aggregated(name)`` (Pregel visibility rules).
        """
        return {}

    def setup(self, ctx: "ComputeContext") -> None:
        """Called once before super-step 1 (allocate state)."""

    @abstractmethod
    def compute(self, ctx: "ComputeContext", vertex: int, messages: Sequence) -> None:
        """Process ``messages`` addressed to ``vertex`` and send new ones.

        In super-step 1 every vertex is invoked with an empty message
        list (this is where sources kick off their traversals).
        """

    def on_barrier(self, superstep: int) -> None:
        """Called at every super-step barrier (publish shared snapshots)."""

    def snapshot(self) -> dict:
        """Checkpoint: a deep copy of the program's mutable state.

        The default copies every instance attribute except input graphs
        (shared, immutable by convention).  Programs with state that
        must not — or need not — be checkpointed can override this and
        :meth:`restore` as a pair.
        """
        return _copy_state(vars(self))

    def restore(self, state: dict) -> None:
        """Roll back to a :meth:`snapshot`.

        The snapshot is copied again on the way in so that it survives
        further mutation and can be restored more than once (repeated
        crashes between two checkpoints).
        """
        vars(self).clear()
        vars(self).update(_copy_state(state))

    def finalize(self, ctx: "FinalizeContext") -> None:
        """Called once after the message loop (e.g. Alg. 3 lines 19-20).

        The default delegates to :meth:`finalize_vertices` over every
        vertex; programs whose post-pass is per-vertex should override
        that instead so the multiprocessing engine can split the pass
        across workers.  Work must be charged through
        ``ctx.charge(vertex, units)`` so the post-pass appears in the
        cost accounting.
        """
        self.finalize_vertices(ctx, ctx.graph.vertices())

    def finalize_vertices(self, ctx: "FinalizeContext", vertices) -> None:
        """The per-vertex share of :meth:`finalize` (default: no work).

        ``vertices`` is an ascending iterable: all vertices under the
        simulator, one worker's owned vertices under the
        multiprocessing engine.  Must only touch state owned by those
        vertices (plus read-only shared structures)."""

    # -- multiprocessing-engine hooks ----------------------------------
    def mp_publish_delta(self):
        """This super-step's not-yet-published shared-state entries.

        Called on each worker after ``compute()``, before the barrier.
        Return ``None`` when the program keeps no published structures
        or nothing changed; otherwise any picklable value that
        :meth:`mp_apply_published` understands."""
        return None

    def mp_apply_published(self, delta) -> None:
        """Apply another replica's :meth:`mp_publish_delta` value.

        Called on every replica (master included) for *all* workers'
        deltas, in fixed worker order, immediately before
        ``on_barrier()`` — so it must be idempotent for entries the
        replica already holds (the producing worker receives its own
        delta back)."""

    def mp_collect(self, vertices):
        """Package the final state owned by ``vertices`` for the master.

        Called once per worker after :meth:`finalize_vertices`; the
        return value is pickled to the master and fed to
        :meth:`mp_merge`."""
        raise NotImplementedError(
            f"{type(self).__name__} sets mp_supported but does not "
            "implement mp_collect()"
        )

    def mp_merge(self, collected) -> None:
        """Fold one worker's :meth:`mp_collect` value into this replica.

        Called on the master in fixed worker order; afterwards the
        master's program state must equal a simulator run's."""
        raise NotImplementedError(
            f"{type(self).__name__} sets mp_supported but does not "
            "implement mp_merge()"
        )
