"""Vertex-centric BSP cluster simulator with explicit cost accounting.

This subpackage is the substitute for the paper's self-built MPI
vertex-centric system (Section VI-A, "Environment"): a deterministic
single-process engine that preserves BSP semantics and *counts*
computation and communication, converting them to simulated seconds via
a calibrated :class:`~repro.pregel.cost_model.CostModel`.
"""

from repro.pregel.aggregator import (
    Aggregator,
    any_aggregator,
    max_aggregator,
    min_aggregator,
    sum_aggregator,
)
from repro.pregel.cost_model import (
    SCALED_CUTOFF_SECONDS,
    CostModel,
    mpi_cluster_model,
    paper_scale_model,
    shared_memory_model,
)
from repro.pregel.engine import (
    Cluster,
    ComputeContext,
    FinalizeContext,
    SuperstepLimitExceeded,
)
from repro.pregel.metrics import RunStats, SuperstepTrace
from repro.pregel.serial import SerialMeter
from repro.pregel.vertex_program import VertexProgram

__all__ = [
    "SCALED_CUTOFF_SECONDS",
    "Aggregator",
    "Cluster",
    "any_aggregator",
    "max_aggregator",
    "min_aggregator",
    "sum_aggregator",
    "ComputeContext",
    "CostModel",
    "FinalizeContext",
    "RunStats",
    "SerialMeter",
    "SuperstepTrace",
    "SuperstepLimitExceeded",
    "VertexProgram",
    "mpi_cluster_model",
    "paper_scale_model",
    "shared_memory_model",
]
