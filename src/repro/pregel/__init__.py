"""Vertex-centric BSP cluster with explicit cost accounting.

This subpackage is the substitute for the paper's self-built MPI
vertex-centric system (Section VI-A, "Environment").  The BSP contract
(compute / message routing / barrier / checkpoint hooks) is an explicit
:class:`~repro.pregel.engine.Engine` interface with two
implementations:

- :class:`~repro.pregel.engine.SimulatorEngine` — a deterministic
  single-process engine that preserves BSP semantics and *counts*
  computation and communication, converting them to simulated seconds
  via a calibrated :class:`~repro.pregel.cost_model.CostModel`; and
- :class:`~repro.pregel.mp.MultiprocessEngine` — real parallelism
  across worker processes over a shared-memory CSR, producing the
  identical labels and the identical simulated-clock accounting while
  the wall clock actually drops with cores.
"""

from repro.pregel.aggregator import (
    Aggregator,
    any_aggregator,
    max_aggregator,
    min_aggregator,
    sum_aggregator,
)
from repro.pregel.cost_model import (
    SCALED_CUTOFF_SECONDS,
    CostModel,
    mpi_cluster_model,
    paper_scale_model,
    shared_memory_model,
)
from repro.pregel.engine import (
    ENGINE_NAMES,
    Cluster,
    ComputeContext,
    Engine,
    FinalizeContext,
    SimulatorEngine,
    SuperstepLimitExceeded,
    resolve_engine,
)
from repro.pregel.metrics import RunStats, SuperstepTrace
from repro.pregel.mp import MultiprocessEngine
from repro.pregel.serial import SerialMeter
from repro.pregel.vertex_program import VertexProgram

__all__ = [
    "ENGINE_NAMES",
    "SCALED_CUTOFF_SECONDS",
    "Aggregator",
    "Cluster",
    "Engine",
    "MultiprocessEngine",
    "SimulatorEngine",
    "resolve_engine",
    "any_aggregator",
    "max_aggregator",
    "min_aggregator",
    "sum_aggregator",
    "ComputeContext",
    "CostModel",
    "FinalizeContext",
    "RunStats",
    "SerialMeter",
    "SuperstepTrace",
    "SuperstepLimitExceeded",
    "VertexProgram",
    "mpi_cluster_model",
    "paper_scale_model",
    "shared_memory_model",
]
