"""Cost model for the simulated cluster.

The paper runs on 32 MPI nodes (Xeon 2.7 GHz, 32 GB).  We replace wall
clocks with a deterministic cost model: every algorithm *counts* its
work (compute units, bytes crossing node boundaries, super-steps) and
the model converts counts into **simulated seconds**:

    time = Σ_supersteps [ max_node(compute_units) · t_op
                          + max_node(remote_recv_bytes) · t_byte
                          + broadcast_bytes · t_byte · (nodes > 1)
                          + t_barrier ]

Centralized algorithms are charged ``total_units · t_op`` with no
barrier or byte costs.  Constants are calibrated to commodity hardware
(≈40 M graph operations/s per core, ≈1 GiB/s effective network, ≈0.3 ms
per MPI barrier); all comparisons in the paper are ratios, which do not
depend on the constants.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import OutOfMemoryError, TimeLimitExceeded

GIB = 2**30


@dataclass(frozen=True)
class CostModel:
    """Converts work counts into simulated seconds.

    Attributes
    ----------
    t_op:
        Seconds per compute unit (one message handled, one edge scanned,
        one label-entry comparison).
    t_byte:
        Seconds per byte received over the network by one node.
    t_barrier:
        Seconds per super-step synchronisation barrier.
    t_hop:
        Seconds per *serialized* cross-node hop (token passing in a
        distributed DFS cannot be batched, unlike BSP messages).
    message_bytes:
        Wire size of one vertex-to-vertex message (the paper's messages
        carry ``{ID, order}``).
    entry_bytes:
        Wire/size unit for one label or inverted-list entry.
    node_memory_bytes:
        Per-node memory budget (the paper's machines have 32 GB).
    time_limit_seconds:
        Simulated cut-off (the paper uses 2 hours); ``None`` disables.
    t_checkpoint_byte:
        Seconds per byte written to (or read from) stable storage when
        the engine checkpoints or restores super-step state (≈500 MB/s
        shared storage).
    failover_seconds:
        Fixed cost of detecting a dead node and re-forming the cluster
        (failure-detector timeout plus membership reconfiguration).
    """

    t_op: float = 2.5e-8
    t_byte: float = 1.0e-9
    t_barrier: float = 3.0e-4
    t_hop: float = 2.0e-6
    message_bytes: int = 16
    entry_bytes: int = 8
    node_memory_bytes: int = 32 * GIB
    time_limit_seconds: float | None = 7200.0
    t_checkpoint_byte: float = 2.0e-9
    failover_seconds: float = 0.5

    def with_time_limit(self, seconds: float | None) -> "CostModel":
        """Copy of the model with a different cut-off."""
        return replace(self, time_limit_seconds=seconds)

    def check_memory(self, required_bytes: int, what: str = "run") -> None:
        """Raise :class:`OutOfMemoryError` when the budget is exceeded."""
        if required_bytes > self.node_memory_bytes:
            raise OutOfMemoryError(required_bytes, self.node_memory_bytes, what)

    def check_time(self, elapsed_seconds: float) -> None:
        """Raise :class:`TimeLimitExceeded` past the cut-off."""
        limit = self.time_limit_seconds
        if limit is not None and elapsed_seconds > limit:
            raise TimeLimitExceeded(elapsed_seconds, limit)


#: Shared default instance for code paths that accept an optional
#: :class:`CostModel`.  Query backends and the serving layer all fall
#: back to this one object, so mixed-backend evaluations (serve-bench,
#: fallback ladders) are guaranteed to charge under the same constants
#: unless a caller explicitly passes a different model.
DEFAULT_COST_MODEL = CostModel()


def mpi_cluster_model(**overrides) -> CostModel:
    """The default distributed-cluster model (paper's Exp setup)."""
    return replace(CostModel(), **overrides)


#: Simulated cut-off for the scaled experiments (stands in for the
#: paper's 2-hour limit; our stand-in graphs are ~10³× smaller).
SCALED_CUTOFF_SECONDS = 0.06


def paper_scale_model(**overrides) -> CostModel:
    """Cost model for the paper-reproduction benchmarks.

    The stand-in graphs are roughly three orders of magnitude smaller
    than the paper's, so the fixed per-super-step barrier cost and the
    cut-off are scaled down consistently (otherwise barrier overhead —
    negligible at billion-edge scale — would dominate every comparison
    and invert the paper's shapes).
    """
    defaults = dict(
        t_barrier=2.0e-6,
        t_hop=2.0e-7,
        time_limit_seconds=SCALED_CUTOFF_SECONDS,
        failover_seconds=5.0e-6,
    )
    defaults.update(overrides)
    return replace(CostModel(), **defaults)


def shared_memory_model(**overrides) -> CostModel:
    """Cost model for the multi-core variant DRL_b^M (Exp 3).

    Threads exchange data through shared memory, so bytes are free and
    barriers are two orders of magnitude cheaper than MPI barriers; the
    memory budget stays that of a *single* machine.
    """
    defaults = dict(t_byte=0.0, t_barrier=3.0e-6)
    defaults.update(overrides)
    return replace(CostModel(), **defaults)
