"""Real-parallelism BSP engine: supersteps across worker processes.

:class:`MultiprocessEngine` executes the same :class:`~repro.pregel.
vertex_program.VertexProgram` contract as the simulator, but the
per-superstep ``compute()`` work actually runs in parallel across
``workers`` OS processes, so build wall-clock time drops with cores.
The charged cost accounting is reproduced *exactly*: worker-local work
counters are summed at every barrier and fed through the same
accounting code the simulator uses, so ``RunStats`` (and therefore the
simulated clock) is identical to a simulator run of the same program.

Design
------
- The input graph's CSR arrays and the vertex → node map are copied
  once into ``multiprocessing.shared_memory`` segments and the graph's
  ``array`` slots are swapped for ``memoryview`` casts of those
  segments, so forked workers read the topology from shared pages
  instead of private copies.
- Each worker is a full program replica forked *after* ``setup()``.
  Logical node ``n`` is pinned to worker ``n % workers``, so every
  vertex (and its per-vertex state) has exactly one writer and the
  per-node cost counters land on the same nodes as in the simulator.
- Messages between vertices on the same worker never leave it; cross
  -worker messages are routed through the master at the barrier.  Each
  message is tagged with its sending vertex and every inbox is stably
  sorted by sender before delivery — exactly the order the simulator's
  ascending vertex sweep produces — which makes results independent of
  worker count and of the order worker replies arrive in.
- Shared published state (DRL's inverted lists) moves as explicit
  deltas: at each barrier the master gathers every worker's
  ``mp_publish_delta()`` and re-broadcasts the full set, which all
  replicas apply in fixed worker order before ``on_barrier()``.
- Per-worker *measured* wall-clock timings are recorded as
  :class:`~repro.pregel.metrics.NodeSlice` rows (``node`` = worker id)
  and ``pregel.node`` telemetry events; the simulated per-node
  breakdown is available from the simulator engine.

Fault plans and checkpoint intervals are not supported here — crash
injection into real processes is a different feature; the simulator
remains the tool for fault experiments.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from array import array
from multiprocessing import shared_memory
from random import Random

from repro.errors import ReproError
from repro.graph.digraph import DiGraph
from repro.graph.partition import node_assignment
from repro.pregel.cost_model import CostModel
from repro.pregel.engine import (
    _EMPTY,
    ComputeContext,
    Engine,
    FinalizeContext,
    SuperstepLimitExceeded,
    _account_finalize,
    _account_superstep,
)
from repro.pregel.metrics import NodeSlice, NodeTimeline, RunStats
from repro.pregel.vertex_program import VertexProgram
from repro.telemetry import current_tracer

_CSR_SLOTS = ("_fwd_offsets", "_fwd_targets", "_rev_offsets", "_rev_targets")


class _SharedGraph:
    """The graph CSR (plus the node map) in shared-memory segments.

    ``install()`` swaps the graph's ``array('q')`` slots for
    ``memoryview`` casts of the segments; because every CSR accessor
    only indexes/slices, the swap is transparent to programs.  The
    master restores the original arrays and unlinks the segments in
    ``close()``; forked workers exit with ``os._exit`` and never touch
    the handles.
    """

    def __init__(self, graph: DiGraph, node_of: array):
        self._graph = graph
        self._segments: list[shared_memory.SharedMemory] = []
        self._originals = {slot: getattr(graph, slot) for slot in _CSR_SLOTS}
        self._views = {
            slot: self._to_shared(self._originals[slot]) for slot in _CSR_SLOTS
        }
        self.node_of = self._to_shared(node_of)
        self._installed = False

    def _to_shared(self, arr):
        data = arr.tobytes()
        if not data:
            return arr  # zero-length arrays have nothing to share
        shm = shared_memory.SharedMemory(create=True, size=len(data))
        self._segments.append(shm)
        shm.buf[: len(data)] = data
        return shm.buf[: len(data)].cast("q")

    def install(self) -> None:
        for slot, view in self._views.items():
            setattr(self._graph, slot, view)
        self._installed = True

    def close(self) -> None:
        if self._installed:
            for slot, arr in self._originals.items():
                setattr(self._graph, slot, arr)
            self._installed = False
        for view in self._views.values():
            if isinstance(view, memoryview):
                view.release()
        self._views = {}
        if isinstance(self.node_of, memoryview):
            self.node_of.release()
        self.node_of = None
        for shm in self._segments:
            shm.close()
            shm.unlink()
        self._segments = []


class _WorkerContext(ComputeContext):
    """A worker-side compute context that tags messages with the sender.

    Sender tags let the receiving worker stably sort each inbox into
    ascending sending-vertex order — the exact sequence the simulator's
    ``for v in sorted(inbox)`` sweep appends — before handing the bare
    payloads to ``compute()``.
    """

    __slots__ = ()

    def send(self, dst: int, payload) -> None:
        if self._combine:
            key = (self._current_node, dst, payload)
            if key in self._sent_keys:
                return  # combined away before reaching the network
            self._sent_keys.add(key)
        bucket = self._next_inbox.get(dst)
        entry = (self._current_vertex, payload)
        if bucket is None:
            self._next_inbox[dst] = [entry]
        else:
            bucket.append(entry)
        dst_node = self._node_of[dst]
        if dst_node == self._current_node:
            self._local_messages += 1
        else:
            self._remote_messages += 1
            self._recv_bytes[dst_node] += self._cost.message_bytes


def _sender(entry) -> int:
    return entry[0]


def _worker_main(
    conn,
    worker: int,
    num_workers: int,
    graph: DiGraph,
    program: VertexProgram,
    num_nodes: int,
    node_of,
    cost: CostModel,
) -> None:
    """One worker process: compute owned vertices, superstep by superstep."""
    status = 0
    try:
        ctx = _WorkerContext(graph, num_nodes, node_of, cost)
        ctx._combine = program.combine_duplicates
        ctx._aggregators = program.aggregators()
        ctx._agg_current = {
            name: agg.initial for name, agg in ctx._aggregators.items()
        }
        owned = [
            v for v in graph.vertices() if node_of[v] % num_workers == worker
        ]
        pending_local: dict[int, list] = {}
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "step":
                _, superstep, base_seconds, agg_visible, remote_in = msg
                started = time.perf_counter()
                ctx._begin_superstep(superstep)
                ctx._base_seconds = base_seconds
                if ctx._aggregators:
                    ctx._agg_visible = agg_visible
                if superstep == 1:
                    active = len(owned)
                    for v in owned:
                        ctx._at_vertex(v)
                        program.compute(ctx, v, _EMPTY)
                else:
                    inbox = pending_local
                    for dst, entries in remote_in.items():
                        bucket = inbox.get(dst)
                        if bucket is None:
                            inbox[dst] = entries
                        else:
                            bucket.extend(entries)
                    active = len(inbox)
                    for v in sorted(inbox):
                        tagged = inbox[v]
                        tagged.sort(key=_sender)  # stable: sim delivery order
                        messages = [payload for _, payload in tagged]
                        ctx._at_vertex(v)
                        ctx.charge(len(messages))
                        program.compute(ctx, v, messages)
                pending_local = {}
                remote_out: dict[int, dict[int, list]] = {}
                for dst, tagged in ctx._next_inbox.items():
                    dst_worker = node_of[dst] % num_workers
                    if dst_worker == worker:
                        pending_local[dst] = tagged
                    else:
                        remote_out.setdefault(dst_worker, {})[dst] = tagged
                compute_wall = time.perf_counter() - started
                conn.send((
                    "done",
                    active,
                    list(ctx._units),
                    list(ctx._recv_bytes),
                    ctx._broadcast_bytes,
                    ctx._local_messages,
                    ctx._remote_messages,
                    sum(len(b) for b in pending_local.values()),
                    remote_out,
                    program.mp_publish_delta(),
                    dict(ctx._agg_current) if ctx._aggregators else None,
                    compute_wall,
                ))
                ctx._local_messages = 0
                ctx._remote_messages = 0
            elif kind == "barrier":
                _, superstep, deltas = msg
                for delta in deltas:
                    if delta is not None:
                        program.mp_apply_published(delta)
                program.on_barrier(superstep)
            elif kind == "finalize":
                _, base_seconds = msg
                started = time.perf_counter()
                fctx = FinalizeContext(
                    graph, num_nodes, node_of, cost, base_seconds
                )
                program.finalize_vertices(fctx, owned)
                finalize_wall = time.perf_counter() - started
                conn.send((
                    "finalized",
                    list(fctx._units),
                    program.mp_collect(owned),
                    finalize_wall,
                ))
            else:  # "exit"
                break
    except BaseException as exc:  # noqa: BLE001 — forwarded to the master
        status = 1
        tb = traceback.format_exc()
        try:
            conn.send(("error", exc, tb))
        except Exception:
            try:
                conn.send(
                    ("error", ReproError(f"{type(exc).__name__}: {exc}"), tb)
                )
            except Exception:
                pass
    finally:
        try:
            conn.close()
        except Exception:
            pass
        # Skip interpreter teardown: the forked heap holds exported
        # memoryviews of the master's shared-memory segments, whose
        # destructors would raise during shutdown.  The master owns and
        # unlinks the segments.
        os._exit(status)


class MultiprocessEngine(Engine):
    """Run supersteps for real across ``workers`` forked processes.

    Parameters
    ----------
    workers:
        Worker-process count; defaults to the machine's core count,
        capped at the cluster's ``num_nodes`` (extra workers would own
        no logical node).
    arrival_seed:
        Optional seed shuffling the order in which the master *awaits*
        worker replies at each barrier.  Results must not depend on it
        — merges happen in fixed worker order regardless — and the
        equivalence test suite exercises exactly that invariance.
    """

    name = "mp"
    supports_faults = False

    def __init__(
        self, workers: int | None = None, arrival_seed: int | None = None
    ):
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.arrival_seed = arrival_seed

    def run(
        self,
        cluster,
        graph: DiGraph,
        program: VertexProgram,
        max_supersteps: int = 100_000,
        stats: RunStats | None = None,
        trace: bool = False,
        node_timeline: bool = False,
    ) -> RunStats:
        if cluster.faults is not None or cluster.checkpoint_interval is not None:
            raise ReproError(
                "the multiprocess engine does not support fault injection "
                "or checkpointing; use engine='sim'"
            )
        if not getattr(program, "mp_supported", False):
            raise ReproError(
                f"{type(program).__name__} does not implement the "
                "multiprocess hooks (mp_supported / mp_collect / mp_merge); "
                "run it with engine='sim'"
            )
        try:
            fork = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover — POSIX only
            raise ReproError(
                "the multiprocess engine requires the 'fork' start method"
            ) from exc
        num_nodes = cluster.num_nodes
        workers = self.workers if self.workers is not None else os.cpu_count() or 1
        workers = max(1, min(workers, num_nodes))
        cost = cluster.cost_model
        rng = Random(self.arrival_seed) if self.arrival_seed is not None else None

        tracer = current_tracer()
        with tracer.span(
            "pregel.run",
            program=type(program).__name__,
            num_nodes=num_nodes,
            vertices=graph.num_vertices,
            edges=graph.num_edges,
            engine=self.name,
            workers=workers,
        ) as span:
            if stats is None:
                stats = RunStats(num_nodes=num_nodes)
                stats.per_node_units = [0] * num_nodes
            if node_timeline and stats.node_timeline is None:
                stats.node_timeline = NodeTimeline(num_nodes=workers)
            wall_start = time.perf_counter()
            simulated_start = stats.simulated_seconds

            plain_node_of = node_assignment(cluster.partitioner, graph.num_vertices)
            ctx = ComputeContext(graph, num_nodes, plain_node_of, cost)
            ctx._combine = program.combine_duplicates
            ctx._aggregators = program.aggregators()
            ctx._agg_current = {
                name: agg.initial for name, agg in ctx._aggregators.items()
            }
            program.setup(ctx)

            owned_nodes = [
                [n for n in range(num_nodes) if n % workers == w]
                for w in range(workers)
            ]
            shared = _SharedGraph(graph, plain_node_of)
            conns: list = []
            procs: list = []
            try:
                shared.install()
                node_of = shared.node_of
                for w in range(workers):
                    parent_conn, child_conn = fork.Pipe()
                    proc = fork.Process(
                        target=_worker_main,
                        args=(
                            child_conn, w, workers, graph, program,
                            num_nodes, node_of, cost,
                        ),
                        daemon=True,
                    )
                    proc.start()
                    child_conn.close()
                    conns.append(parent_conn)
                    procs.append(proc)

                superstep = self._superstep_loop(
                    cluster, graph, program, ctx, stats, conns, owned_nodes,
                    max_supersteps, trace, tracer, rng,
                )
                self._finalize(
                    cluster, program, stats, conns, owned_nodes, superstep,
                    tracer, rng,
                )
                for conn in conns:
                    conn.send(("exit",))
                for proc in procs:
                    proc.join(timeout=30)
            finally:
                for proc in procs:
                    if proc.is_alive():
                        proc.terminate()
                        proc.join(timeout=5)
                for conn in conns:
                    try:
                        conn.close()
                    except Exception:
                        pass
                shared.close()

            cost.check_time(stats.simulated_seconds)
            stats.wall_seconds += time.perf_counter() - wall_start
            if tracer.enabled:
                span.set(supersteps=superstep)
                span.add_simulated(stats.simulated_seconds - simulated_start)
        return stats

    # ------------------------------------------------------------------
    def _gather(self, conns, rng, expected: str) -> dict[int, tuple]:
        """Await one reply per worker, optionally in shuffled order."""
        order = list(range(len(conns)))
        if rng is not None:
            rng.shuffle(order)
        replies: dict[int, tuple] = {}
        for w in order:
            msg = conns[w].recv()
            if msg[0] == "error":
                _, exc, tb = msg
                if isinstance(exc, BaseException):
                    if tb:
                        exc.add_note(f"worker {w} traceback:\n{tb}")
                    raise exc
                raise ReproError(f"worker {w} failed: {exc}\n{tb}")
            if msg[0] != expected:  # pragma: no cover — protocol bug guard
                raise ReproError(
                    f"worker {w}: expected {expected!r} reply, got {msg[0]!r}"
                )
            replies[w] = msg
        return replies

    def _superstep_loop(
        self, cluster, graph, program, ctx, stats, conns, owned_nodes,
        max_supersteps, trace, tracer, rng,
    ) -> int:
        cost = cluster.cost_model
        num_nodes = cluster.num_nodes
        workers = len(conns)
        agg_visible: dict = {}
        aggregators = ctx._aggregators
        routed: list[dict[int, list]] = [{} for _ in range(workers)]
        superstep = 0
        while True:
            superstep += 1
            if superstep > max_supersteps:
                raise SuperstepLimitExceeded(
                    f"no termination after {max_supersteps} supersteps"
                )
            ctx._begin_superstep(superstep)
            base = stats.simulated_seconds
            for w in range(workers):
                conns[w].send(("step", superstep, base, agg_visible, routed[w]))
            replies = self._gather(conns, rng, "done")
            barrier_started = time.perf_counter()

            merged_units = [0] * num_nodes
            merged_recv = [0] * num_nodes
            broadcast = local_msgs = remote_msgs = 0
            active = pending = 0
            walls = [0.0] * workers
            routed = [{} for _ in range(workers)]
            deltas = []
            for w in range(workers):
                (
                    _, w_active, units, recv, w_bcast, w_local, w_remote,
                    w_pending, remote_out, delta, agg_partial, compute_wall,
                ) = replies[w]
                active += w_active
                broadcast += w_bcast
                local_msgs += w_local
                remote_msgs += w_remote
                pending += w_pending
                walls[w] = compute_wall
                deltas.append(delta)
                for node in range(num_nodes):
                    merged_units[node] += units[node]
                    merged_recv[node] += recv[node]
                for dst_worker, buckets in remote_out.items():
                    target = routed[dst_worker]
                    for dst, entries in buckets.items():
                        pending += len(entries)
                        bucket = target.get(dst)
                        if bucket is None:
                            target[dst] = entries
                        else:
                            bucket.extend(entries)
                if aggregators:
                    for name, agg in aggregators.items():
                        agg_visible_value = agg_partial[name]
                        ctx._agg_current[name] = agg.combine(
                            ctx._agg_current[name], agg_visible_value
                        )
            ctx._units = merged_units
            ctx._recv_bytes = merged_recv
            ctx._broadcast_bytes = broadcast
            ctx._local_messages = local_msgs
            ctx._remote_messages = remote_msgs
            _account_superstep(
                cost, num_nodes, ctx, stats, active, trace, tracer,
                node_slices=False,
            )
            if aggregators:
                agg_visible = dict(ctx._agg_current)
            for delta in deltas:
                if delta is not None:
                    program.mp_apply_published(delta)
            program.on_barrier(superstep)
            for w in range(workers):
                conns[w].send(("barrier", superstep, deltas))
            barrier_wall = time.perf_counter() - barrier_started
            self._emit_worker_slices(
                stats, tracer, superstep, walls, barrier_wall,
                merged_units, merged_recv, owned_nodes,
            )
            cost.check_time(stats.simulated_seconds)
            if pending == 0:
                return superstep

    def _finalize(
        self, cluster, program, stats, conns, owned_nodes, superstep,
        tracer, rng,
    ) -> None:
        cost = cluster.cost_model
        num_nodes = cluster.num_nodes
        workers = len(conns)
        base = stats.simulated_seconds
        for conn in conns:
            conn.send(("finalize", base))
        replies = self._gather(conns, rng, "finalized")
        finalize_units = [0] * num_nodes
        walls = [0.0] * workers
        for w in range(workers):
            _, units, _, finalize_wall = replies[w]
            walls[w] = finalize_wall
            for node in range(num_nodes):
                finalize_units[node] += units[node]
        _account_finalize(
            cost, num_nodes, stats, finalize_units, superstep,
            tracer=tracer, node_slices=False,
        )
        if any(finalize_units):
            self._emit_worker_slices(
                stats, tracer, superstep + 1, walls, 0.0,
                finalize_units, [0] * num_nodes, owned_nodes,
            )
        for w in range(workers):  # fixed order: deterministic merge
            program.mp_merge(replies[w][2])

    def _emit_worker_slices(
        self, stats, tracer, superstep, walls, barrier_wall,
        merged_units, merged_recv, owned_nodes,
    ) -> None:
        """Record measured per-worker timings as NodeSlice rows.

        Unlike the simulator's per-logical-node slices (simulated
        seconds), these carry wall-clock measurements with ``node`` set
        to the worker id: ``compute_seconds`` is the worker's measured
        superstep time, ``barrier_wait_seconds`` its slack against the
        slowest worker, and ``barrier_seconds`` the master's measured
        routing/merge time.
        """
        timeline = stats.node_timeline
        telemetry_on = tracer is not None and tracer.enabled
        if timeline is None and not telemetry_on:
            return
        slowest = max(walls)
        for w, wall in enumerate(walls):
            piece = NodeSlice(
                superstep=superstep,
                node=w,
                units=sum(merged_units[n] for n in owned_nodes[w]),
                compute_seconds=wall,
                comm_seconds=0.0,
                barrier_wait_seconds=max(0.0, slowest - wall),
                barrier_seconds=barrier_wall,
                recv_bytes=sum(merged_recv[n] for n in owned_nodes[w]),
            )
            if timeline is not None:
                timeline.slices.append(piece)
            if telemetry_on:
                tracer.event("pregel.node", **piece.to_dict())
