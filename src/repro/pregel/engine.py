"""The BSP cluster engine.

:class:`Cluster` simulates a vertex-centric system running on
``num_nodes`` computation nodes.  Vertices are assigned to nodes by a
:class:`~repro.graph.partition.Partitioner`; message routing, super-step
barriers, and termination follow Pregel semantics.  All work is counted
and converted to simulated seconds by a
:class:`~repro.pregel.cost_model.CostModel` (see that module for the
formula), which is what makes single-process runs report meaningful
distributed timings.
"""

from __future__ import annotations

import time
from array import array

from repro.errors import ReproError
from repro.graph.digraph import DiGraph
from repro.graph.partition import HashPartitioner, Partitioner
from repro.pregel.cost_model import CostModel
from repro.pregel.metrics import RunStats, SuperstepTrace
from repro.pregel.vertex_program import VertexProgram
from repro.telemetry import ACTIVE_VERTEX_BUCKETS, current_metrics, current_tracer

_EMPTY: tuple = ()


class SuperstepLimitExceeded(ReproError):
    """The program did not terminate within ``max_supersteps``."""


class ComputeContext:
    """Facilities available to ``compute()`` during a super-step."""

    __slots__ = (
        "graph",
        "num_nodes",
        "superstep",
        "_node_of",
        "_current_node",
        "_next_inbox",
        "_units",
        "_recv_bytes",
        "_broadcast_bytes",
        "_local_messages",
        "_remote_messages",
        "_cost",
        "_base_seconds",
        "_pending_units",
        "_combine",
        "_sent_keys",
        "_aggregators",
        "_agg_current",
        "_agg_visible",
    )

    def __init__(
        self,
        graph: DiGraph,
        num_nodes: int,
        node_of: array,
        cost: CostModel,
    ):
        self.graph = graph
        self.num_nodes = num_nodes
        self.superstep = 0
        self._node_of = node_of
        self._current_node = 0
        self._next_inbox: dict[int, list] = {}
        self._units = [0] * num_nodes
        self._recv_bytes = [0] * num_nodes
        self._broadcast_bytes = 0
        self._local_messages = 0
        self._remote_messages = 0
        self._cost = cost
        self._base_seconds = 0.0
        self._pending_units = 0
        self._combine = False
        self._sent_keys: set = set()
        self._aggregators: dict = {}
        self._agg_current: dict = {}
        self._agg_visible: dict = {}

    # -- called by the engine ------------------------------------------
    def _begin_superstep(self, superstep: int) -> None:
        self.superstep = superstep
        self._next_inbox = {}
        self._units = [0] * self.num_nodes
        self._recv_bytes = [0] * self.num_nodes
        self._broadcast_bytes = 0
        if self._combine:
            self._sent_keys = set()
        if self._aggregators:
            self._agg_visible = dict(self._agg_current)
            self._agg_current = {
                name: agg.initial for name, agg in self._aggregators.items()
            }

    def _at_vertex(self, vertex: int) -> None:
        self._current_node = self._node_of[vertex]

    # -- called by programs --------------------------------------------
    def node_of(self, vertex: int) -> int:
        """The computation node owning ``vertex``."""
        return self._node_of[vertex]

    def charge(self, units: int = 1) -> None:
        """Charge compute units to the current vertex's node.

        Periodically re-checks the simulated cut-off so that runs whose
        single super-step explodes (DRL⁻'s refinement floods) abort as
        soon as the provisional total crosses the limit, rather than
        after finishing the super-step.
        """
        self._units[self._current_node] += units
        self._pending_units += units
        if self._pending_units >= 262_144:
            self._pending_units = 0
            self._cost.check_time(
                self._base_seconds + max(self._units) * self._cost.t_op
            )

    def send(self, dst: int, payload) -> None:
        """Send ``payload`` to vertex ``dst`` (delivered next super-step)."""
        if self._combine:
            key = (self._current_node, dst, payload)
            if key in self._sent_keys:
                return  # combined away before reaching the network
            self._sent_keys.add(key)
        bucket = self._next_inbox.get(dst)
        if bucket is None:
            self._next_inbox[dst] = [payload]
        else:
            bucket.append(payload)
        dst_node = self._node_of[dst]
        if dst_node == self._current_node:
            self._local_messages += 1
        else:
            self._remote_messages += 1
            self._recv_bytes[dst_node] += self._cost.message_bytes

    def aggregate(self, name: str, value) -> None:
        """Contribute ``value`` to aggregator ``name`` this super-step.

        The combined result (including a tiny per-value broadcast
        charge) becomes visible via :meth:`aggregated` next super-step.
        """
        aggregator = self._aggregators[name]
        self._agg_current[name] = aggregator.combine(
            self._agg_current[name], value
        )
        if self.num_nodes > 1:
            self._broadcast_bytes += self._cost.entry_bytes

    def aggregated(self, name: str):
        """The previous super-step's combined value for ``name``.

        Before any contribution round completes, returns the
        aggregator's identity value.
        """
        aggregator = self._aggregators[name]
        return self._agg_visible.get(name, aggregator.initial)

    def publish_entries(self, count: int = 1) -> None:
        """Charge the replication of ``count`` shared-list entries.

        Models Alg. 3's sharing of inverted lists (and Alg. 4's batch
        label sets): every other node receives the new entries at the
        next barrier.
        """
        if self.num_nodes > 1:
            self._broadcast_bytes += count * self._cost.entry_bytes


class FinalizeContext:
    """Per-vertex charging facilities for the post-loop pass."""

    __slots__ = (
        "graph",
        "num_nodes",
        "_node_of",
        "_units",
        "_cost",
        "_base_seconds",
        "_pending_units",
    )

    def __init__(
        self,
        graph: DiGraph,
        num_nodes: int,
        node_of: array,
        cost: CostModel,
        base_seconds: float,
    ):
        self.graph = graph
        self.num_nodes = num_nodes
        self._node_of = node_of
        self._units = [0] * num_nodes
        self._cost = cost
        self._base_seconds = base_seconds
        self._pending_units = 0

    def charge(self, vertex: int, units: int = 1) -> None:
        """Charge ``units`` to the node owning ``vertex``; re-checks the
        cut-off periodically, as :meth:`ComputeContext.charge` does."""
        self._units[self._node_of[vertex]] += units
        self._pending_units += units
        if self._pending_units >= 262_144:
            self._pending_units = 0
            self._cost.check_time(
                self._base_seconds + max(self._units) * self._cost.t_op
            )


class Cluster:
    """A simulated cluster of ``num_nodes`` computation nodes.

    Parameters
    ----------
    num_nodes:
        Number of computation nodes (the paper uses up to 32).
    cost_model:
        Converts work counts to simulated seconds; defaults to the MPI
        cluster model.
    partitioner:
        Vertex-to-node assignment; defaults to the paper's hash-by-id
        scheme.
    """

    def __init__(
        self,
        num_nodes: int = 32,
        cost_model: CostModel | None = None,
        partitioner: Partitioner | None = None,
    ):
        if num_nodes < 1:
            raise ValueError("num_nodes must be at least 1")
        if partitioner is not None and partitioner.num_nodes != num_nodes:
            raise ValueError("partitioner and cluster disagree on num_nodes")
        self.num_nodes = num_nodes
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.partitioner = (
            partitioner if partitioner is not None else HashPartitioner(num_nodes)
        )

    def run(
        self,
        graph: DiGraph,
        program: VertexProgram,
        max_supersteps: int = 100_000,
        stats: RunStats | None = None,
        trace: bool = False,
    ) -> RunStats:
        """Execute ``program`` on ``graph`` until no messages remain.

        When ``stats`` is given, accounting accumulates into it (used to
        chain the batches of DRL_b into one run) and the time-limit check
        covers the accumulated total.  ``trace=True`` records one
        :class:`~repro.pregel.metrics.SuperstepTrace` row per super-step.

        When a telemetry session is active (see :mod:`repro.telemetry`),
        the whole run is wrapped in a ``pregel.run`` span and every
        super-step emits a ``pregel.superstep`` event carrying the
        :class:`SuperstepTrace` fields, independent of ``trace``.
        """
        tracer = current_tracer()
        with tracer.span(
            "pregel.run",
            program=type(program).__name__,
            num_nodes=self.num_nodes,
            vertices=graph.num_vertices,
            edges=graph.num_edges,
        ) as span:
            cost = self.cost_model
            node_of = array(
                "q", (self.partitioner.node_of(v) for v in graph.vertices())
            )
            if stats is None:
                stats = RunStats(num_nodes=self.num_nodes)
                stats.per_node_units = [0] * self.num_nodes
            wall_start = time.perf_counter()
            simulated_start = stats.simulated_seconds

            ctx = ComputeContext(graph, self.num_nodes, node_of, cost)
            ctx._combine = program.combine_duplicates
            ctx._aggregators = program.aggregators()
            ctx._agg_current = {
                name: agg.initial for name, agg in ctx._aggregators.items()
            }
            program.setup(ctx)

            inbox: dict[int, list] = {}
            superstep = 0
            while True:
                superstep += 1
                if superstep > max_supersteps:
                    raise SuperstepLimitExceeded(
                        f"no termination after {max_supersteps} supersteps"
                    )
                ctx._begin_superstep(superstep)
                ctx._base_seconds = stats.simulated_seconds
                if superstep == 1:
                    active = graph.num_vertices
                    for v in graph.vertices():
                        ctx._at_vertex(v)
                        program.compute(ctx, v, _EMPTY)
                else:
                    active = len(inbox)
                    for v in sorted(inbox):
                        messages = inbox[v]
                        ctx._at_vertex(v)
                        ctx.charge(len(messages))
                        program.compute(ctx, v, messages)
                self._close_superstep(ctx, stats, active, trace, tracer)
                program.on_barrier(superstep)
                cost.check_time(stats.simulated_seconds)
                inbox = ctx._next_inbox
                if not inbox:
                    break

            fctx = FinalizeContext(
                graph, self.num_nodes, node_of, cost, stats.simulated_seconds
            )
            program.finalize(fctx)
            finalize_units = fctx._units
            if any(finalize_units):
                stats.supersteps += 1
                stats.compute_units += sum(finalize_units)
                stats.computation_seconds += max(finalize_units) * cost.t_op
                stats.barrier_seconds += cost.t_barrier
                for node, units in enumerate(finalize_units):
                    stats.per_node_units[node] += units
            cost.check_time(stats.simulated_seconds)
            stats.wall_seconds += time.perf_counter() - wall_start
            if tracer.enabled:
                span.set(supersteps=superstep)
                span.add_simulated(stats.simulated_seconds - simulated_start)
        return stats

    def _close_superstep(
        self,
        ctx: ComputeContext,
        stats: RunStats,
        active: int,
        trace: bool = False,
        tracer=None,
    ) -> None:
        cost = self.cost_model
        telemetry_on = tracer is not None and tracer.enabled
        if trace or telemetry_on:
            row = SuperstepTrace(
                superstep=ctx.superstep,
                active_vertices=active,
                compute_units=sum(ctx._units),
                max_node_units=max(ctx._units),
                remote_messages=ctx._remote_messages,
                remote_bytes=sum(ctx._recv_bytes),
                broadcast_bytes=ctx._broadcast_bytes,
            )
            if trace:
                stats.trace.append(row)
            if telemetry_on:
                tracer.event("pregel.superstep", **row.to_dict())
                metrics = current_metrics()
                metrics.counter("pregel.supersteps").inc()
                metrics.counter("pregel.remote_messages").inc(
                    ctx._remote_messages
                )
                metrics.histogram(
                    "pregel.active_vertices", ACTIVE_VERTEX_BUCKETS
                ).observe(active)
        stats.supersteps += 1
        stats.compute_units += sum(ctx._units)
        stats.local_messages += ctx._local_messages
        stats.remote_messages += ctx._remote_messages
        stats.remote_bytes += sum(ctx._recv_bytes)
        stats.broadcast_bytes += ctx._broadcast_bytes
        stats.computation_seconds += max(ctx._units) * cost.t_op
        stats.communication_seconds += (
            max(ctx._recv_bytes) + ctx._broadcast_bytes
        ) * cost.t_byte
        stats.barrier_seconds += cost.t_barrier
        for node, units in enumerate(ctx._units):
            stats.per_node_units[node] += units
        ctx._local_messages = 0
        ctx._remote_messages = 0
