"""The BSP cluster engine.

:class:`Cluster` simulates a vertex-centric system running on
``num_nodes`` computation nodes.  Vertices are assigned to nodes by a
:class:`~repro.graph.partition.Partitioner`; message routing, super-step
barriers, and termination follow Pregel semantics.  All work is counted
and converted to simulated seconds by a
:class:`~repro.pregel.cost_model.CostModel` (see that module for the
formula), which is what makes single-process runs report meaningful
distributed timings.

Fault tolerance (see :mod:`repro.faults` and ``docs/simulator.md``):
a cluster built with a :class:`~repro.faults.FaultPlan` injects node
crashes, stragglers, and transit message faults; ``checkpoint_interval``
enables Pregel-style super-step checkpointing so crashed runs recover
by restoring the last checkpoint, reassigning the dead node's partition
to the survivors, and replaying.  Recovery work is accounted separately
(``RunStats.recovery_seconds`` / ``checkpoint_seconds``) so the
committed work counters stay comparable to a fault-free run.
"""

from __future__ import annotations

import copy
import time
from abc import ABC, abstractmethod
from array import array

from repro.errors import ReproError
from repro.faults import FaultInjector, FaultPlan
from repro.graph.digraph import DiGraph
from repro.graph.partition import HashPartitioner, Partitioner, node_assignment
from repro.pregel.cost_model import CostModel
from repro.pregel.metrics import (
    NodeSlice,
    NodeTimeline,
    RunStats,
    SuperstepTrace,
    TimelineInterval,
)
from repro.pregel.vertex_program import VertexProgram
from repro.telemetry import ACTIVE_VERTEX_BUCKETS, current_metrics, current_tracer

_EMPTY: tuple = ()


class SuperstepLimitExceeded(ReproError):
    """The program did not terminate within ``max_supersteps``."""


class ComputeContext:
    """Facilities available to ``compute()`` during a super-step."""

    __slots__ = (
        "graph",
        "num_nodes",
        "superstep",
        "_node_of",
        "_current_node",
        "_current_vertex",
        "_next_inbox",
        "_units",
        "_recv_bytes",
        "_broadcast_bytes",
        "_local_messages",
        "_remote_messages",
        "_cost",
        "_base_seconds",
        "_pending_units",
        "_combine",
        "_sent_keys",
        "_aggregators",
        "_agg_current",
        "_agg_visible",
    )

    def __init__(
        self,
        graph: DiGraph,
        num_nodes: int,
        node_of: array,
        cost: CostModel,
    ):
        self.graph = graph
        self.num_nodes = num_nodes
        self.superstep = 0
        self._node_of = node_of
        self._current_node = 0
        self._current_vertex = 0
        self._next_inbox: dict[int, list] = {}
        self._units = [0] * num_nodes
        self._recv_bytes = [0] * num_nodes
        self._broadcast_bytes = 0
        self._local_messages = 0
        self._remote_messages = 0
        self._cost = cost
        self._base_seconds = 0.0
        self._pending_units = 0
        self._combine = False
        self._sent_keys: set = set()
        self._aggregators: dict = {}
        self._agg_current: dict = {}
        self._agg_visible: dict = {}

    # -- called by the engine ------------------------------------------
    def _begin_superstep(self, superstep: int) -> None:
        self.superstep = superstep
        self._next_inbox = {}
        self._units = [0] * self.num_nodes
        self._recv_bytes = [0] * self.num_nodes
        self._broadcast_bytes = 0
        if self._combine:
            self._sent_keys = set()
        if self._aggregators:
            self._agg_visible = dict(self._agg_current)
            self._agg_current = {
                name: agg.initial for name, agg in self._aggregators.items()
            }

    def _at_vertex(self, vertex: int) -> None:
        self._current_vertex = vertex
        self._current_node = self._node_of[vertex]

    # -- called by programs --------------------------------------------
    def node_of(self, vertex: int) -> int:
        """The computation node owning ``vertex``."""
        return self._node_of[vertex]

    def charge(self, units: int = 1) -> None:
        """Charge compute units to the current vertex's node.

        Periodically re-checks the simulated cut-off so that runs whose
        single super-step explodes (DRL⁻'s refinement floods) abort as
        soon as the provisional total crosses the limit, rather than
        after finishing the super-step.
        """
        self._units[self._current_node] += units
        self._pending_units += units
        if self._pending_units >= 262_144:
            self._pending_units = 0
            self._cost.check_time(
                self._base_seconds + max(self._units) * self._cost.t_op
            )

    def send(self, dst: int, payload) -> None:
        """Send ``payload`` to vertex ``dst`` (delivered next super-step)."""
        if self._combine:
            key = (self._current_node, dst, payload)
            if key in self._sent_keys:
                return  # combined away before reaching the network
            self._sent_keys.add(key)
        bucket = self._next_inbox.get(dst)
        if bucket is None:
            self._next_inbox[dst] = [payload]
        else:
            bucket.append(payload)
        dst_node = self._node_of[dst]
        if dst_node == self._current_node:
            self._local_messages += 1
        else:
            self._remote_messages += 1
            self._recv_bytes[dst_node] += self._cost.message_bytes

    def aggregate(self, name: str, value) -> None:
        """Contribute ``value`` to aggregator ``name`` this super-step.

        The combined result (including a tiny per-value broadcast
        charge) becomes visible via :meth:`aggregated` next super-step.
        """
        aggregator = self._aggregators[name]
        self._agg_current[name] = aggregator.combine(
            self._agg_current[name], value
        )
        if self.num_nodes > 1:
            self._broadcast_bytes += self._cost.entry_bytes

    def aggregated(self, name: str):
        """The previous super-step's combined value for ``name``.

        Before any contribution round completes, returns the
        aggregator's identity value.
        """
        aggregator = self._aggregators[name]
        return self._agg_visible.get(name, aggregator.initial)

    def publish_entries(self, count: int = 1) -> None:
        """Charge the replication of ``count`` shared-list entries.

        Models Alg. 3's sharing of inverted lists (and Alg. 4's batch
        label sets): every other node receives the new entries at the
        next barrier.
        """
        if self.num_nodes > 1:
            self._broadcast_bytes += count * self._cost.entry_bytes


class FinalizeContext:
    """Per-vertex charging facilities for the post-loop pass."""

    __slots__ = (
        "graph",
        "num_nodes",
        "_node_of",
        "_units",
        "_cost",
        "_base_seconds",
        "_pending_units",
    )

    def __init__(
        self,
        graph: DiGraph,
        num_nodes: int,
        node_of: array,
        cost: CostModel,
        base_seconds: float,
    ):
        self.graph = graph
        self.num_nodes = num_nodes
        self._node_of = node_of
        self._units = [0] * num_nodes
        self._cost = cost
        self._base_seconds = base_seconds
        self._pending_units = 0

    def charge(self, vertex: int, units: int = 1) -> None:
        """Charge ``units`` to the node owning ``vertex``; re-checks the
        cut-off periodically, as :meth:`ComputeContext.charge` does."""
        self._units[self._node_of[vertex]] += units
        self._pending_units += units
        if self._pending_units >= 262_144:
            self._pending_units = 0
            self._cost.check_time(
                self._base_seconds + max(self._units) * self._cost.t_op
            )


class _Checkpoint:
    """A consistent barrier snapshot: program state + pending messages."""

    __slots__ = ("superstep", "program_state", "inbox", "agg_current", "bytes")

    def __init__(self, superstep, program_state, inbox, agg_current, nbytes):
        self.superstep = superstep
        self.program_state = program_state
        self.inbox = inbox
        self.agg_current = agg_current
        self.bytes = nbytes


def _estimate_entries(obj) -> int:
    """Rough entry count of a checkpointed state tree (for byte cost).

    Counts leaf values inside the containers vertex programs actually
    use; shared input graphs are excluded (they are not checkpointed —
    every node re-reads its partition from the original input).
    """
    if isinstance(obj, DiGraph):
        return 0
    if isinstance(obj, (int, float, bool)) or obj is None:
        return 1
    if isinstance(obj, array):
        return len(obj)
    if isinstance(obj, (bytes, bytearray, str)):
        return max(1, len(obj) // 8)
    if isinstance(obj, dict):
        return sum(
            _estimate_entries(k) + _estimate_entries(v) for k, v in obj.items()
        )
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(_estimate_entries(item) for item in obj)
    if isinstance(obj, VertexProgram):
        return _estimate_entries(vars(obj))
    return 1


def _account_superstep(
    cost: CostModel,
    num_nodes: int,
    ctx: ComputeContext,
    stats: RunStats,
    active: int,
    trace: bool = False,
    tracer=None,
    slowdown: list[float] | None = None,
    replay: bool = False,
    injector: FaultInjector | None = None,
    node_slices: bool = True,
) -> None:
    """Account one super-step's barrier (shared by both engines).

    Both engines feed the same per-node work counters through this
    function, which is what makes their ``RunStats`` — and therefore the
    simulated clock — identical by construction.  ``replay=True`` marks
    a discarded attempt or a post-recovery replay of an already-committed
    super-step: its full cost lands in ``recovery_seconds`` and no work
    counter or trace row is touched (the committed pass already recorded
    them).  ``node_slices=False`` suppresses the per-logical-node
    :class:`NodeSlice` emission — the multiprocessing engine records
    measured per-worker slices instead.
    """
    units = ctx._units
    if slowdown is None:
        comp_seconds = max(units) * cost.t_op
    else:
        comp_seconds = (
            max(u * s for u, s in zip(units, slowdown)) * cost.t_op
        )
    comm_bytes = max(ctx._recv_bytes) + ctx._broadcast_bytes
    lost = duplicated = 0
    if injector is not None:
        lost, duplicated = injector.transit_faults(ctx._remote_messages)
        # Reliable transport repairs both: retransmissions put the
        # same bytes on the wire again; delivery is unaffected.
        comm_bytes += (lost + duplicated) * cost.message_bytes
    comm_seconds = comm_bytes * cost.t_byte
    telemetry_on = tracer is not None and tracer.enabled
    if telemetry_on and (lost or duplicated):
        tracer.event(
            "pregel.fault",
            kind="transit",
            superstep=ctx.superstep,
            lost=lost,
            duplicated=duplicated,
        )
    stats.messages_lost += lost
    stats.messages_duplicated += duplicated
    timeline = stats.node_timeline
    if replay:
        seconds = comp_seconds + comm_seconds + cost.t_barrier
        stats.recovery_seconds += seconds
        if timeline is not None:
            timeline.intervals.append(
                TimelineInterval("replay", ctx.superstep, seconds)
            )
        ctx._local_messages = 0
        ctx._remote_messages = 0
        return
    if node_slices and (timeline is not None or telemetry_on):
        # Per-node breakdown.  BSP phases run in sequence, so a
        # node's barrier wait is the slack against the slowest node
        # in each phase; retransmission cost (charged to the
        # super-step as a whole) lands in the wait term too.
        recv = ctx._recv_bytes
        bcast_bytes = ctx._broadcast_bytes
        for node in range(num_nodes):
            factor = 1.0 if slowdown is None else slowdown[node]
            node_comp = units[node] * factor * cost.t_op
            node_comm = (recv[node] + bcast_bytes) * cost.t_byte
            piece = NodeSlice(
                superstep=ctx.superstep,
                node=node,
                units=units[node],
                compute_seconds=node_comp,
                comm_seconds=node_comm,
                barrier_wait_seconds=max(
                    0.0,
                    (comp_seconds - node_comp) + (comm_seconds - node_comm),
                ),
                barrier_seconds=cost.t_barrier,
                recv_bytes=recv[node],
                slowdown=factor,
            )
            if timeline is not None:
                timeline.slices.append(piece)
            if telemetry_on:
                tracer.event("pregel.node", **piece.to_dict())
    if trace or telemetry_on:
        row = SuperstepTrace(
            superstep=ctx.superstep,
            active_vertices=active,
            compute_units=sum(units),
            max_node_units=max(units),
            remote_messages=ctx._remote_messages,
            remote_bytes=sum(ctx._recv_bytes),
            broadcast_bytes=ctx._broadcast_bytes,
        )
        if trace:
            stats.trace.append(row)
        if telemetry_on:
            tracer.event("pregel.superstep", **row.to_dict())
            metrics = current_metrics()
            metrics.counter("pregel.supersteps").inc()
            metrics.counter("pregel.remote_messages").inc(
                ctx._remote_messages
            )
            metrics.histogram(
                "pregel.active_vertices", ACTIVE_VERTEX_BUCKETS
            ).observe(active)
    stats.supersteps += 1
    stats.compute_units += sum(units)
    stats.local_messages += ctx._local_messages
    stats.remote_messages += ctx._remote_messages
    stats.remote_bytes += sum(ctx._recv_bytes)
    stats.broadcast_bytes += ctx._broadcast_bytes
    stats.computation_seconds += comp_seconds
    stats.communication_seconds += comm_seconds
    stats.barrier_seconds += cost.t_barrier
    for node, node_units in enumerate(units):
        stats.per_node_units[node] += node_units
    ctx._local_messages = 0
    ctx._remote_messages = 0


def _account_finalize(
    cost: CostModel,
    num_nodes: int,
    stats: RunStats,
    finalize_units: list[int],
    superstep: int,
    slowdown: list[float] | None = None,
    tracer=None,
    node_slices: bool = True,
) -> None:
    """Account the post-loop finalize pass as one extra super-step."""
    if not any(finalize_units):
        return
    stats.supersteps += 1
    stats.compute_units += sum(finalize_units)
    if slowdown is None:
        finalize_seconds = max(finalize_units) * cost.t_op
    else:
        finalize_seconds = (
            max(u * s for u, s in zip(finalize_units, slowdown))
            * cost.t_op
        )
    stats.computation_seconds += finalize_seconds
    stats.barrier_seconds += cost.t_barrier
    for node, units in enumerate(finalize_units):
        stats.per_node_units[node] += units
    timeline = stats.node_timeline
    telemetry_on = tracer is not None and tracer.enabled
    if node_slices and (timeline is not None or telemetry_on):
        for node in range(num_nodes):
            factor = 1.0 if slowdown is None else slowdown[node]
            node_comp = finalize_units[node] * factor * cost.t_op
            piece = NodeSlice(
                superstep=superstep + 1,
                node=node,
                units=finalize_units[node],
                compute_seconds=node_comp,
                comm_seconds=0.0,
                barrier_wait_seconds=max(
                    0.0, finalize_seconds - node_comp
                ),
                barrier_seconds=cost.t_barrier,
                recv_bytes=0,
                slowdown=factor,
            )
            if timeline is not None:
                timeline.slices.append(piece)
            if telemetry_on:
                tracer.event("pregel.node", **piece.to_dict())


class Engine(ABC):
    """An execution strategy for the BSP contract behind :class:`Cluster`.

    The engine owns the mechanics — compute scheduling, message routing,
    the super-step barrier, and checkpoint hooks — while the cluster
    owns the configuration (node count, partitioner, cost model, fault
    plan).  Two implementations ship:

    - :class:`SimulatorEngine` — the deterministic single-process
      simulator with the charged cost model and fault injection; and
    - :class:`repro.pregel.mp.MultiprocessEngine` — real parallelism
      across worker processes over a shared-memory CSR, producing the
      identical labels and the identical simulated-clock accounting
      while the wall clock actually drops with cores.
    """

    #: Short name used by ``--engine`` and telemetry.
    name: str = "?"
    #: Whether the engine honours fault plans and checkpoint intervals.
    supports_faults: bool = False

    @abstractmethod
    def run(
        self,
        cluster: "Cluster",
        graph: DiGraph,
        program: VertexProgram,
        max_supersteps: int = 100_000,
        stats: RunStats | None = None,
        trace: bool = False,
        node_timeline: bool = False,
    ) -> RunStats:
        """Execute ``program`` on ``graph`` under ``cluster``'s config."""


class SimulatorEngine(Engine):
    """The deterministic single-process simulator (the default engine).

    Runs every vertex in one process, charging all work through the
    cluster's :class:`CostModel`; supports fault injection, super-step
    checkpointing, and crash recovery.  Wall-clock time is irrelevant
    here — the simulated clock is the result.
    """

    name = "sim"
    supports_faults = True

    def run(
        self,
        cluster: "Cluster",
        graph: DiGraph,
        program: VertexProgram,
        max_supersteps: int = 100_000,
        stats: RunStats | None = None,
        trace: bool = False,
        node_timeline: bool = False,
    ) -> RunStats:
        tracer = current_tracer()
        with tracer.span(
            "pregel.run",
            program=type(program).__name__,
            num_nodes=cluster.num_nodes,
            vertices=graph.num_vertices,
            edges=graph.num_edges,
            engine=self.name,
        ) as span:
            cost = cluster.cost_model
            injector = cluster._injector
            node_of = node_assignment(cluster.partitioner, graph.num_vertices)
            if injector is not None and injector.dead:
                # Nodes lost in an earlier run of this cluster stay dead.
                injector.reassign(node_of, ())
            slowdown = (
                cluster.faults.slowdowns(cluster.num_nodes)
                if cluster.faults is not None and cluster.faults.stragglers
                else None
            )
            if stats is None:
                stats = RunStats(num_nodes=cluster.num_nodes)
                stats.per_node_units = [0] * cluster.num_nodes
            if node_timeline and stats.node_timeline is None:
                stats.node_timeline = NodeTimeline(num_nodes=cluster.num_nodes)
            wall_start = time.perf_counter()
            simulated_start = stats.simulated_seconds

            ctx = ComputeContext(graph, cluster.num_nodes, node_of, cost)
            ctx._combine = program.combine_duplicates
            ctx._aggregators = program.aggregators()
            ctx._agg_current = {
                name: agg.initial for name, agg in ctx._aggregators.items()
            }
            program.setup(ctx)

            # Super-step 0 snapshot: recovery without an on-disk
            # checkpoint restarts from re-initialized state, so this
            # snapshot is free (bytes=0) — nothing crossed the network.
            checkpoint: _Checkpoint | None = None
            interval = cluster.checkpoint_interval
            if interval is not None or (
                injector is not None and injector.has_pending
            ):
                checkpoint = _Checkpoint(
                    0, program.snapshot(), {}, dict(ctx._agg_current), 0
                )

            inbox: dict[int, list] = {}
            superstep = 0
            committed = 0
            while True:
                superstep += 1
                if superstep > max_supersteps:
                    raise SuperstepLimitExceeded(
                        f"no termination after {max_supersteps} supersteps"
                    )
                ctx._begin_superstep(superstep)
                ctx._base_seconds = stats.simulated_seconds
                if superstep == 1:
                    active = graph.num_vertices
                    for v in graph.vertices():
                        ctx._at_vertex(v)
                        program.compute(ctx, v, _EMPTY)
                else:
                    active = len(inbox)
                    for v in sorted(inbox):
                        messages = inbox[v]
                        ctx._at_vertex(v)
                        ctx.charge(len(messages))
                        program.compute(ctx, v, messages)
                fired = (
                    injector.crashes_at(superstep)
                    if injector is not None
                    else ()
                )
                if fired and checkpoint is not None:
                    # The barrier never commits: the attempt is lost work.
                    _account_superstep(
                        cost, cluster.num_nodes, ctx, stats, active,
                        False, tracer,
                        slowdown=slowdown, replay=True, injector=injector,
                    )
                    inbox = self._recover(
                        cluster, ctx, stats, checkpoint, injector, node_of,
                        fired, superstep, program, tracer,
                    )
                    superstep = checkpoint.superstep
                    cost.check_time(stats.simulated_seconds)
                    continue
                replay = superstep <= committed
                _account_superstep(
                    cost, cluster.num_nodes, ctx, stats, active,
                    trace, tracer,
                    slowdown=slowdown, replay=replay, injector=injector,
                )
                committed = max(committed, superstep)
                program.on_barrier(superstep)
                if (
                    checkpoint is not None
                    and interval is not None
                    and superstep % interval == 0
                    and superstep > checkpoint.superstep
                ):
                    checkpoint = self._take_checkpoint(
                        cluster, superstep, program, ctx, stats, injector,
                        tracer,
                    )
                cost.check_time(stats.simulated_seconds)
                inbox = ctx._next_inbox
                if not inbox:
                    break

            fctx = FinalizeContext(
                graph, cluster.num_nodes, node_of, cost,
                stats.simulated_seconds,
            )
            program.finalize(fctx)
            _account_finalize(
                cost, cluster.num_nodes, stats, fctx._units, superstep,
                slowdown=slowdown, tracer=tracer,
            )
            cost.check_time(stats.simulated_seconds)
            stats.wall_seconds += time.perf_counter() - wall_start
            if tracer.enabled:
                span.set(supersteps=superstep)
                span.add_simulated(stats.simulated_seconds - simulated_start)
        return stats

    def _take_checkpoint(
        self,
        cluster: "Cluster",
        superstep: int,
        program: VertexProgram,
        ctx: ComputeContext,
        stats: RunStats,
        injector: FaultInjector | None,
        tracer,
    ) -> _Checkpoint:
        """Snapshot barrier state and charge the serialization bytes."""
        cost = cluster.cost_model
        state = program.snapshot()
        pending = ctx._next_inbox
        messages = sum(len(bucket) for bucket in pending.values())
        nbytes = (
            _estimate_entries(state) * cost.entry_bytes
            + messages * cost.message_bytes
        )
        alive = (
            len(injector.survivors) if injector is not None else cluster.num_nodes
        )
        seconds = (nbytes / alive) * cost.t_checkpoint_byte
        stats.checkpoints += 1
        stats.checkpoint_seconds += seconds
        if stats.node_timeline is not None:
            stats.node_timeline.intervals.append(
                TimelineInterval("checkpoint", superstep, seconds)
            )
        if tracer is not None and tracer.enabled:
            tracer.event(
                "pregel.checkpoint",
                superstep=superstep,
                bytes=nbytes,
                pending_messages=messages,
                seconds=seconds,
            )
            current_metrics().counter("pregel.checkpoints").inc()
        return _Checkpoint(
            superstep,
            state,
            copy.deepcopy(pending),
            copy.deepcopy(ctx._agg_current),
            nbytes,
        )

    def _recover(
        self,
        cluster: "Cluster",
        ctx: ComputeContext,
        stats: RunStats,
        checkpoint: _Checkpoint,
        injector: FaultInjector,
        node_of: array,
        fired: tuple[int, ...],
        superstep: int,
        program: VertexProgram,
        tracer,
    ) -> dict[int, list]:
        """Fail over after a crash: reassign, restore, return the inbox.

        Charges failure detection plus the survivors' parallel read of
        the last checkpoint (every surviving node re-reads the state of
        its — possibly grown — partition from stable storage), then
        rolls program, aggregator, and inbox state back to the
        checkpointed barrier.
        """
        cost = cluster.cost_model
        stats.crashes += len(fired)
        moved = injector.reassign(node_of, fired)
        alive = len(injector.survivors)
        seconds = (
            cost.failover_seconds
            + (checkpoint.bytes / alive) * cost.t_checkpoint_byte
        )
        stats.recovery_seconds += seconds
        if stats.node_timeline is not None:
            stats.node_timeline.intervals.append(
                TimelineInterval("recovery", superstep, seconds, tuple(fired))
            )
        program.restore(checkpoint.program_state)
        ctx._agg_current = copy.deepcopy(checkpoint.agg_current)
        ctx._agg_visible = {}
        if tracer is not None and tracer.enabled:
            for node in fired:
                tracer.event(
                    "pregel.fault",
                    kind="crash",
                    node=node,
                    superstep=superstep,
                )
            tracer.event(
                "pregel.recovery",
                superstep=superstep,
                restored_to=checkpoint.superstep,
                nodes=list(fired),
                reassigned_vertices=moved,
                seconds=seconds,
            )
            metrics = current_metrics()
            metrics.counter("pregel.crashes").inc(len(fired))
            metrics.counter("pregel.recoveries").inc()
        return copy.deepcopy(checkpoint.inbox)


#: Engine names accepted by :func:`resolve_engine` and ``--engine``.
ENGINE_NAMES = ("sim", "mp")


def resolve_engine(engine: "str | Engine", workers: int | None = None) -> Engine:
    """Resolve an engine selector (name or instance) to an :class:`Engine`.

    ``workers`` only applies to the multiprocessing engine (the
    simulator has no worker processes) and is ignored when ``engine``
    is already an instance.
    """
    if isinstance(engine, Engine):
        return engine
    if engine == "sim":
        return SimulatorEngine()
    if engine == "mp":
        from repro.pregel.mp import MultiprocessEngine

        return MultiprocessEngine(workers=workers)
    raise ValueError(
        f"unknown engine {engine!r}; choose one of {', '.join(ENGINE_NAMES)}"
    )


class Cluster:
    """A cluster of ``num_nodes`` computation nodes.

    Parameters
    ----------
    num_nodes:
        Number of computation nodes (the paper uses up to 32).
    cost_model:
        Converts work counts to simulated seconds; defaults to the MPI
        cluster model.
    partitioner:
        Vertex-to-node assignment; defaults to the paper's hash-by-id
        scheme.
    faults:
        Optional :class:`~repro.faults.FaultPlan` injected into every
        run of this cluster.  Crash events fire once per cluster
        lifetime and dead nodes stay dead across chained runs (DRL_b's
        batches), exactly as on real hardware.  Simulator engine only.
    checkpoint_interval:
        Snapshot vertex state, pending messages, and aggregators every
        this many super-steps, charging the serialization bytes through
        the cost model.  Required for crash recovery to resume anywhere
        other than super-step 0.  Simulator engine only.
    engine:
        Execution engine: ``"sim"`` (default) for the deterministic
        single-process simulator, ``"mp"`` for real parallelism across
        worker processes (:class:`repro.pregel.mp.MultiprocessEngine`),
        or any :class:`Engine` instance.
    workers:
        Worker-process count for ``engine="mp"`` (defaults to the
        machine's core count); ignored by the simulator.
    """

    def __init__(
        self,
        num_nodes: int = 32,
        cost_model: CostModel | None = None,
        partitioner: Partitioner | None = None,
        faults: FaultPlan | None = None,
        checkpoint_interval: int | None = None,
        engine: "str | Engine" = "sim",
        workers: int | None = None,
    ):
        if num_nodes < 1:
            raise ValueError("num_nodes must be at least 1")
        if partitioner is not None and partitioner.num_nodes != num_nodes:
            raise ValueError("partitioner and cluster disagree on num_nodes")
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be at least 1")
        self.engine = resolve_engine(engine, workers)
        if not self.engine.supports_faults and (
            faults is not None or checkpoint_interval is not None
        ):
            raise ReproError(
                f"the {self.engine.name!r} engine does not support fault "
                "injection or checkpointing; use engine='sim'"
            )
        self.num_nodes = num_nodes
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.partitioner = (
            partitioner if partitioner is not None else HashPartitioner(num_nodes)
        )
        self.faults = faults
        self.checkpoint_interval = checkpoint_interval
        self._injector = (
            FaultInjector(faults, num_nodes) if faults is not None else None
        )

    def run(
        self,
        graph: DiGraph,
        program: VertexProgram,
        max_supersteps: int = 100_000,
        stats: RunStats | None = None,
        trace: bool = False,
        node_timeline: bool = False,
    ) -> RunStats:
        """Execute ``program`` on ``graph`` until no messages remain.

        When ``stats`` is given, accounting accumulates into it (used to
        chain the batches of DRL_b into one run) and the time-limit check
        covers the accumulated total.  ``trace=True`` records one
        :class:`~repro.pregel.metrics.SuperstepTrace` row per super-step.

        ``node_timeline=True`` additionally records one
        :class:`~repro.pregel.metrics.NodeSlice` per node per committed
        super-step (plus recovery/replay/checkpoint intervals) into
        ``stats.node_timeline`` — the input of
        :func:`repro.profiling.analyze_skew`.  Off by default: the flag
        costs nothing when disabled and no telemetry session is active.
        Under the multiprocessing engine the slices carry *measured*
        per-worker wall-clock seconds instead of simulated per-node ones.

        With a fault plan, crashed super-steps are discarded and
        replayed from the last checkpoint; discarded attempts and
        replays charge ``stats.recovery_seconds`` only, so the work
        counters and trace rows describe committed progress exactly
        once — identical to a fault-free run of the same program.

        When a telemetry session is active (see :mod:`repro.telemetry`),
        the whole run is wrapped in a ``pregel.run`` span and every
        super-step emits a ``pregel.superstep`` event carrying the
        :class:`SuperstepTrace` fields plus one ``pregel.node`` event
        per node carrying the :class:`NodeSlice` fields, independent of
        ``trace``/``node_timeline``.  Faults additionally emit
        ``pregel.fault``, ``pregel.recovery``, and ``pregel.checkpoint``
        events.
        """
        return self.engine.run(
            self,
            graph,
            program,
            max_supersteps=max_supersteps,
            stats=stats,
            trace=trace,
            node_timeline=node_timeline,
        )
