"""Pregel aggregators: global reductions across a super-step.

Each vertex may contribute values during super-step *s*; the combined
result becomes visible to every vertex at super-step *s + 1* (after the
barrier), exactly as in Pregel.  Aggregators let programs coordinate —
convergence detection, global extrema, frontier sizes — without
point-to-point messages.
"""

from __future__ import annotations

from typing import Callable, Generic, TypeVar

T = TypeVar("T")


class Aggregator(Generic[T]):
    """A commutative/associative reduction with an identity element.

    Parameters
    ----------
    initial:
        Identity value (also the result of a step with no contributions).
    combine:
        Binary associative combiner.
    """

    def __init__(self, initial: T, combine: Callable[[T, T], T]):
        self.initial = initial
        self.combine = combine


def sum_aggregator() -> Aggregator[int]:
    """Sums integer contributions."""
    return Aggregator(0, lambda a, b: a + b)


def min_aggregator() -> Aggregator[float]:
    """Minimum of contributions (identity: +inf)."""
    return Aggregator(float("inf"), min)


def max_aggregator() -> Aggregator[float]:
    """Maximum of contributions (identity: -inf)."""
    return Aggregator(float("-inf"), max)


def any_aggregator() -> Aggregator[bool]:
    """Logical OR of boolean contributions."""
    return Aggregator(False, lambda a, b: a or b)
