"""Run statistics collected by the cluster engine."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class SuperstepTrace:
    """Per-super-step accounting row (collected when tracing is on)."""

    superstep: int
    active_vertices: int
    compute_units: int
    max_node_units: int
    remote_messages: int
    remote_bytes: int
    broadcast_bytes: int

    def to_dict(self) -> dict:
        """Plain-dict view (telemetry event payload, JSONL export)."""
        return asdict(self)


@dataclass
class RunStats:
    """Work and cost accounting for one cluster run.

    ``computation_seconds`` and ``communication_seconds`` are the two
    bar segments of the paper's Fig. 5; their sum (plus barriers) is the
    *index time* reported in Table VI and Figs. 6-9.

    Fault accounting (see :mod:`repro.faults`): the work counters
    (``compute_units``, messages, bytes, ``trace``) describe *committed*
    progress only, so they match a fault-free run of the same program.
    Everything a fault costs on top — discarded super-step attempts,
    checkpoint replay, failover detection, checkpoint restore I/O — is
    isolated in ``recovery_seconds``; periodic checkpoint writes land in
    ``checkpoint_seconds``.  Both are part of ``simulated_seconds``.
    """

    num_nodes: int = 1
    supersteps: int = 0
    compute_units: int = 0
    local_messages: int = 0
    remote_messages: int = 0
    remote_bytes: int = 0
    broadcast_bytes: int = 0
    computation_seconds: float = 0.0
    communication_seconds: float = 0.0
    barrier_seconds: float = 0.0
    checkpoint_seconds: float = 0.0
    recovery_seconds: float = 0.0
    checkpoints: int = 0
    crashes: int = 0
    messages_lost: int = 0
    messages_duplicated: int = 0
    per_node_units: list[int] = field(default_factory=list)
    wall_seconds: float = 0.0
    trace: list[SuperstepTrace] = field(default_factory=list)

    @property
    def simulated_seconds(self) -> float:
        """Total simulated time, fault overhead included (computation +
        communication + barriers + checkpointing + recovery)."""
        return (
            self.computation_seconds
            + self.communication_seconds
            + self.barrier_seconds
            + self.checkpoint_seconds
            + self.recovery_seconds
        )

    @property
    def total_messages(self) -> int:
        """All messages, local and remote."""
        return self.local_messages + self.remote_messages

    def merge(self, other: "RunStats") -> "RunStats":
        """Accumulate another phase's stats into this one (in place).

        ``num_nodes`` must agree — merging runs from differently sized
        clusters would make ``per_node_units`` and the max-per-node time
        formula meaningless.  A pristine accumulator (no work recorded
        yet) adopts ``other``'s node count instead.  Trace rows are
        concatenated in phase order.
        """
        if other.num_nodes != self.num_nodes:
            if self.supersteps == 0 and not self.per_node_units:
                self.num_nodes = other.num_nodes
            else:
                raise ValueError(
                    f"cannot merge stats from a {other.num_nodes}-node run "
                    f"into a {self.num_nodes}-node accumulator"
                )
        self.supersteps += other.supersteps
        self.compute_units += other.compute_units
        self.local_messages += other.local_messages
        self.remote_messages += other.remote_messages
        self.remote_bytes += other.remote_bytes
        self.broadcast_bytes += other.broadcast_bytes
        self.computation_seconds += other.computation_seconds
        self.communication_seconds += other.communication_seconds
        self.barrier_seconds += other.barrier_seconds
        self.checkpoint_seconds += other.checkpoint_seconds
        self.recovery_seconds += other.recovery_seconds
        self.checkpoints += other.checkpoints
        self.crashes += other.crashes
        self.messages_lost += other.messages_lost
        self.messages_duplicated += other.messages_duplicated
        self.wall_seconds += other.wall_seconds
        if len(self.per_node_units) < len(other.per_node_units):
            self.per_node_units.extend(
                [0] * (len(other.per_node_units) - len(self.per_node_units))
            )
        for node, units in enumerate(other.per_node_units):
            self.per_node_units[node] += units
        self.trace.extend(other.trace)
        return self

    def summary(self) -> str:
        """One-line human-readable summary."""
        text = (
            f"{self.simulated_seconds:.3f}s simulated "
            f"({self.computation_seconds:.3f}s comp, "
            f"{self.communication_seconds:.3f}s comm, "
            f"{self.barrier_seconds:.3f}s barrier) over "
            f"{self.supersteps} supersteps on {self.num_nodes} nodes; "
            f"{self.compute_units} units, "
            f"{self.remote_messages}/{self.total_messages} remote msgs"
        )
        if self.crashes or self.checkpoints:
            text += (
                f"; {self.crashes} crash(es), {self.checkpoints} "
                f"checkpoint(s), {self.recovery_seconds:.3f}s recovery, "
                f"{self.checkpoint_seconds:.3f}s checkpointing"
            )
        return text
