"""Run statistics collected by the cluster engine."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class NodeSlice:
    """One node's share of one super-step (collected when the per-node
    timeline is on).

    BSP phases are sequential — compute, then communicate, then the
    barrier — so every node's slice spans the same interval and the
    identity ``compute + comm + barrier_wait + barrier`` is constant
    across the nodes of a super-step.  ``barrier_wait_seconds`` is the
    idle time spent waiting for slower nodes in both phases (plus any
    retransmission cost charged to the super-step as a whole), which is
    what the skew analyzer attributes to stragglers and hot partitions.
    """

    superstep: int
    node: int
    units: int
    compute_seconds: float
    comm_seconds: float
    barrier_wait_seconds: float
    barrier_seconds: float
    recv_bytes: int
    slowdown: float = 1.0

    @property
    def busy_seconds(self) -> float:
        """Time this node actually worked (compute + communication)."""
        return self.compute_seconds + self.comm_seconds

    @property
    def total_seconds(self) -> float:
        """Wall span of the super-step on this node (same for all nodes)."""
        return (
            self.compute_seconds
            + self.comm_seconds
            + self.barrier_wait_seconds
            + self.barrier_seconds
        )

    def to_dict(self) -> dict:
        """Plain-dict view (``pregel.node`` telemetry event payload)."""
        return asdict(self)


@dataclass(frozen=True)
class TimelineInterval:
    """A non-super-step interval on the cluster timeline.

    ``kind`` is ``"recovery"`` (post-crash failover + checkpoint
    restore), ``"replay"`` (a discarded or re-executed super-step
    attempt), or ``"checkpoint"`` (a periodic snapshot write).
    """

    kind: str
    superstep: int
    seconds: float
    nodes: tuple[int, ...] = ()

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class NodeTimeline:
    """Per-node, per-super-step timeline of one (possibly chained) run.

    ``slices`` hold one :class:`NodeSlice` per node per committed
    super-step, in execution order; ``intervals`` hold the fault
    machinery's cost (recovery, replay, checkpointing).  Chained runs
    (DRL_b's batches) append to the same timeline, so super-step numbers
    restart; :meth:`supersteps` groups slices by execution occurrence,
    not by number.
    """

    num_nodes: int
    slices: list[NodeSlice] = field(default_factory=list)
    intervals: list[TimelineInterval] = field(default_factory=list)

    def supersteps(self) -> list[list[NodeSlice]]:
        """Slices grouped per super-step occurrence, execution order."""
        groups: list[list[NodeSlice]] = []
        current: list[NodeSlice] = []
        for piece in self.slices:
            if current and piece.node <= current[-1].node:
                groups.append(current)
                current = []
            current.append(piece)
        if current:
            groups.append(current)
        return groups

    def node_totals(self) -> list[dict]:
        """Aggregate per-node totals across the whole timeline.

        One dict per node: ``units``, ``compute_seconds``,
        ``comm_seconds``, ``barrier_wait_seconds``, ``barrier_seconds``,
        ``busy_seconds``, ``total_seconds``.
        """
        totals = [
            {
                "node": node,
                "units": 0,
                "compute_seconds": 0.0,
                "comm_seconds": 0.0,
                "barrier_wait_seconds": 0.0,
                "barrier_seconds": 0.0,
                "busy_seconds": 0.0,
                "total_seconds": 0.0,
            }
            for node in range(self.num_nodes)
        ]
        for piece in self.slices:
            entry = totals[piece.node]
            entry["units"] += piece.units
            entry["compute_seconds"] += piece.compute_seconds
            entry["comm_seconds"] += piece.comm_seconds
            entry["barrier_wait_seconds"] += piece.barrier_wait_seconds
            entry["barrier_seconds"] += piece.barrier_seconds
            entry["busy_seconds"] += piece.busy_seconds
            entry["total_seconds"] += piece.total_seconds
        return totals

    def extend(self, other: "NodeTimeline") -> None:
        """Append another timeline's slices and intervals (phase order)."""
        if other.num_nodes > self.num_nodes:
            self.num_nodes = other.num_nodes
        self.slices.extend(other.slices)
        self.intervals.extend(other.intervals)


@dataclass(frozen=True)
class SuperstepTrace:
    """Per-super-step accounting row (collected when tracing is on)."""

    superstep: int
    active_vertices: int
    compute_units: int
    max_node_units: int
    remote_messages: int
    remote_bytes: int
    broadcast_bytes: int

    def to_dict(self) -> dict:
        """Plain-dict view (telemetry event payload, JSONL export)."""
        return asdict(self)


@dataclass
class RunStats:
    """Work and cost accounting for one cluster run.

    ``computation_seconds`` and ``communication_seconds`` are the two
    bar segments of the paper's Fig. 5; their sum (plus barriers) is the
    *index time* reported in Table VI and Figs. 6-9.

    Fault accounting (see :mod:`repro.faults`): the work counters
    (``compute_units``, messages, bytes, ``trace``) describe *committed*
    progress only, so they match a fault-free run of the same program.
    Everything a fault costs on top — discarded super-step attempts,
    checkpoint replay, failover detection, checkpoint restore I/O — is
    isolated in ``recovery_seconds``; periodic checkpoint writes land in
    ``checkpoint_seconds``.  Both are part of ``simulated_seconds``.

    ``node_timeline`` is the opt-in per-node breakdown (see
    :class:`NodeTimeline`): every committed super-step contributes one
    :class:`NodeSlice` per node, and the fault machinery contributes
    recovery/replay/checkpoint intervals.  Populated when the engine
    runs with ``node_timeline=True``; ``None`` otherwise.
    """

    num_nodes: int = 1
    supersteps: int = 0
    compute_units: int = 0
    local_messages: int = 0
    remote_messages: int = 0
    remote_bytes: int = 0
    broadcast_bytes: int = 0
    computation_seconds: float = 0.0
    communication_seconds: float = 0.0
    barrier_seconds: float = 0.0
    checkpoint_seconds: float = 0.0
    recovery_seconds: float = 0.0
    checkpoints: int = 0
    crashes: int = 0
    messages_lost: int = 0
    messages_duplicated: int = 0
    per_node_units: list[int] = field(default_factory=list)
    wall_seconds: float = 0.0
    trace: list[SuperstepTrace] = field(default_factory=list)
    node_timeline: NodeTimeline | None = None

    @property
    def simulated_seconds(self) -> float:
        """Total simulated time, fault overhead included (computation +
        communication + barriers + checkpointing + recovery)."""
        return (
            self.computation_seconds
            + self.communication_seconds
            + self.barrier_seconds
            + self.checkpoint_seconds
            + self.recovery_seconds
        )

    @property
    def total_messages(self) -> int:
        """All messages, local and remote."""
        return self.local_messages + self.remote_messages

    def merge(self, other: "RunStats") -> "RunStats":
        """Accumulate another phase's stats into this one (in place).

        ``num_nodes`` must agree — merging runs from differently sized
        clusters would make ``per_node_units`` and the max-per-node time
        formula meaningless.  A pristine accumulator (no work recorded
        yet) adopts ``other``'s node count instead.  Trace rows are
        concatenated in phase order.
        """
        if other.num_nodes != self.num_nodes:
            if self.supersteps == 0 and not self.per_node_units:
                self.num_nodes = other.num_nodes
            else:
                raise ValueError(
                    f"cannot merge stats from a {other.num_nodes}-node run "
                    f"into a {self.num_nodes}-node accumulator"
                )
        self.supersteps += other.supersteps
        self.compute_units += other.compute_units
        self.local_messages += other.local_messages
        self.remote_messages += other.remote_messages
        self.remote_bytes += other.remote_bytes
        self.broadcast_bytes += other.broadcast_bytes
        self.computation_seconds += other.computation_seconds
        self.communication_seconds += other.communication_seconds
        self.barrier_seconds += other.barrier_seconds
        self.checkpoint_seconds += other.checkpoint_seconds
        self.recovery_seconds += other.recovery_seconds
        self.checkpoints += other.checkpoints
        self.crashes += other.crashes
        self.messages_lost += other.messages_lost
        self.messages_duplicated += other.messages_duplicated
        self.wall_seconds += other.wall_seconds
        if len(self.per_node_units) < len(other.per_node_units):
            self.per_node_units.extend(
                [0] * (len(other.per_node_units) - len(self.per_node_units))
            )
        for node, units in enumerate(other.per_node_units):
            self.per_node_units[node] += units
        self.trace.extend(other.trace)
        if other.node_timeline is not None:
            if self.node_timeline is None:
                self.node_timeline = NodeTimeline(num_nodes=self.num_nodes)
            self.node_timeline.extend(other.node_timeline)
        return self

    def summary(self) -> str:
        """One-line human-readable summary."""
        text = (
            f"{self.simulated_seconds:.3f}s simulated "
            f"({self.computation_seconds:.3f}s comp, "
            f"{self.communication_seconds:.3f}s comm, "
            f"{self.barrier_seconds:.3f}s barrier) over "
            f"{self.supersteps} supersteps on {self.num_nodes} nodes; "
            f"{self.compute_units} units, "
            f"{self.remote_messages}/{self.total_messages} remote msgs"
        )
        if self.crashes or self.checkpoints:
            text += (
                f"; {self.crashes} crash(es), {self.checkpoints} "
                f"checkpoint(s), {self.recovery_seconds:.3f}s recovery, "
                f"{self.checkpoint_seconds:.3f}s checkpointing"
            )
        return text
