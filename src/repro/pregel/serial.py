"""Cost accounting for *centralized* algorithms (TOL, BFL^C).

The paper runs centralized competitors on a single node of the same
cluster.  :class:`SerialMeter` charges their work with the same
``t_op`` as the distributed engine so index times are comparable, and
enforces the same memory budget and cut-off time.
"""

from __future__ import annotations

import time

from repro.pregel.cost_model import CostModel
from repro.pregel.metrics import RunStats


class SerialMeter:
    """Counts work units for a single-machine algorithm."""

    __slots__ = ("_cost", "_units", "_wall_start", "_check_every", "_next_check")

    def __init__(self, cost_model: CostModel | None = None):
        self._cost = cost_model if cost_model is not None else CostModel()
        self._units = 0
        self._wall_start = time.perf_counter()
        # First check exactly when the cut-off would be crossed, then
        # after every further unit (the raise ends the run anyway).
        limit = self._cost.time_limit_seconds
        if limit is None:
            self._next_check = float("inf")
        else:
            self._next_check = int(limit / self._cost.t_op) + 1

    @property
    def units(self) -> int:
        """Compute units charged so far."""
        return self._units

    @property
    def simulated_seconds(self) -> float:
        """Simulated elapsed time."""
        return self._units * self._cost.t_op

    def charge(self, units: int = 1) -> None:
        """Charge ``units`` of work; raises past the simulated cut-off."""
        self._units += units
        if self._units >= self._next_check:
            self._cost.check_time(self.simulated_seconds)

    def check_memory(self, required_bytes: int, what: str = "run") -> None:
        """Enforce the single-node memory budget."""
        self._cost.check_memory(required_bytes, what)

    def stats(self) -> RunStats:
        """Finish and return accounting in :class:`RunStats` form."""
        self._cost.check_time(self.simulated_seconds)
        return RunStats(
            num_nodes=1,
            supersteps=0,
            compute_units=self._units,
            computation_seconds=self.simulated_seconds,
            per_node_units=[self._units],
            wall_seconds=time.perf_counter() - self._wall_start,
        )
