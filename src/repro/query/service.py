"""Query backends and the batch evaluation service."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol

from repro.baselines.bfl import BflIndex
from repro.baselines.grail import GrailIndex
from repro.baselines.online import OnlineSearcher
from repro.core.labels import ReachabilityIndex
from repro.graph.digraph import DiGraph
from repro.observe import tracing
from repro.pregel.cost_model import DEFAULT_COST_MODEL, CostModel
from repro.telemetry import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    current_metrics,
    enabled,
    trace_span,
)


class QueryBackend(Protocol):
    """Anything that answers a reachability query with a cost."""

    def query_with_cost(self, s: int, t: int) -> tuple[bool, float]:
        """Returns ``(answer, simulated seconds)``."""
        ...  # pragma: no cover


class IndexBackend:
    """2-hop index backend (TOL / DRL family): sorted-merge queries."""

    def __init__(self, index: ReachabilityIndex, cost_model: CostModel | None = None):
        self._index = index
        self._t_op = (cost_model or DEFAULT_COST_MODEL).t_op

    def query_with_cost(self, s: int, t: int) -> tuple[bool, float]:
        index = self._index
        units = len(index.out_labels(s)) + len(index.in_labels(t)) + 1
        return index.query(s, t), units * self._t_op


class DynamicIndexBackend:
    """2-hop queries against a live :class:`DynamicReachabilityIndex`.

    Same sorted-merge charge as :class:`IndexBackend`, but the labels
    are read from the mutable index, so answers track edge insertions
    and deletions without re-wrapping a snapshot.  Pair it with
    :class:`repro.serve.QueryCache` (which subscribes to the dynamic
    index's update hooks) for serving under updates.
    """

    def __init__(self, index, cost_model: CostModel | None = None):
        self._index = index
        self._t_op = (cost_model or DEFAULT_COST_MODEL).t_op

    def query_with_cost(self, s: int, t: int) -> tuple[bool, float]:
        index = self._index
        units = len(index.out_labels[s]) + len(index.in_labels[t]) + 1
        return index.query(s, t), units * self._t_op


class BflBackend:
    """BFL^C backend: label tests plus occasional pruned search."""

    def __init__(self, index: BflIndex, cost_model: CostModel | None = None):
        self._index = index
        self._cost = cost_model or DEFAULT_COST_MODEL

    def query_with_cost(self, s: int, t: int) -> tuple[bool, float]:
        from repro.pregel.serial import SerialMeter

        meter = SerialMeter(self._cost.with_time_limit(None))
        answer = self._index.query(s, t, meter=meter)
        return answer, meter.simulated_seconds


class GrailBackend:
    """GRAIL backend: interval tests plus occasional pruned search."""

    def __init__(self, index: GrailIndex, cost_model: CostModel | None = None):
        self._index = index
        self._cost = cost_model or DEFAULT_COST_MODEL

    def query_with_cost(self, s: int, t: int) -> tuple[bool, float]:
        from repro.pregel.serial import SerialMeter

        meter = SerialMeter(self._cost.with_time_limit(None))
        answer = self._index.query(s, t, meter=meter)
        return answer, meter.simulated_seconds


class OnlineBackend:
    """Index-free backend: BFS per query."""

    def __init__(self, graph: DiGraph, cost_model: CostModel | None = None):
        self._searcher = OnlineSearcher(graph, cost_model or DEFAULT_COST_MODEL)

    def query_with_cost(self, s: int, t: int) -> tuple[bool, float]:
        return self._searcher.query_with_cost(s, t)


class DistributedIndexBackend:
    """Query a 2-hop index whose labels stay sharded across nodes.

    The alternative to the paper's collect-to-one-machine setup: each
    query fetches ``L_out(s)`` and ``L_in(t)`` from their owners (up to
    two serialized hops plus label bytes) and merges locally.  Still
    orders of magnitude cheaper than traversing the distributed graph.
    """

    def __init__(
        self,
        index: ReachabilityIndex,
        num_nodes: int = 32,
        cost_model: CostModel | None = None,
        coordinator_node: int = 0,
    ):
        from repro.graph.partition import HashPartitioner

        self._index = index
        self._cost = cost_model or DEFAULT_COST_MODEL
        self._partitioner = HashPartitioner(num_nodes)
        self._coordinator = coordinator_node

    def query_with_cost(self, s: int, t: int) -> tuple[bool, float]:
        cost = self._cost
        index = self._index
        out_labels = index.out_labels(s)
        in_labels = index.in_labels(t)
        seconds = (len(out_labels) + len(in_labels) + 1) * cost.t_op
        for vertex, labels in ((s, out_labels), (t, in_labels)):
            if self._partitioner.node_of(vertex) != self._coordinator:
                seconds += cost.t_hop + len(labels) * cost.entry_bytes * cost.t_byte
        return index.query(s, t), seconds


class FallbackBackend:
    """Serve from the index when it exists, fall back to BFS otherwise.

    Degraded-mode serving for a cluster whose index build died (crash
    without checkpointing, out-of-memory, cut-off): queries keep being
    answered — via :class:`OnlineBackend` traversal of the raw graph —
    just slower.  Every fallback-served query increments the
    ``query.fallback`` counter so operators can see the degradation.

    Use :meth:`from_build` to construct one directly from a build
    attempt: a successful build serves from the index, a build that
    raised a :class:`~repro.errors.ReproError` serves from the graph.
    """

    def __init__(
        self,
        primary: "QueryBackend | None",
        graph: DiGraph,
        cost_model: CostModel | None = None,
    ):
        self._primary = primary
        self._fallback = OnlineBackend(graph, cost_model)
        self.fallback_queries = 0

    @classmethod
    def from_build(
        cls,
        graph: DiGraph,
        builder,
        cost_model: CostModel | None = None,
    ) -> "FallbackBackend":
        """Run ``builder()`` (returning an index-bearing result or a
        bare index) and wrap whatever survives.

        Build failures signalled by a :class:`~repro.errors.ReproError`
        (time limit, memory, super-step limit) degrade to online BFS;
        other exceptions are bugs and propagate.
        """
        from repro.errors import ReproError

        try:
            built = builder()
        except ReproError:
            return cls(None, graph, cost_model)
        index = getattr(built, "index", built)
        return cls(IndexBackend(index, cost_model), graph, cost_model)

    @property
    def degraded(self) -> bool:
        """True when serving BFS fallbacks instead of the index."""
        return self._primary is None

    def query_with_cost(self, s: int, t: int) -> tuple[bool, float]:
        if self._primary is not None:
            return self._primary.query_with_cost(s, t)
        self.fallback_queries += 1
        if enabled():
            current_metrics().counter("query.fallback").inc()
        answer, seconds = self._fallback.query_with_cost(s, t)
        if tracing.ACTIVE is not None:
            tracing.ACTIVE.add_stage("fallback", seconds)
        return answer, seconds


@dataclass(frozen=True)
class QueryReport:
    """Latency statistics for one evaluated workload."""

    count: int
    positives: int
    total_seconds: float
    mean_seconds: float
    p50_seconds: float
    p95_seconds: float
    p99_seconds: float
    max_seconds: float

    @property
    def positive_rate(self) -> float:
        """Fraction of queries answered True."""
        return self.positives / self.count if self.count else 0.0

    @property
    def throughput(self) -> float:
        """Queries per simulated second."""
        return self.count / self.total_seconds if self.total_seconds else 0.0

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.count} queries ({self.positive_rate:.0%} positive): "
            f"mean {self.mean_seconds:.2e}s, p95 {self.p95_seconds:.2e}s, "
            f"p99 {self.p99_seconds:.2e}s, max {self.max_seconds:.2e}s"
        )


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile on a pre-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


class QueryService:
    """Evaluates query workloads against a backend.

    When a telemetry session is active (or ``metrics`` is given
    explicitly), every query feeds the ``query.latency_seconds``
    histogram and the ``query.count`` / ``query.positives`` counters,
    and :meth:`evaluate` runs inside a ``query.evaluate`` span whose
    simulated seconds are the workload's total latency.
    """

    def __init__(
        self, backend: QueryBackend, metrics: MetricsRegistry | None = None
    ):
        self._backend = backend
        self._metrics = metrics

    def _registry(self) -> MetricsRegistry | None:
        """Explicit registry, the session's when active, else none."""
        if self._metrics is not None:
            return self._metrics
        return current_metrics() if enabled() else None

    @staticmethod
    def _record(registry: MetricsRegistry, answer: bool, seconds: float) -> None:
        registry.counter("query.count").inc()
        if answer:
            registry.counter("query.positives").inc()
        registry.histogram("query.latency_seconds", LATENCY_BUCKETS).observe(
            seconds
        )

    def query(self, s: int, t: int) -> bool:
        """Single query, answer only."""
        answer, seconds = self._backend.query_with_cost(s, t)
        registry = self._registry()
        if registry is not None:
            self._record(registry, answer, seconds)
        return answer

    def evaluate(self, pairs: Iterable[tuple[int, int]]) -> QueryReport:
        """Run every pair and collect latency statistics."""
        registry = self._registry()
        latencies: list[float] = []
        positives = 0
        with trace_span(
            "query.evaluate", backend=type(self._backend).__name__
        ) as span:
            for s, t in pairs:
                answer, seconds = self._backend.query_with_cost(s, t)
                positives += answer
                latencies.append(seconds)
                if registry is not None:
                    self._record(registry, answer, seconds)
            span.set(count=len(latencies), positives=positives)
            span.add_simulated(sum(latencies))
        if not latencies:
            return QueryReport(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        latencies.sort()
        total = sum(latencies)
        return QueryReport(
            count=len(latencies),
            positives=positives,
            total_seconds=total,
            mean_seconds=total / len(latencies),
            p50_seconds=_percentile(latencies, 0.50),
            p95_seconds=_percentile(latencies, 0.95),
            p99_seconds=_percentile(latencies, 0.99),
            max_seconds=latencies[-1],
        )
