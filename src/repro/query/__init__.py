"""Query serving: backends, batch evaluation, latency statistics.

The paper's end state is an index "collected on one machine to support
in-memory queries"; this subpackage is that serving layer.  A
:class:`~repro.query.service.QueryService` wraps any backend —
2-hop index, BFL, GRAIL, online search — and evaluates workloads with
per-query simulated-latency statistics (mean and percentiles), which is
how Table VI's query-time columns are produced in spirit.
"""

from repro.query.service import (
    BflBackend,
    DistributedIndexBackend,
    DynamicIndexBackend,
    FallbackBackend,
    GrailBackend,
    IndexBackend,
    OnlineBackend,
    QueryReport,
    QueryService,
)

__all__ = [
    "BflBackend",
    "DistributedIndexBackend",
    "DynamicIndexBackend",
    "FallbackBackend",
    "GrailBackend",
    "IndexBackend",
    "OnlineBackend",
    "QueryReport",
    "QueryService",
]
