"""Edge-list I/O.

Reachability datasets (SNAP, KONECT, ...) ship as whitespace-separated
edge lists; this module reads and writes that format (optionally
gzipped) plus a compact binary format for faster reloads.
"""

from __future__ import annotations

import gzip
import struct
from pathlib import Path
from typing import IO, Iterator

from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph

_BINARY_MAGIC = b"RPRO"
_BINARY_VERSION = 1


def _open_text(path: Path, mode: str) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def iter_edge_list(path: str | Path) -> Iterator[tuple[int, int]]:
    """Yield ``(u, v)`` pairs from a text edge list.

    Lines starting with ``#`` or ``%`` are comments; blank lines are
    skipped.  Extra columns (weights, timestamps) are ignored.
    """
    path = Path(path)
    with _open_text(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{line_no}: expected at least two columns")
            try:
                yield int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise ValueError(f"{path}:{line_no}: non-integer vertex id") from exc


def read_edge_list(
    path: str | Path,
    num_vertices: int | None = None,
    dedup: bool = True,
) -> DiGraph:
    """Load a text edge list into a :class:`DiGraph`."""
    builder = GraphBuilder(num_vertices=num_vertices, dedup=dedup)
    builder.add_edges(iter_edge_list(path))
    return builder.build()


def write_edge_list(graph: DiGraph, path: str | Path, header: bool = True) -> None:
    """Write ``graph`` as a text edge list (gzip if the path ends in .gz)."""
    path = Path(path)
    with _open_text(path, "w") as handle:
        if header:
            handle.write(f"# repro edge list: n={graph.num_vertices} m={graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u}\t{v}\n")


def write_binary(graph: DiGraph, path: str | Path) -> None:
    """Write ``graph`` in the compact binary format."""
    path = Path(path)
    with open(path, "wb") as handle:
        handle.write(_BINARY_MAGIC)
        handle.write(
            struct.pack("<IQQ", _BINARY_VERSION, graph.num_vertices, graph.num_edges)
        )
        for u, v in graph.edges():
            handle.write(struct.pack("<QQ", u, v))


def read_binary(path: str | Path) -> DiGraph:
    """Read a graph written by :func:`write_binary`."""
    path = Path(path)
    with open(path, "rb") as handle:
        magic = handle.read(4)
        if magic != _BINARY_MAGIC:
            raise ValueError(f"{path}: not a repro binary graph (bad magic)")
        header = handle.read(20)
        if len(header) != 20:
            raise ValueError(f"{path}: truncated header")
        version, n, m = struct.unpack("<IQQ", header)
        if version != _BINARY_VERSION:
            raise ValueError(f"{path}: unsupported binary version {version}")
        payload = handle.read(16 * m)
        if len(payload) != 16 * m:
            raise ValueError(f"{path}: truncated edge payload")
        edges = [
            struct.unpack_from("<QQ", payload, 16 * i) for i in range(m)
        ]
    return DiGraph(n, edges)
