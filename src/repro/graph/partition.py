"""Vertex partitioners: map vertices onto simulated cluster nodes.

The paper maps "graph vertices to different computation nodes via vertex
IDs" — a hash partitioner.  Alternatives are provided for ablations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from array import array


class Partitioner(ABC):
    """Assigns each vertex to one of ``num_nodes`` computation nodes."""

    def __init__(self, num_nodes: int):
        if num_nodes < 1:
            raise ValueError("need at least one computation node")
        self.num_nodes = num_nodes

    @abstractmethod
    def node_of(self, vertex: int) -> int:
        """The node id in ``[0, num_nodes)`` owning ``vertex``."""

    def partition(self, num_vertices: int) -> list[list[int]]:
        """Materialize per-node vertex lists."""
        parts: list[list[int]] = [[] for _ in range(self.num_nodes)]
        for v in range(num_vertices):
            parts[self.node_of(v)].append(v)
        return parts


class HashPartitioner(Partitioner):
    """The paper's scheme: node = id mod num_nodes (after a bit mix).

    A multiplicative mix decorrelates node assignment from generator id
    patterns while remaining deterministic.
    """

    _MIX = 0x9E3779B97F4A7C15

    def node_of(self, vertex: int) -> int:
        mixed = (vertex * self._MIX) & 0xFFFFFFFFFFFFFFFF
        return (mixed >> 32) % self.num_nodes


class ModuloPartitioner(Partitioner):
    """Plain ``id % num_nodes`` — the literal reading of the paper."""

    def node_of(self, vertex: int) -> int:
        return vertex % self.num_nodes


class RangePartitioner(Partitioner):
    """Contiguous id ranges per node (needs the vertex count up front)."""

    def __init__(self, num_nodes: int, num_vertices: int):
        super().__init__(num_nodes)
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self.num_vertices = num_vertices
        self._chunk = max(1, -(-num_vertices // num_nodes))  # ceil division

    def node_of(self, vertex: int) -> int:
        return min(vertex // self._chunk, self.num_nodes - 1)


class BlockPartitioner(Partitioner):
    """Round-robin blocks of ``block_size`` consecutive ids."""

    def __init__(self, num_nodes: int, block_size: int = 64):
        super().__init__(num_nodes)
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self.block_size = block_size

    def node_of(self, vertex: int) -> int:
        return (vertex // self.block_size) % self.num_nodes


def node_assignment(partitioner: Partitioner, num_vertices: int) -> array:
    """Materialize the vertex → node map as a compact ``array('q')``.

    Every executor that needs the full assignment — the simulator
    engine, the multiprocessing engine, and the multi-core memory
    estimator — goes through this one helper, so a partitioner change
    can never make two execution paths disagree on vertex placement.
    """
    return array("q", map(partitioner.node_of, range(num_vertices)))


PARTITIONER_STRATEGIES = {
    "hash": lambda nodes, n: HashPartitioner(nodes),
    "modulo": lambda nodes, n: ModuloPartitioner(nodes),
    "range": lambda nodes, n: RangePartitioner(nodes, n),
    "block": lambda nodes, n: BlockPartitioner(nodes),
}
"""Factories ``(num_nodes, num_vertices) -> Partitioner`` for ablations."""
