"""Graph substrate: directed graphs, generators, traversal, ordering.

This subpackage provides everything the labeling algorithms need from a
graph library, implemented from scratch:

- :class:`~repro.graph.digraph.DiGraph` — immutable CSR directed graph.
- :class:`~repro.graph.builder.GraphBuilder` — mutable accumulator.
- :mod:`~repro.graph.generators` — seeded synthetic graph generators.
- :mod:`~repro.graph.traversal` — BFS / DFS / trimmed BFS (Algorithm 2).
- :mod:`~repro.graph.scc` — Tarjan strongly connected components.
- :mod:`~repro.graph.order` — total vertex orders (the paper's ``ord``).
- :mod:`~repro.graph.partition` — vertex partitioners for the cluster.
- :mod:`~repro.graph.io` — edge-list readers and writers.
"""

from repro.graph.analysis import BowTie, bowtie_decomposition, degree_summary
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    citation_graph,
    gn_graph,
    knowledge_graph,
    kronecker_graph,
    paper_example_graph,
    random_dag,
    random_digraph,
    social_graph,
    web_graph,
)
from repro.graph.order import VertexOrder, degree_order, random_order
from repro.graph.partition import (
    BlockPartitioner,
    HashPartitioner,
    Partitioner,
    RangePartitioner,
)
from repro.graph.scc import condensation, strongly_connected_components
from repro.graph.traversal import (
    TrimmedBfsResult,
    bfs_order,
    dfs_postorder,
    reachable_set,
    trimmed_bfs,
)

__all__ = [
    "BlockPartitioner",
    "BowTie",
    "DiGraph",
    "GraphBuilder",
    "HashPartitioner",
    "Partitioner",
    "RangePartitioner",
    "TrimmedBfsResult",
    "VertexOrder",
    "bfs_order",
    "bowtie_decomposition",
    "citation_graph",
    "condensation",
    "degree_order",
    "degree_summary",
    "dfs_postorder",
    "gn_graph",
    "knowledge_graph",
    "kronecker_graph",
    "paper_example_graph",
    "random_dag",
    "random_digraph",
    "random_order",
    "reachable_set",
    "social_graph",
    "strongly_connected_components",
    "trimmed_bfs",
    "web_graph",
]
