"""Strongly connected components (iterative Tarjan) and condensation.

The DRL family deliberately works on cyclic graphs (Section II-C), but
the BFL baseline needs an acyclic graph, and several tests use the
condensation as an independent oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.digraph import DiGraph


def strongly_connected_components(graph: DiGraph) -> list[list[int]]:
    """Tarjan's algorithm, iterative (safe for deep graphs).

    Returns components in reverse topological order of the condensation
    (a component appears before any component that can reach it), which
    is Tarjan's natural emission order.
    """
    n = graph.num_vertices
    unvisited = -1
    index_of = [unvisited] * n
    lowlink = [0] * n
    on_stack = bytearray(n)
    stack: list[int] = []
    components: list[list[int]] = []
    counter = 0

    for root in range(n):
        if index_of[root] != unvisited:
            continue
        # Explicit DFS stack of (vertex, neighbor cursor).
        work = [(root, 0)]
        while work:
            v, cursor = work.pop()
            if cursor == 0:
                index_of[v] = lowlink[v] = counter
                counter += 1
                stack.append(v)
                on_stack[v] = 1
            neighbors = graph.out_neighbors(v)
            recursed = False
            for i in range(cursor, len(neighbors)):
                w = neighbors[i]
                if index_of[w] == unvisited:
                    work.append((v, i + 1))
                    work.append((w, 0))
                    recursed = True
                    break
                if on_stack[w] and index_of[w] < lowlink[v]:
                    lowlink[v] = index_of[w]
            if recursed:
                continue
            if lowlink[v] == index_of[v]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack[w] = 0
                    component.append(w)
                    if w == v:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                if lowlink[v] < lowlink[parent]:
                    lowlink[parent] = lowlink[v]
    return components


@dataclass(frozen=True)
class Condensation:
    """The condensation DAG of a directed graph.

    Attributes
    ----------
    dag:
        The acyclic graph whose vertices are SCC ids.
    component_of:
        ``component_of[v]`` is the SCC id of original vertex ``v``.
    members:
        ``members[c]`` lists the original vertices of SCC ``c``.
    """

    dag: DiGraph
    component_of: list[int]
    members: list[list[int]]

    def is_trivial(self) -> bool:
        """True when the input graph was already acyclic."""
        return self.dag.num_vertices == len(self.component_of)


def condensation(graph: DiGraph) -> Condensation:
    """Contract each SCC to a single vertex; edges are deduplicated."""
    components = strongly_connected_components(graph)
    component_of = [0] * graph.num_vertices
    for cid, members in enumerate(components):
        for v in members:
            component_of[v] = cid
    dag_edges = set()
    for u, v in graph.edges():
        cu, cv = component_of[u], component_of[v]
        if cu != cv:
            dag_edges.add((cu, cv))
    dag = DiGraph(len(components), sorted(dag_edges))
    return Condensation(dag=dag, component_of=component_of, members=components)
