"""Graph traversals: BFS, DFS, reachability, and trimmed BFS (Algorithm 2).

The trimmed BFS is the filtering primitive of the paper: a ``v``-sourced
BFS that stops expanding whenever it meets a vertex of higher order than
``v``.  It returns both the visited low-order set ``BFS_low(v)`` and the
blocking high-order frontier ``BFS_hig(v)``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.graph.digraph import DiGraph
from repro.graph.order import VertexOrder


def bfs_order(graph: DiGraph, source: int) -> list[int]:
    """Vertices reachable from ``source`` in BFS visitation order."""
    visited = bytearray(graph.num_vertices)
    visited[source] = 1
    queue = deque([source])
    out = []
    while queue:
        u = queue.popleft()
        out.append(u)
        for w in graph.out_neighbors(u):
            if not visited[w]:
                visited[w] = 1
                queue.append(w)
    return out


def reachable_set(graph: DiGraph, source: int) -> set[int]:
    """The descendants ``DES(source)`` (includes ``source`` itself)."""
    return set(bfs_order(graph, source))


def dfs_postorder(graph: DiGraph, roots: list[int] | None = None) -> list[int]:
    """Iterative DFS post-order over the whole graph.

    ``roots`` fixes the root visitation order (defaults to ``0..n-1``);
    every vertex appears exactly once.  Used by the BFL baseline, whose
    interval labels are keyed to DFS post-order.
    """
    n = graph.num_vertices
    visited = bytearray(n)
    postorder: list[int] = []
    root_iter = roots if roots is not None else range(n)
    for root in root_iter:
        if visited[root]:
            continue
        visited[root] = 1
        # Stack holds (vertex, iterator over its out-neighbors).
        stack = [(root, iter(graph.out_neighbors(root)))]
        while stack:
            v, neighbors = stack[-1]
            advanced = False
            for w in neighbors:
                if not visited[w]:
                    visited[w] = 1
                    stack.append((w, iter(graph.out_neighbors(w))))
                    advanced = True
                    break
            if not advanced:
                postorder.append(v)
                stack.pop()
    return postorder


@dataclass(frozen=True)
class TrimmedBfsResult:
    """Output of Algorithm 2 for one source vertex ``v``.

    Attributes
    ----------
    low:
        ``BFS_low(v)``: visited vertices of order lower than ``v``
        (includes ``v`` itself), in visitation order.
    high:
        ``BFS_hig(v)``: the distinct higher-order vertices that blocked
        expansion, in discovery order.
    edges_scanned:
        Number of edge examinations, for cost accounting (Lemma 2 says
        the time is ``O(|V| + |E|)``).
    """

    low: list[int]
    high: list[int]
    edges_scanned: int


def trimmed_bfs(graph: DiGraph, source: int, order: VertexOrder) -> TrimmedBfsResult:
    """Algorithm 2: ``source``-sourced trimmed BFS on ``graph``.

    Expansion proceeds only through vertices of order strictly lower than
    ``source``; a higher-order neighbor blocks its branch and is recorded
    in ``high``.  Each vertex is examined at most once (the paper's
    status array); the source itself, if re-reached through a cycle, is
    already marked visited and is not recorded as a blocker.
    """
    rank = order.ranks
    source_rank = rank[source]
    status = bytearray(graph.num_vertices)  # 0 = unvisited, 1 = seen
    status[source] = 1
    queue = deque([source])
    low = [source]
    high: list[int] = []
    edges_scanned = 0
    while queue:
        u = queue.popleft()
        for w in graph.out_neighbors(u):
            edges_scanned += 1
            if status[w]:
                continue
            status[w] = 1
            if rank[w] > source_rank:  # lower order than the source
                low.append(w)
                queue.append(w)
            else:  # block the expansion via w
                high.append(w)
    return TrimmedBfsResult(low=low, high=high, edges_scanned=edges_scanned)
