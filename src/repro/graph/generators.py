"""Seeded synthetic graph generators.

These stand in for the paper's 18 real datasets (Table V).  Each
generator targets one topology class from the table's "Type" column:

- :func:`web_graph` — Web (copy/evolving model with a bow-tie core),
- :func:`social_graph` — Social (directed preferential attachment),
- :func:`citation_graph` — Citation (time-layered, acyclic),
- :func:`knowledge_graph` — Knowledge (typed hub/entity layers),
- :func:`kronecker_graph` — Synthetic (Graph500 R-MAT),
- :func:`gn_graph`, :func:`random_digraph`, :func:`random_dag` — generic.

Every generator is deterministic for a fixed seed.
:func:`paper_example_graph` reproduces Fig. 1 of the paper exactly.
"""

from __future__ import annotations

import random

from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph
from repro.graph.order import VertexOrder

# Edges of the paper's running example (Fig. 1), 0-indexed: the paper's
# vertex v_i is our vertex i-1.  The set is reconstructed from the
# paper's worked examples: N_in/N_out of v2 (Example 1), v3's and v4's
# out-neighbors and BFS_low/BFS_hig(v3) (Example 8), DES/ANC facts
# (Examples 1, 4, 7), and the degree products behind ord(v1) = 12.08 and
# ord(v10) = 2.83 (Example 3).  With these 15 edges every quoted fact
# and both Table II and Table III check out.
_PAPER_EXAMPLE_EDGES_1INDEXED = [
    (6, 2),
    (2, 1),
    (2, 3),
    (2, 4),
    (2, 5),
    (3, 1),
    (3, 4),
    (3, 10),
    (4, 6),
    (4, 11),
    (1, 5),
    (1, 8),
    (5, 7),
    (7, 1),
    (8, 9),
]


def paper_example_graph() -> DiGraph:
    """The 11-vertex, 15-edge graph of Fig. 1 (0-indexed vertices)."""
    edges = [(u - 1, v - 1) for u, v in _PAPER_EXAMPLE_EDGES_1INDEXED]
    return DiGraph(11, edges)


def paper_example_order() -> VertexOrder:
    """The order used throughout the paper's examples: v1 > v2 > ... > v11.

    The running example assumes orders decrease with the subscript (see
    Examples 4, 8 and 12); the degree formula of Example 3 is a separate
    heuristic and does not reproduce that exact ranking on Fig. 1.
    """
    return VertexOrder(list(range(11)))


def random_digraph(n: int, m: int, seed: int = 0) -> DiGraph:
    """Uniform random simple digraph ``G(n, m)`` without self-loops."""
    max_edges = n * (n - 1)
    if m > max_edges:
        raise ValueError(f"cannot place {m} simple edges on {n} vertices")
    rng = random.Random(seed)
    builder = GraphBuilder(num_vertices=n)
    while builder.num_edges < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        builder.add_edge(u, v)
    return builder.build()


def random_dag(n: int, m: int, seed: int = 0) -> DiGraph:
    """Uniform random DAG: edges always point from lower to higher rank
    of a random permutation."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"cannot place {m} DAG edges on {n} vertices")
    rng = random.Random(seed)
    topo = list(range(n))
    rng.shuffle(topo)
    position = [0] * n
    for i, v in enumerate(topo):
        position[v] = i
    builder = GraphBuilder(num_vertices=n)
    while builder.num_edges < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        if position[u] > position[v]:
            u, v = v, u
        builder.add_edge(u, v)
    return builder.build()


def gn_graph(n: int, seed: int = 0, redirect: float = 0.3) -> DiGraph:
    """Growing network: each new vertex links to one earlier vertex,
    chosen uniformly but redirected to that vertex's target with
    probability ``redirect`` (Krapivsky-Redner), yielding power-law
    in-degrees."""
    if n < 1:
        raise ValueError("need at least one vertex")
    rng = random.Random(seed)
    builder = GraphBuilder(num_vertices=n)
    target_of = [0] * n
    for v in range(1, n):
        t = rng.randrange(v)
        if rng.random() < redirect:
            t = target_of[t]
        builder.add_edge(v, t)
        target_of[v] = t
    return builder.build()


def social_graph(
    n: int, avg_out_degree: float = 4.0, seed: int = 0, reciprocity: float = 0.25
) -> DiGraph:
    """Directed preferential-attachment graph (Twitter/Weibo stand-in).

    New vertices follow existing vertices with probability proportional
    to in-degree + 1; a followed vertex follows back with probability
    ``reciprocity``, creating the cycles typical of social graphs.
    """
    if n < 2:
        raise ValueError("need at least two vertices")
    rng = random.Random(seed)
    builder = GraphBuilder(num_vertices=n)
    # Repeated-vertex list implements preferential attachment in O(1).
    attractor_pool = [0]
    builder.add_edge(1, 0)
    attractor_pool.extend((0, 1))
    for v in range(2, n):
        links = max(1, round(rng.gauss(avg_out_degree, avg_out_degree / 3)))
        links = min(links, v)
        chosen: set[int] = set()
        while len(chosen) < links:
            t = attractor_pool[rng.randrange(len(attractor_pool))]
            if t != v:
                chosen.add(t)
        for t in chosen:
            builder.add_edge(v, t)
            attractor_pool.append(t)
            if rng.random() < reciprocity:
                builder.add_edge(t, v)
        attractor_pool.append(v)
    return builder.build()


def web_graph(n: int, seed: int = 0, copy_prob: float = 0.6, out_links: int = 5) -> DiGraph:
    """Evolving copy-model web graph (SK / UK / webbase stand-in).

    Each new page picks a random prototype page, copies each of the
    prototype's out-links with probability ``copy_prob``, links to the
    prototype itself, and adds uniform random links up to ``out_links``.
    A small fraction of back-links creates the bow-tie's strongly
    connected core.
    """
    if n < 2:
        raise ValueError("need at least two vertices")
    rng = random.Random(seed)
    builder = GraphBuilder(num_vertices=n)
    out_adj: list[list[int]] = [[] for _ in range(n)]

    def link(u: int, v: int) -> None:
        if u != v and v not in out_adj[u]:
            out_adj[u].append(v)
            builder.add_edge(u, v)

    link(0, 1)
    link(1, 0)
    for v in range(2, n):
        prototype = rng.randrange(v)
        link(v, prototype)
        for t in list(out_adj[prototype]):
            if rng.random() < copy_prob:
                link(v, t)
        while len(out_adj[v]) < out_links and len(out_adj[v]) < v:
            link(v, rng.randrange(v))
        # Occasional back-link from an old page to the new page keeps a
        # strongly connected core growing, as in real web crawls.
        if rng.random() < 0.15:
            link(rng.randrange(v), v)
    return builder.build()


def citation_graph(n: int, avg_refs: float = 4.0, seed: int = 0) -> DiGraph:
    """Time-layered citation DAG (citeseerx / cit-patent stand-in).

    Paper ``v`` cites earlier papers, preferring recent and highly cited
    ones.  The result is acyclic, like (cleaned) citation networks.
    """
    if n < 2:
        raise ValueError("need at least two vertices")
    rng = random.Random(seed)
    builder = GraphBuilder(num_vertices=n)
    pool = [0]
    for v in range(1, n):
        refs = max(1, round(rng.gauss(avg_refs, avg_refs / 3)))
        refs = min(refs, v)
        chosen: set[int] = set()
        while len(chosen) < refs:
            if rng.random() < 0.5:
                t = pool[rng.randrange(len(pool))]  # preferential
            else:
                # Recency bias: prefer recent papers.
                t = v - 1 - min(int(rng.expovariate(8.0 / v)), v - 1)
            if t < v:
                chosen.add(t)
        for t in chosen:
            builder.add_edge(v, t)
            pool.append(t)
        pool.append(v)
    return builder.build()


def knowledge_graph(
    n: int,
    seed: int = 0,
    num_categories: int | None = None,
    back_link: float = 0.0,
) -> DiGraph:
    """Typed entity/category graph (DBpedia / Go-uniprot stand-in).

    A small set of category vertices forms a shallow hierarchy; entity
    vertices point at a handful of categories and at a few related
    entities, producing the very flat, hub-dominated reachability
    structure of knowledge bases.  ``back_link`` adds category→entity
    edges with that probability per entity, creating the large cyclic
    cores of encyclopedic knowledge graphs (DBpedia's wiki-links).
    """
    if n < 4:
        raise ValueError("need at least four vertices")
    rng = random.Random(seed)
    if num_categories is None:
        num_categories = max(2, int(n**0.5) // 2)
    builder = GraphBuilder(num_vertices=n)
    # Category hierarchy: category c points to a random parent category.
    for c in range(1, num_categories):
        builder.add_edge(c, rng.randrange(c))
    for v in range(num_categories, n):
        for _ in range(rng.randint(1, 3)):
            builder.add_edge(v, rng.randrange(num_categories))
        if v > num_categories and rng.random() < 0.5:
            builder.add_edge(v, rng.randrange(num_categories, v))
        if back_link and rng.random() < back_link:
            builder.add_edge(rng.randrange(num_categories), v)
    return builder.build()


def lattice_graph(
    rows: int, cols: int, wrap: bool = False, diagonal_prob: float = 0.0, seed: int = 0
) -> DiGraph:
    """Directed grid lattice: edges point right and down.

    Lattices are the adversarial opposite of the power-law families:
    no hubs, maximal label sizes per vertex, and reachability that is
    exactly the "south-east cone" of each cell — a worst case for
    2-hop pruning.  ``wrap=True`` closes both axes into a torus, which
    collapses the graph into one giant SCC; ``diagonal_prob`` adds
    random down-right diagonals to break the regular structure.
    """
    if rows < 1 or cols < 1:
        raise ValueError("lattice needs at least one row and one column")
    rng = random.Random(seed)
    n = rows * cols
    builder = GraphBuilder(num_vertices=n)

    def vid(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                builder.add_edge(vid(r, c), vid(r, c + 1))
            elif wrap and cols > 1:
                builder.add_edge(vid(r, c), vid(r, 0))
            if r + 1 < rows:
                builder.add_edge(vid(r, c), vid(r + 1, c))
            elif wrap and rows > 1:
                builder.add_edge(vid(r, c), vid(0, c))
            if (
                diagonal_prob
                and r + 1 < rows
                and c + 1 < cols
                and rng.random() < diagonal_prob
            ):
                builder.add_edge(vid(r, c), vid(r + 1, c + 1))
    return builder.build()


def scc_heavy_graph(
    n: int,
    seed: int = 0,
    avg_component: float = 4.0,
    bridge_factor: float = 1.5,
) -> DiGraph:
    """Graph dominated by non-trivial SCCs (condensation stress test).

    Vertices are grouped into components of geometric size around
    ``avg_component``; each component is closed into a directed cycle
    (so every member reaches every other), then ``bridge_factor * #components``
    bridge edges are added from earlier components to later ones,
    keeping the component DAG acyclic while the inside stays maximally
    cyclic.  Exercises exactly the paths the paper's direct (no
    condensation) approach must get right on cyclic inputs.
    """
    if n < 2:
        raise ValueError("need at least two vertices")
    rng = random.Random(seed)
    builder = GraphBuilder(num_vertices=n)
    components: list[list[int]] = []
    v = 0
    while v < n:
        size = min(n - v, max(1, int(rng.expovariate(1.0 / avg_component)) + 1))
        components.append(list(range(v, v + size)))
        v += size
    for members in components:
        if len(members) > 1:
            for a, b in zip(members, members[1:]):
                builder.add_edge(a, b)
            builder.add_edge(members[-1], members[0])
    bridges = int(bridge_factor * len(components))
    for _ in range(bridges):
        if len(components) < 2:
            break
        i = rng.randrange(len(components) - 1)
        j = rng.randrange(i + 1, len(components))
        builder.add_edge(
            rng.choice(components[i]), rng.choice(components[j])
        )
    return builder.build()


def kronecker_graph(
    scale: int,
    edge_factor: int = 16,
    seed: int = 0,
    initiator: tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
) -> DiGraph:
    """R-MAT / Graph500-style Kronecker graph (GRPH stand-in).

    ``2**scale`` vertices and ``edge_factor * 2**scale`` sampled edges;
    duplicates and self-loops are dropped, as Graph500 kernels do before
    building CSR.
    """
    if scale < 1:
        raise ValueError("scale must be at least 1")
    a, b, c, d = initiator
    if abs(a + b + c + d - 1.0) > 1e-9:
        raise ValueError("initiator probabilities must sum to 1")
    rng = random.Random(seed)
    n = 1 << scale
    builder = GraphBuilder(num_vertices=n)
    for _ in range(edge_factor * n):
        u = v = 0
        for _level in range(scale):
            r = rng.random()
            u <<= 1
            v <<= 1
            if r < a:
                pass
            elif r < a + b:
                v |= 1
            elif r < a + b + c:
                u |= 1
            else:
                u |= 1
                v |= 1
        builder.add_edge(u, v)
    return builder.build()


#: Named graph kinds: ``name -> factory(n, seed=...)``.  The single
#: registry behind ``repro generate --kind``, ``repro serve-bench``,
#: and the scenario format's ``graph.kind`` field.
GRAPH_KINDS = {
    "web": web_graph,
    "social": social_graph,
    "citation": citation_graph,
    "knowledge": knowledge_graph,
    "random": lambda n, seed=0: random_digraph(n, 4 * n, seed=seed),
    "dag": lambda n, seed=0: random_dag(n, 3 * n, seed=seed),
}
