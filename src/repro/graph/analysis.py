"""Structural graph analysis helpers.

Utilities for understanding the reachability structure that drives
labeling cost — most notably the web-graph *bow-tie* decomposition
(Broder et al.): a strongly connected CORE, the IN set that reaches it,
the OUT set it reaches, and the remaining OTHERS (tendrils, tubes, and
disconnected pieces).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.graph.digraph import DiGraph
from repro.graph.scc import strongly_connected_components


@dataclass(frozen=True)
class BowTie:
    """Bow-tie decomposition of a directed graph.

    The four member sets partition the vertices; ``core`` is the
    largest SCC (ties broken by smallest member id).
    """

    core: frozenset[int]
    in_set: frozenset[int]
    out_set: frozenset[int]
    others: frozenset[int]

    def summary(self) -> str:
        """One-line size breakdown."""
        total = (
            len(self.core) + len(self.in_set) + len(self.out_set) + len(self.others)
        )

        def pct(part: frozenset[int]) -> str:
            return f"{100 * len(part) / total:.1f}%" if total else "0%"

        return (
            f"core {len(self.core)} ({pct(self.core)}), "
            f"in {len(self.in_set)} ({pct(self.in_set)}), "
            f"out {len(self.out_set)} ({pct(self.out_set)}), "
            f"others {len(self.others)} ({pct(self.others)})"
        )


def bowtie_decomposition(graph: DiGraph) -> BowTie:
    """Decompose ``graph`` around its largest strongly connected core."""
    if graph.num_vertices == 0:
        empty: frozenset[int] = frozenset()
        return BowTie(empty, empty, empty, empty)
    components = strongly_connected_components(graph)
    core_members = max(components, key=lambda c: (len(c), -min(c)))
    core = frozenset(core_members)
    reaches_core = _reachable_from(graph.reverse(), core)
    reached_by_core = _reachable_from(graph, core)
    in_set = frozenset(reaches_core - core)
    out_set = frozenset(reached_by_core - core)
    others = frozenset(
        v
        for v in graph.vertices()
        if v not in core and v not in in_set and v not in out_set
    )
    return BowTie(core=core, in_set=in_set, out_set=out_set, others=others)


def _reachable_from(graph: DiGraph, sources: frozenset[int]) -> set[int]:
    visited = set(sources)
    queue = deque(sources)
    while queue:
        v = queue.popleft()
        for w in graph.out_neighbors(v):
            if w not in visited:
                visited.add(w)
                queue.append(w)
    return visited


def degree_summary(graph: DiGraph) -> dict[str, float]:
    """Degree statistics: max/mean in and out degree, and the share of
    total in-degree held by the top-1% vertices (hub concentration —
    the property the degree order exploits)."""
    n = graph.num_vertices
    if n == 0:
        return {
            "max_in": 0, "max_out": 0, "mean_degree": 0.0, "top1_in_share": 0.0
        }
    in_degrees = sorted((graph.in_degree(v) for v in graph.vertices()), reverse=True)
    max_out = max(graph.out_degree(v) for v in graph.vertices())
    top = max(1, n // 100)
    total_in = sum(in_degrees)
    return {
        "max_in": in_degrees[0],
        "max_out": max_out,
        "mean_degree": graph.num_edges / n,
        "top1_in_share": sum(in_degrees[:top]) / total_in if total_in else 0.0,
    }
