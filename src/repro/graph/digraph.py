"""Immutable directed graph stored in compressed sparse row (CSR) form.

The labeling algorithms only ever need fast iteration over out-neighbors
and in-neighbors, so :class:`DiGraph` keeps two CSR structures (forward
and reverse) built once from an edge list.  Vertices are the integers
``0 .. n-1``.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, Sequence


class DiGraph:
    """A directed graph ``G(V, E)`` with ``V = {0, .., n-1}``.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``.  Vertex ids are dense integers.
    edges:
        Iterable of ``(u, v)`` pairs.  Parallel edges are kept as given
        (use :class:`~repro.graph.builder.GraphBuilder` to deduplicate);
        self-loops are allowed (the paper does not forbid them).

    Notes
    -----
    The structure is immutable: algorithms that conceptually delete
    vertices (e.g. TOL's shrinking graph ``G_i``) express deletion with
    vertex filters instead of mutating the graph.
    """

    __slots__ = (
        "_num_vertices",
        "_fwd_offsets",
        "_fwd_targets",
        "_rev_offsets",
        "_rev_targets",
    )

    def __init__(self, num_vertices: int, edges: Iterable[tuple[int, int]]):
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self._num_vertices = num_vertices
        edge_list = list(edges)
        for u, v in edge_list:
            if not (0 <= u < num_vertices and 0 <= v < num_vertices):
                raise ValueError(f"edge ({u}, {v}) out of range [0, {num_vertices})")
        self._fwd_offsets, self._fwd_targets = _build_csr(
            num_vertices, edge_list, reverse=False
        )
        self._rev_offsets, self._rev_targets = _build_csr(
            num_vertices, edge_list, reverse=True
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of edges ``|E|``."""
        return len(self._fwd_targets)

    def vertices(self) -> range:
        """All vertex ids as a range."""
        return range(self._num_vertices)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all edges ``(u, v)`` in CSR (source-major) order."""
        offsets, targets = self._fwd_offsets, self._fwd_targets
        for u in range(self._num_vertices):
            for i in range(offsets[u], offsets[u + 1]):
                yield u, targets[i]

    # ------------------------------------------------------------------
    # Neighborhoods
    # ------------------------------------------------------------------
    def out_neighbors(self, v: int) -> memoryview:
        """Out-neighbor ids ``N_out(v)`` (zero-copy view)."""
        return memoryview(self._fwd_targets)[
            self._fwd_offsets[v] : self._fwd_offsets[v + 1]
        ]

    def in_neighbors(self, v: int) -> memoryview:
        """In-neighbor ids ``N_in(v)`` (zero-copy view)."""
        return memoryview(self._rev_targets)[
            self._rev_offsets[v] : self._rev_offsets[v + 1]
        ]

    def out_degree(self, v: int) -> int:
        """Out-degree ``d_out(v)``."""
        return self._fwd_offsets[v + 1] - self._fwd_offsets[v]

    def in_degree(self, v: int) -> int:
        """In-degree ``d_in(v)``."""
        return self._rev_offsets[v + 1] - self._rev_offsets[v]

    def has_edge(self, u: int, v: int) -> bool:
        """True if the edge ``(u, v)`` is present."""
        return v in self.out_neighbors(u)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "DiGraph":
        """The inverse graph ``Ḡ`` with every edge direction flipped."""
        inverse = DiGraph.__new__(DiGraph)
        inverse._num_vertices = self._num_vertices
        inverse._fwd_offsets = self._rev_offsets
        inverse._fwd_targets = self._rev_targets
        inverse._rev_offsets = self._fwd_offsets
        inverse._rev_targets = self._fwd_targets
        return inverse

    def edge_fraction(self, fraction: float, seed: int = 0) -> "DiGraph":
        """A test graph containing a deterministic prefix of the edges.

        Implements the paper's Exp-6 protocol: edges are split into
        groups and the *i*-th test graph contains the first ``i`` groups.
        Edges are shuffled with ``seed`` before slicing so every group is
        a uniform sample; the vertex set is unchanged.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must lie in [0, 1]")
        import random

        edge_list = list(self.edges())
        random.Random(seed).shuffle(edge_list)
        keep = round(len(edge_list) * fraction)
        return DiGraph(self._num_vertices, edge_list[:keep])

    def induced_subgraph(self, keep: Sequence[bool]) -> "DiGraph":
        """Subgraph induced by vertices with ``keep[v]`` true.

        Vertex ids are preserved (non-kept vertices become isolated),
        which is what the shrinking-graph formulation of TOL needs.
        """
        if len(keep) != self._num_vertices:
            raise ValueError("keep mask must cover every vertex")
        kept_edges = [(u, v) for u, v in self.edges() if keep[u] and keep[v]]
        return DiGraph(self._num_vertices, kept_edges)

    # ------------------------------------------------------------------
    # Size accounting (used by the simulated memory gate)
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Estimated in-memory size of the CSR representation.

        Mirrors what a C++ implementation would allocate: two 8-byte
        offset arrays and two 4-byte target arrays.
        """
        offsets = 2 * 8 * (self._num_vertices + 1)
        targets = 2 * 4 * self.num_edges
        return offsets + targets

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiGraph(n={self._num_vertices}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return self._num_vertices == other._num_vertices and sorted(
            self.edges()
        ) == sorted(other.edges())

    def __hash__(self) -> int:
        return hash((self._num_vertices, self.num_edges))


def _build_csr(
    num_vertices: int, edges: list[tuple[int, int]], reverse: bool
) -> tuple[array, array]:
    """Build (offsets, targets) arrays for one direction."""
    degrees = array("q", bytes(8 * (num_vertices + 1)))
    src_idx, dst_idx = (1, 0) if reverse else (0, 1)
    for edge in edges:
        degrees[edge[src_idx] + 1] += 1
    offsets = degrees  # reuse: prefix sums in place
    for v in range(1, num_vertices + 1):
        offsets[v] += offsets[v - 1]
    targets = array("q", bytes(8 * len(edges)))
    cursor = array("q", offsets[:-1]) if num_vertices else array("q")
    for edge in edges:
        src = edge[src_idx]
        targets[cursor[src]] = edge[dst_idx]
        cursor[src] += 1
    return offsets, targets
