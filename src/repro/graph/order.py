"""Total vertex orders.

TOL and the DRL family all label vertices in decreasing *order*.  The
paper (Example 3) defines

    ord(v) = (d_in(v) + 1) * (d_out(v) + 1) + ID(v) / (n + 1)

so that degree products dominate and vertex ids break ties (a larger id
wins a tie).  :class:`VertexOrder` materializes any strict total order as
a rank array so comparisons are integer lookups instead of float
arithmetic, which both speeds up the inner loops and removes any risk of
floating-point tie ambiguity.
"""

from __future__ import annotations

import random as _random
from array import array
from typing import Iterator, Sequence

from repro.graph.digraph import DiGraph


class VertexOrder:
    """A strict total order over the vertices of a graph.

    ``rank(v)`` is the position of ``v`` in the order: the highest-order
    vertex has rank 0.  ``higher(u, v)`` is true when ``ord(u) > ord(v)``.
    """

    __slots__ = ("_rank", "_by_rank")

    def __init__(self, vertices_by_rank: Sequence[int]):
        n = len(vertices_by_rank)
        self._by_rank = array("q", vertices_by_rank)
        self._rank = array("q", bytes(8 * n))
        seen = bytearray(n)
        for position, v in enumerate(vertices_by_rank):
            if not 0 <= v < n or seen[v]:
                raise ValueError("vertices_by_rank must be a permutation of 0..n-1")
            seen[v] = 1
            self._rank[v] = position

    def __len__(self) -> int:
        return len(self._rank)

    def rank(self, v: int) -> int:
        """Rank of ``v``: 0 is the highest order."""
        return self._rank[v]

    @property
    def ranks(self) -> array:
        """The full rank array (read-only by convention)."""
        return self._rank

    def vertex_at_rank(self, position: int) -> int:
        """The vertex with the ``position``-th highest order."""
        return self._by_rank[position]

    def by_rank(self) -> Iterator[int]:
        """Vertices from highest order to lowest."""
        return iter(self._by_rank)

    def higher(self, u: int, v: int) -> bool:
        """True when ``ord(u) > ord(v)``."""
        return self._rank[u] < self._rank[v]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VertexOrder):
            return NotImplemented
        return self._by_rank == other._by_rank

    def __hash__(self) -> int:
        return hash(tuple(self._by_rank))


def degree_order(graph: DiGraph) -> VertexOrder:
    """The paper's default order (Section II-B).

    ``ord(v) = (d_in(v)+1) * (d_out(v)+1) + ID(v)/(n+1)``; the fractional
    term means a *larger* id wins a degree tie.  Degrees are taken on the
    original graph ``G``.
    """
    ordering = sorted(
        graph.vertices(),
        key=lambda v: ((graph.in_degree(v) + 1) * (graph.out_degree(v) + 1), v),
        reverse=True,
    )
    return VertexOrder(ordering)


def out_degree_order(graph: DiGraph) -> VertexOrder:
    """Ablation order: sort by out-degree only (ids break ties)."""
    ordering = sorted(
        graph.vertices(), key=lambda v: (graph.out_degree(v), v), reverse=True
    )
    return VertexOrder(ordering)


def in_degree_order(graph: DiGraph) -> VertexOrder:
    """Ablation order: sort by in-degree only (ids break ties)."""
    ordering = sorted(
        graph.vertices(), key=lambda v: (graph.in_degree(v), v), reverse=True
    )
    return VertexOrder(ordering)


def degree_sum_order(graph: DiGraph) -> VertexOrder:
    """Ablation order: sort by total degree (ids break ties)."""
    ordering = sorted(
        graph.vertices(),
        key=lambda v: (graph.in_degree(v) + graph.out_degree(v), v),
        reverse=True,
    )
    return VertexOrder(ordering)


def random_order(graph: DiGraph, seed: int = 0) -> VertexOrder:
    """Ablation order: a seeded random permutation."""
    ordering = list(graph.vertices())
    _random.Random(seed).shuffle(ordering)
    return VertexOrder(ordering)


ORDER_STRATEGIES = {
    "degree": degree_order,
    "out-degree": out_degree_order,
    "in-degree": in_degree_order,
    "degree-sum": degree_sum_order,
    "random": random_order,
}
"""Named order strategies for the ablation benchmarks."""
