"""Mutable edge accumulator that produces an immutable :class:`DiGraph`."""

from __future__ import annotations

from typing import Iterable

from repro.graph.digraph import DiGraph


class GraphBuilder:
    """Accumulates edges, then freezes them into a :class:`DiGraph`.

    Parameters
    ----------
    num_vertices:
        Optional fixed vertex count.  When omitted, the count is inferred
        as ``max(vertex id) + 1`` at build time.
    dedup:
        Drop duplicate edges (default ``True``).
    allow_self_loops:
        Keep ``(v, v)`` edges (default ``False``: they are dropped, which
        matches how the reachability datasets are normally cleaned).
    """

    def __init__(
        self,
        num_vertices: int | None = None,
        dedup: bool = True,
        allow_self_loops: bool = False,
    ):
        self._num_vertices = num_vertices
        self._dedup = dedup
        self._allow_self_loops = allow_self_loops
        self._edges: list[tuple[int, int]] = []
        self._seen: set[tuple[int, int]] | None = set() if dedup else None
        self._max_vertex = -1

    def add_edge(self, u: int, v: int) -> "GraphBuilder":
        """Record the directed edge ``(u, v)``; returns self for chaining."""
        if u < 0 or v < 0:
            raise ValueError(f"vertex ids must be non-negative, got ({u}, {v})")
        if u == v and not self._allow_self_loops:
            return self
        if self._seen is not None:
            if (u, v) in self._seen:
                return self
            self._seen.add((u, v))
        self._edges.append((u, v))
        if u > self._max_vertex:
            self._max_vertex = u
        if v > self._max_vertex:
            self._max_vertex = v
        return self

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> "GraphBuilder":
        """Record many edges."""
        for u, v in edges:
            self.add_edge(u, v)
        return self

    @property
    def num_edges(self) -> int:
        """Edges recorded so far."""
        return len(self._edges)

    def build(self) -> DiGraph:
        """Freeze into an immutable :class:`DiGraph`."""
        n = self._num_vertices
        if n is None:
            n = self._max_vertex + 1
        elif self._max_vertex >= n:
            raise ValueError(
                f"edge references vertex {self._max_vertex} "
                f">= num_vertices {n}"
            )
        return DiGraph(n, self._edges)
