"""Deterministic fault injection for the simulated cluster.

The paper's testbed is a 32-node MPI cluster; real deployments of
vertex-centric systems lose nodes mid-build, drop packets, and suffer
stragglers.  A :class:`FaultPlan` describes such a scenario *up front*
— which node dies at which super-step, which nodes run slow, how lossy
the network is — and a seeded RNG makes every run of the same plan
byte-for-byte reproducible.

Fault semantics (see ``docs/simulator.md`` for the full model):

- **Node crashes** (:class:`NodeCrash`): the node dies at the barrier
  of the given super-step.  The super-step's results are discarded, the
  dead node's partition is reassigned to the survivors, the engine
  restores the last checkpoint and replays.  Each crash event fires at
  most once (the replacement assignment does not re-crash).
- **Stragglers** (:class:`Straggler`): the node's per-super-step
  compute time is multiplied by ``slowdown``, which stretches every
  barrier it participates in (BSP waits for the slowest node).
- **Transient message loss / duplication**: each remote message may be
  dropped or duplicated in transit with the given probabilities.  The
  transport retransmits (as MPI/TCP do), so *delivery* is unaffected —
  algorithms stay deterministic — but the duplicate bytes are charged
  to communication time and counted in ``RunStats``.

Because transport faults are repaired and crash recovery replays from
a consistent checkpoint, a build that completes under any fault plan
produces an index **identical** to the fault-free build; only the cost
accounting differs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ReproError


class FaultSpecError(ReproError):
    """A textual fault spec (``--faults``) could not be parsed."""


@dataclass(frozen=True)
class NodeCrash:
    """Node ``node`` dies at the barrier of super-step ``superstep``."""

    node: int
    superstep: int

    def __post_init__(self):
        if self.node < 0:
            raise ValueError("crash node must be non-negative")
        if self.superstep < 1:
            raise ValueError("crash superstep must be at least 1")


@dataclass(frozen=True)
class Straggler:
    """Node ``node`` computes ``slowdown``× slower every super-step."""

    node: int
    slowdown: float

    def __post_init__(self):
        if self.node < 0:
            raise ValueError("straggler node must be non-negative")
        if self.slowdown < 1.0:
            raise ValueError("straggler slowdown must be >= 1")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seeded schedule of failures for one build.

    Attributes
    ----------
    crashes:
        Node-crash events; each fires at most once per cluster
        lifetime, so a DRL_b build whose batches chain multiple engine
        runs sees each crash exactly once.
    stragglers:
        Per-node compute slowdown multipliers (appl. every super-step).
    loss_rate / duplication_rate:
        Per-remote-message probability of transit loss / duplication
        (repaired by retransmission; cost only).
    seed:
        Seed for the transit-fault RNG.
    """

    crashes: tuple[NodeCrash, ...] = ()
    stragglers: tuple[Straggler, ...] = ()
    loss_rate: float = 0.0
    duplication_rate: float = 0.0
    seed: int = 0

    def __post_init__(self):
        for name, rate in (
            ("loss_rate", self.loss_rate),
            ("duplication_rate", self.duplication_rate),
        ):
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1)")
        seen: set[int] = set()
        for crash in self.crashes:
            if crash.node in seen:
                raise ValueError(
                    f"node {crash.node} crashes more than once; a crashed "
                    "node never rejoins the cluster"
                )
            seen.add(crash.node)

    # ------------------------------------------------------------------
    @property
    def has_transit_faults(self) -> bool:
        """True when any message may be lost or duplicated."""
        return self.loss_rate > 0.0 or self.duplication_rate > 0.0

    def validate_for(self, num_nodes: int) -> None:
        """Reject plans that name nodes outside ``[0, num_nodes)`` or
        kill every node (recovery needs at least one survivor)."""
        for event in (*self.crashes, *self.stragglers):
            if event.node >= num_nodes:
                raise ValueError(
                    f"fault plan names node {event.node} but the cluster "
                    f"has only {num_nodes} nodes"
                )
        if len(self.crashes) >= num_nodes:
            raise ValueError(
                f"fault plan crashes all {num_nodes} nodes; at least one "
                "survivor is required to recover"
            )

    def slowdowns(self, num_nodes: int) -> list[float]:
        """Per-node compute multipliers (1.0 for non-stragglers)."""
        factors = [1.0] * num_nodes
        for straggler in self.stragglers:
            factors[straggler.node] = straggler.slowdown
        return factors

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a compact textual spec (the CLI's ``--faults``).

        Comma-separated clauses::

            crash=NODE@SUPERSTEP      may repeat (one per node)
            straggler=NODExFACTOR     may repeat (e.g. straggler=2x4.0)
            loss=RATE                 transit loss probability
            dup=RATE                  transit duplication probability
            seed=N                    RNG seed (default 0)

        Example: ``crash=3@5,straggler=2x4.0,loss=0.01,seed=42``.
        Raises :class:`FaultSpecError` on malformed input.
        """
        crashes: list[NodeCrash] = []
        stragglers: list[Straggler] = []
        rates = {"loss": 0.0, "dup": 0.0}
        seed = 0
        for clause in spec.split(","):
            clause = clause.strip()
            if not clause:
                continue
            key, sep, value = clause.partition("=")
            if not sep:
                raise FaultSpecError(
                    f"bad fault clause {clause!r}: expected key=value"
                )
            try:
                if key == "crash":
                    node, _, step = value.partition("@")
                    crashes.append(NodeCrash(int(node), int(step)))
                elif key == "straggler":
                    node, sep2, factor = value.partition("x")
                    if not sep2:
                        raise ValueError("expected NODExFACTOR")
                    stragglers.append(Straggler(int(node), float(factor)))
                elif key in rates:
                    rates[key] = float(value)
                elif key == "seed":
                    seed = int(value)
                else:
                    raise FaultSpecError(
                        f"unknown fault clause {key!r} (expected crash, "
                        "straggler, loss, dup, or seed)"
                    )
            except FaultSpecError:
                raise
            except ValueError as exc:
                raise FaultSpecError(
                    f"bad fault clause {clause!r}: {exc}"
                ) from exc
        try:
            return cls(
                crashes=tuple(crashes),
                stragglers=tuple(stragglers),
                loss_rate=rates["loss"],
                duplication_rate=rates["dup"],
                seed=seed,
            )
        except ValueError as exc:
            raise FaultSpecError(str(exc)) from exc

    def to_spec(self) -> str:
        """The compact textual spec; inverse of :meth:`parse`.

        ``FaultPlan.parse(plan.to_spec()) == plan`` for every plan, so
        plans can travel through JSON (fuzz-case repro files, configs)
        as one string.
        """
        clauses = [f"crash={c.node}@{c.superstep}" for c in self.crashes]
        clauses += [f"straggler={s.node}x{s.slowdown:g}" for s in self.stragglers]
        if self.loss_rate:
            clauses.append(f"loss={self.loss_rate:g}")
        if self.duplication_rate:
            clauses.append(f"dup={self.duplication_rate:g}")
        if self.seed:
            clauses.append(f"seed={self.seed}")
        return ",".join(clauses)

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = [f"crash node {c.node}@superstep {c.superstep}" for c in self.crashes]
        parts += [f"straggler node {s.node} x{s.slowdown:g}" for s in self.stragglers]
        if self.loss_rate:
            parts.append(f"loss {self.loss_rate:g}")
        if self.duplication_rate:
            parts.append(f"dup {self.duplication_rate:g}")
        return "; ".join(parts) if parts else "no faults"


@dataclass
class FaultInjector:
    """Mutable per-cluster fault state driven by a :class:`FaultPlan`.

    Owned by a :class:`~repro.pregel.engine.Cluster` and shared across
    its runs, so crash events fire once per cluster lifetime (a DRL_b
    build chains several engine runs over the same cluster) and the
    set of dead nodes persists between runs.
    """

    plan: FaultPlan
    num_nodes: int
    dead: set[int] = field(default_factory=set)
    _armed: dict[int, list[int]] = field(default_factory=dict)
    _rng: random.Random = field(default_factory=random.Random)

    def __post_init__(self):
        self.plan.validate_for(self.num_nodes)
        for crash in self.plan.crashes:
            self._armed.setdefault(crash.superstep, []).append(crash.node)
        for nodes in self._armed.values():
            nodes.sort()
        self._rng = random.Random(self.plan.seed)

    # ------------------------------------------------------------------
    @property
    def survivors(self) -> list[int]:
        """Alive node ids, ascending."""
        return [n for n in range(self.num_nodes) if n not in self.dead]

    @property
    def has_pending(self) -> bool:
        """True while crash events remain armed (not yet fired)."""
        return bool(self._armed)

    def crashes_at(self, superstep: int) -> tuple[int, ...]:
        """Consume and return the crash events due at ``superstep``.

        Events fire at most once; events scheduled past the run's
        termination simply never fire.
        """
        nodes = self._armed.pop(superstep, None)
        if not nodes:
            return ()
        fired = tuple(n for n in nodes if n not in self.dead)
        self.dead.update(fired)
        return fired

    def transit_faults(self, remote_messages: int) -> tuple[int, int]:
        """Seeded draw of (lost, duplicated) among ``remote_messages``.

        One RNG draw per remote message per configured fault kind, so
        the stream — and therefore every run's accounting — is exactly
        reproducible for a given plan seed.
        """
        if remote_messages == 0 or not self.plan.has_transit_faults:
            return 0, 0
        lost = duplicated = 0
        loss, dup = self.plan.loss_rate, self.plan.duplication_rate
        rng = self._rng
        if loss:
            for _ in range(remote_messages):
                if rng.random() < loss:
                    lost += 1
        if dup:
            for _ in range(remote_messages):
                if rng.random() < dup:
                    duplicated += 1
        return lost, duplicated

    def reassign(self, node_of, fired: tuple[int, ...]) -> int:
        """Move vertices owned by newly dead nodes onto survivors.

        Mutates ``node_of`` in place (deterministic round-robin over
        the surviving nodes) and returns the number of reassigned
        vertices.  Called both at crash time and at the start of every
        run, so later runs over the same cluster never schedule work on
        a dead node.
        """
        survivors = self.survivors
        if not survivors:
            raise RuntimeError("no surviving nodes to reassign to")
        dead = self.dead
        moved = 0
        for v in range(len(node_of)):
            if node_of[v] in dead:
                node_of[v] = survivors[v % len(survivors)]
                moved += 1
        return moved
