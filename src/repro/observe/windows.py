"""Rolling-window aggregation over flat metric snapshots.

A :class:`~repro.telemetry.metrics.MetricsRegistry` is cumulative: at
any instant it answers "how many requests *so far*", never "how many
in the last window" — which is the question every dashboard, SLO, and
regression detector actually asks.  :class:`RollingAggregator` turns a
sequence of cumulative snapshots into per-window views:

- **deltas** — the change of every series across the window, with
  counter resets (a value moving backwards, e.g. after a process
  restart) detected and treated as "the counter restarted from zero";
- **rates** — deltas divided by the window duration (zero for an
  empty/instantaneous window);
- **EWMA rates** — an exponentially weighted moving average of the
  rates, the smoothed baseline the detectors compare against.

Two detectors build on the windows:

- :class:`HotKeyDetector` flags keys taking an outsized share of a
  window's traffic (a Zipf hot pair, a hammered shard);
- :class:`LatencyRegressionDetector` keeps an EWMA baseline of a
  windowed percentile and flags windows that blow past it, without
  polluting the baseline with the regression itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping


@dataclass(frozen=True)
class WindowSnapshot:
    """One window's view of the metric stream."""

    index: int
    start: float
    end: float
    values: dict[str, float]      # cumulative values at window end
    deltas: dict[str, float]      # per-window change (reset-aware)
    rates: dict[str, float]       # deltas / duration (0 when empty)
    ewma_rates: dict[str, float]  # smoothed rates up to this window
    resets: tuple[str, ...]       # series that moved backwards

    @property
    def duration(self) -> float:
        return self.end - self.start


class RollingAggregator:
    """Turns cumulative snapshots into :class:`WindowSnapshot` windows.

    Call :meth:`step` with a monotonically non-decreasing ``now`` and
    the current cumulative values (e.g. ``registry.as_dict()``); each
    call closes one window.  The first call establishes the baseline:
    its window is instantaneous, its deltas are the values themselves.

    Rates and EWMAs are meaningful for monotone (counter-like) series;
    gauge-like series still get deltas, and a backwards move is
    reported in ``resets`` rather than producing a negative rate.
    """

    def __init__(self, alpha: float = 0.3):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._prev_values: dict[str, float] | None = None
        self._prev_end: float | None = None
        self._ewma: dict[str, float] = {}
        self._index = 0

    def step(self, now: float, values: Mapping[str, float]) -> WindowSnapshot:
        """Close the window ending at ``now`` with cumulative ``values``."""
        start = now if self._prev_end is None else self._prev_end
        if now < start:
            raise ValueError(
                f"snapshot time went backwards: {now} < {start}"
            )
        previous = self._prev_values or {}
        deltas: dict[str, float] = {}
        resets: list[str] = []
        for name, value in values.items():
            before = previous.get(name, 0)
            if value < before:
                # Counter reset: the series restarted from zero, so the
                # whole current value accrued inside this window.
                deltas[name] = value
                resets.append(name)
            else:
                deltas[name] = value - before
        duration = now - start
        if duration > 0:
            rates = {name: delta / duration for name, delta in deltas.items()}
            alpha = self.alpha
            for name, rate in rates.items():
                before = self._ewma.get(name)
                self._ewma[name] = (
                    rate if before is None else alpha * rate + (1 - alpha) * before
                )
        else:
            # Empty/instantaneous window: no rate is defined, and the
            # EWMA baseline must not be dragged toward zero by it.
            rates = {name: 0.0 for name in deltas}
        snapshot = WindowSnapshot(
            index=self._index,
            start=start,
            end=now,
            values=dict(values),
            deltas=deltas,
            rates=rates,
            ewma_rates=dict(self._ewma),
            resets=tuple(resets),
        )
        self._index += 1
        self._prev_values = dict(values)
        self._prev_end = now
        return snapshot

    def step_registry(self, now: float, registry) -> WindowSnapshot:
        """Snapshot a live :class:`MetricsRegistry` (its flat view)."""
        return self.step(now, registry.as_dict())


@dataclass(frozen=True)
class HotKey:
    """One key flagged by :class:`HotKeyDetector`."""

    key: object
    count: int
    share: float


class HotKeyDetector:
    """Flags keys taking an outsized share of one window's traffic.

    A key is *hot* when it holds at least ``share_threshold`` of the
    window's total count and at least ``min_count`` absolute hits (so
    a two-request window cannot declare a 50% "hot key").
    """

    def __init__(self, share_threshold: float = 0.05, min_count: int = 10):
        if not 0 < share_threshold <= 1:
            raise ValueError("share_threshold must be in (0, 1]")
        if min_count < 1:
            raise ValueError("min_count must be positive")
        self.share_threshold = share_threshold
        self.min_count = min_count

    def observe(self, counts: Mapping[object, int]) -> list[HotKey]:
        """The hot keys of one window, hottest first (deterministic)."""
        total = sum(counts.values())
        if not total:
            return []
        hot = [
            HotKey(key, count, count / total)
            for key, count in counts.items()
            if count >= self.min_count and count / total >= self.share_threshold
        ]
        hot.sort(key=lambda h: (-h.count, str(h.key)))
        return hot


class LatencyRegressionDetector:
    """EWMA baseline over a windowed percentile; flags blow-ups.

    Feed it one value per window (e.g. the window's p99).  After
    ``warmup`` windows, a window whose value exceeds ``factor`` times
    the baseline is flagged — and deliberately *not* folded into the
    baseline, so a sustained regression keeps firing instead of
    becoming the new normal.
    """

    def __init__(self, factor: float = 2.0, alpha: float = 0.3, warmup: int = 3):
        if factor <= 1:
            raise ValueError("factor must exceed 1")
        if warmup < 1:
            raise ValueError("warmup must be positive")
        self.factor = factor
        self.alpha = alpha
        self.warmup = warmup
        self._baseline: float | None = None
        self._windows = 0

    @property
    def baseline(self) -> float | None:
        """The current EWMA baseline (None before the first window)."""
        return self._baseline

    def observe(self, value: float) -> bool:
        """Record one window's value; True when it is a regression."""
        self._windows += 1
        baseline = self._baseline
        flagged = (
            baseline is not None
            and self._windows > self.warmup
            and baseline > 0
            and value > self.factor * baseline
        )
        if baseline is None:
            self._baseline = value
        elif not flagged:
            self._baseline = self.alpha * value + (1 - self.alpha) * baseline
        return flagged
