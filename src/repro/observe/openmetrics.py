"""One-shot OpenMetrics text exposition of a dashboard snapshot.

``repro top --openmetrics`` renders a :class:`~repro.observe.dashboard.
DashboardModel` in the `OpenMetrics text format
<https://prometheus.io/docs/specs/om/open_metrics_spec/>`_, so the
simulator's serving counters scrape into any Prometheus-compatible
stack without an exporter sidecar: counters get a ``_total`` sample,
the served-latency distribution becomes a cumulative ``_bucket``
histogram over the telemetry layer's standard latency buckets, and the
exposition ends with the mandatory ``# EOF`` terminator.

The output is deterministic for a given trace (floats use ``repr``,
families are emitted in a fixed order), which is what makes the
golden-file test possible.
"""

from __future__ import annotations

from repro.observe.dashboard import DashboardModel
from repro.telemetry import LATENCY_BUCKETS

#: Metric-family prefix for everything exposed here.
PREFIX = "repro_serve"


def _fmt(value) -> str:
    """A number in OpenMetrics sample syntax (repr: shortest exact)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_openmetrics(model: DashboardModel) -> str:
    """The full exposition for one dashboard snapshot."""
    lines: list[str] = []

    def counter(name: str, help_text: str, value) -> None:
        full = f"{PREFIX}_{name}"
        lines.append(f"# TYPE {full} counter")
        lines.append(f"# HELP {full} {help_text}")
        lines.append(f"{full}_total {_fmt(value)}")

    def gauge(name: str, help_text: str, value) -> None:
        full = f"{PREFIX}_{name}"
        lines.append(f"# TYPE {full} gauge")
        lines.append(f"# HELP {full} {help_text}")
        lines.append(f"{full} {_fmt(value)}")

    counter("requests", "Requests offered to the server.", model.offered)
    counter("served", "Requests answered before any drop point.", model.served)
    counter("shed", "Requests shed at the admission queue.", model.shed)
    counter(
        "deadline_dropped",
        "Requests dropped past their deadline at dequeue.",
        model.deadline_dropped,
    )
    counter("failed", "Requests failed with no serving replica.", model.failed)
    counter("failovers", "Primary failovers observed in the trace.", model.failovers)
    counter("positives", "Served queries whose answer was reachable.", model.positives)
    counter("cache_hits", "Query-cache hits.", model.cache_hits)
    counter("cache_misses", "Query-cache misses.", model.cache_misses)
    counter("store_fetches", "Label-store fetches.", model.store_fetches)
    counter(
        "remote_fetches",
        "Store fetches that crossed to a remote shard.",
        model.remote_fetches,
    )
    counter(
        "confirmed_reads",
        "Stale follower reads confirmed against the leader.",
        model.confirmed_reads,
    )
    counter(
        "stale_reads",
        "Follower reads served stale under the monotonicity guard.",
        model.stale_reads,
    )
    counter(
        "forced_catchups",
        "Follower catch-ups forced by the staleness bound.",
        model.forced_catchups,
    )
    counter("hedges_won", "Hedged reads resolved by the faster replica.", model.hedges_won)
    gauge(
        "makespan_seconds",
        "Simulated span of the serving run.",
        model.makespan_seconds,
    )
    gauge(
        "traced_fraction",
        "Fraction of served requests with a full stage chain.",
        model.traced_fraction,
    )
    gauge(
        "replication_lag_peak",
        "Worst follower lag (ops) sampled during the run.",
        model.replication_lag_peak,
    )
    gauge("open_incidents", "Incident bundles attached to this view.", len(model.incidents))

    # Served latency as a cumulative histogram over the telemetry
    # layer's standard exponential buckets.
    full = f"{PREFIX}_latency_seconds"
    lines.append(f"# TYPE {full} histogram")
    lines.append(f"# HELP {full} Served request latency (simulated seconds).")
    latencies = model.latencies  # already sorted ascending
    cumulative = 0
    i = 0
    for bound in LATENCY_BUCKETS:
        while i < len(latencies) and latencies[i] <= bound:
            cumulative += 1
            i += 1
        lines.append(f'{full}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
    lines.append(f'{full}_bucket{{le="+Inf"}} {len(latencies)}')
    lines.append(f"{full}_count {len(latencies)}")
    lines.append(f"{full}_sum {_fmt(sum(latencies))}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"
