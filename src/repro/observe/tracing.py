"""Request-scoped causal tracing for the serving path.

Aggregate metrics answer "how slow is the p99"; they cannot answer
"*why was this query slow*".  Request tracing closes the gap: every
query admitted by :class:`~repro.serve.pipeline.QueryServer` gets a
**trace ID** that follows it through admission, the query cache, the
sharded label store, and the backend, with a :class:`StageSpan`
recorded at each hop on the *simulated* clock.  Finished traces are
emitted as ``serve.request`` telemetry events, so a ``--trace-out``
JSONL export carries one record per request — including requests shed
at the door or dropped past their deadline, which previously vanished
from every trace.

The same trace IDs are sampled into the latency histogram's buckets as
**exemplars** (see :meth:`repro.telemetry.metrics.Histogram.observe`),
so any bucket of ``serve.latency_seconds`` links back to concrete
requests that landed in it — the Prometheus exemplar pattern, made
deterministic here by a seeded reservoir.

Propagation uses a module-level slot instead of threading a context
argument through every backend: the server sets :data:`ACTIVE` around
the backend call (:func:`begin_request` / :func:`end_request`), and
instrumented components (:class:`~repro.serve.cache.CachingBackend`,
:class:`~repro.serve.store.ShardedLabelStore`,
:class:`~repro.query.service.FallbackBackend`) append their stage to
whatever request is active.  When no request is active — tracing off,
or a bare :class:`~repro.query.service.QueryService` — the cost is one
module-attribute read and a ``None`` check.
"""

from __future__ import annotations

import itertools

#: The request currently executing its backend call, if any.
ACTIVE: "RequestTrace | None" = None

#: Stages the server itself records on every traced request.
SERVER_STAGES = ("admission", "backend")

_run_counter = itertools.count()


class StageSpan:
    """One hop of a request: a named child span with simulated seconds."""

    __slots__ = ("name", "seconds", "attrs")

    def __init__(self, name: str, seconds: float, attrs: dict | None = None):
        self.name = name
        self.seconds = seconds
        self.attrs = attrs

    def to_dict(self) -> dict:
        """Flat JSONL shape: ``{"stage": ..., "seconds": ..., **attrs}``."""
        record = {"stage": self.name, "seconds": self.seconds}
        if self.attrs:
            record.update(self.attrs)
        return record


class RequestTrace:
    """One request's causal record: identity, outcome, and stages.

    The server creates one per admitted request (and one per shed
    request, so drops leave a terminal record too), appends stages as
    the request moves through the pipeline, and emits the finished
    trace as a ``serve.request`` event.
    """

    __slots__ = (
        "trace_id", "source", "target", "arrival",
        "outcome", "latency_seconds", "reason", "stages",
    )

    def __init__(self, trace_id: str, source: int, target: int, arrival: float):
        self.trace_id = trace_id
        self.source = source
        self.target = target
        self.arrival = arrival
        self.outcome = "pending"
        self.latency_seconds = 0.0
        self.reason: str | None = None
        self.stages: list[StageSpan] = []

    def add_stage(self, name: str, seconds: float, **attrs) -> StageSpan:
        """Append a child stage span (attrs are optional annotations)."""
        span = StageSpan(name, seconds, attrs or None)
        self.stages.append(span)
        return span

    def finish(
        self, outcome: str, latency_seconds: float = 0.0,
        reason: str | None = None,
    ) -> "RequestTrace":
        """Mark the terminal outcome (``served`` / ``shed`` / ``deadline``)."""
        self.outcome = outcome
        self.latency_seconds = latency_seconds
        self.reason = reason
        return self

    def stage_names(self) -> list[str]:
        """The stage names in recording order."""
        return [stage.name for stage in self.stages]

    def to_attrs(self) -> dict:
        """The ``serve.request`` event payload (JSONL ``attrs``)."""
        attrs = {
            "trace_id": self.trace_id,
            "source": self.source,
            "target": self.target,
            "arrival": self.arrival,
            "outcome": self.outcome,
            "latency_seconds": self.latency_seconds,
            "stages": [stage.to_dict() for stage in self.stages],
        }
        if self.reason is not None:
            attrs["reason"] = self.reason
        return attrs


class TraceIdGenerator:
    """Deterministic trace IDs: ``<run hex>-<sequence>``.

    Each generator takes the next run number from a process-wide
    counter (explicitly overridable), so concurrent serve runs in one
    session — e.g. serve-bench's cached and uncached rows — never
    collide, while the same program always produces the same IDs.
    """

    __slots__ = ("run_id", "_sequence")

    def __init__(self, run_id: int | None = None):
        self.run_id = next(_run_counter) if run_id is None else run_id
        self._sequence = 0

    def next_id(self) -> str:
        sequence = self._sequence
        self._sequence += 1
        return f"{self.run_id:04x}-{sequence:06d}"


def current_request() -> RequestTrace | None:
    """The request whose backend call is executing, if any."""
    return ACTIVE


def begin_request(trace: RequestTrace) -> None:
    """Install ``trace`` as the active request for backend propagation."""
    global ACTIVE
    ACTIVE = trace


def end_request() -> None:
    """Clear the active request (always pair with :func:`begin_request`)."""
    global ACTIVE
    ACTIVE = None


def add_stage(name: str, seconds: float, **attrs) -> None:
    """Record a stage on the active request, if any (no-op otherwise)."""
    if ACTIVE is not None:
        ACTIVE.add_stage(name, seconds, **attrs)
