"""Declarative SLOs: specs, error budgets, burn-rate alerts.

An SLO turns "the p99 looks fine" into a contract: *a target fraction
of requests must be good*, where *good* is defined by the spec's kind:

- ``availability`` — a request is good when it was **served** (shed
  and deadline-dropped requests are the bad events);
- ``latency`` — a request is good when it was served **within**
  ``threshold_seconds`` (a slow answer and no answer are equally bad).

The complement of the target is the **error budget**: a 99.9%
availability SLO tolerates 0.1% bad requests.  The interesting
operational quantity is the **burn rate** — how fast a window of
traffic consumes that budget:

    burn = (bad fraction in window) / (1 - target)

Burn 1.0 spends exactly the whole budget over the SLO period; burn
14.4 exhausts a 30-day budget in 50 hours — the classic "page now"
threshold.  Alerts here follow the SRE multi-window pattern: an alert
**fires** only when *both* a long and a short window exceed the burn
threshold (the long window gives significance, the short window makes
the alert reset quickly once the incident ends), and **clears** as
soon as the short window drains.

Everything evaluates over ``serve.request`` traces on the simulated
clock, so alert behaviour is deterministic and replayable from a JSONL
export — `repro top --slo spec.json` is the consumer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

#: Spec kinds and their good-request predicates (documented above).
KINDS = ("availability", "latency")


@dataclass(frozen=True)
class BurnWindow:
    """One multi-window burn-rate alert policy."""

    long_seconds: float
    short_seconds: float
    burn_threshold: float
    severity: str = "page"

    def __post_init__(self):
        if self.long_seconds <= 0 or self.short_seconds <= 0:
            raise ValueError("window lengths must be positive")
        if self.short_seconds > self.long_seconds:
            raise ValueError("short window must not exceed the long window")
        if self.burn_threshold <= 0:
            raise ValueError("burn_threshold must be positive")

    def to_dict(self) -> dict:
        return {
            "long_seconds": self.long_seconds,
            "short_seconds": self.short_seconds,
            "burn_threshold": self.burn_threshold,
            "severity": self.severity,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BurnWindow":
        return cls(
            long_seconds=float(data["long_seconds"]),
            short_seconds=float(data["short_seconds"]),
            burn_threshold=float(data["burn_threshold"]),
            severity=str(data.get("severity", "page")),
        )


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective.

    ``target`` is the good-request fraction in (0, 1); ``windows``
    lists the burn-rate alert policies (empty: sensible defaults are
    derived from the trace's span at evaluation time).
    """

    name: str
    kind: str
    target: float
    threshold_seconds: float | None = None
    windows: tuple[BurnWindow, ...] = ()

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r} (use {KINDS})")
        if not 0 < self.target < 1:
            raise ValueError("target must be strictly between 0 and 1")
        if self.kind == "latency" and (
            self.threshold_seconds is None or self.threshold_seconds <= 0
        ):
            raise ValueError("latency SLOs need a positive threshold_seconds")

    @property
    def budget(self) -> float:
        """The error budget: the tolerated bad-request fraction."""
        return 1.0 - self.target

    def is_good(self, outcome: str, latency_seconds: float) -> bool:
        """Whether one finished request counts toward the objective."""
        if outcome != "served":
            return False
        if self.kind == "latency":
            return latency_seconds <= self.threshold_seconds
        return True

    def to_dict(self) -> dict:
        record = {"name": self.name, "kind": self.kind, "target": self.target}
        if self.threshold_seconds is not None:
            record["threshold_seconds"] = self.threshold_seconds
        if self.windows:
            record["windows"] = [w.to_dict() for w in self.windows]
        return record

    @classmethod
    def from_dict(cls, data: dict) -> "SLOSpec":
        try:
            return cls(
                name=str(data["name"]),
                kind=str(data["kind"]),
                target=float(data["target"]),
                threshold_seconds=(
                    float(data["threshold_seconds"])
                    if data.get("threshold_seconds") is not None
                    else None
                ),
                windows=tuple(
                    BurnWindow.from_dict(w) for w in data.get("windows", ())
                ),
            )
        except KeyError as exc:
            raise ValueError(f"SLO spec missing field {exc.args[0]!r}") from exc


def load_slo_specs(path: str | Path) -> list[SLOSpec]:
    """Parse a spec file: ``{"slos": [...]}`` or a bare JSON list."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(data, dict):
        data = data.get("slos", [])
    if not isinstance(data, list) or not data:
        raise ValueError(f"{path}: expected a non-empty list of SLO specs")
    return [SLOSpec.from_dict(item) for item in data]


def default_windows(span_seconds: float) -> tuple[BurnWindow, ...]:
    """Burn policies scaled to the trace's span, for window-less specs.

    Real deployments alert on (1h, 5m, 14.4×) and (6h, 30m, 6×)
    against a 30-day budget; a simulated run's "month" is its whole
    span, so the same 1/720 and 1/120 ratios are applied to it.
    """
    span = max(span_seconds, 1e-12)
    return (
        BurnWindow(span / 30, span / 720, 14.4, severity="page"),
        BurnWindow(span / 5, span / 120, 6.0, severity="ticket"),
    )


@dataclass(frozen=True)
class BurnRate:
    """One alert policy's evaluated burn rates."""

    window: BurnWindow
    long_burn: float
    short_burn: float

    @property
    def firing(self) -> bool:
        threshold = self.window.burn_threshold
        return self.long_burn > threshold and self.short_burn > threshold


@dataclass(frozen=True)
class SLOStatus:
    """One spec's verdict over a set of request traces."""

    spec: SLOSpec
    total: int
    good: int
    bad: int
    compliance: float        # good / total (1.0 when no traffic)
    budget_consumed: float   # (bad fraction) / budget; >1 = blown
    burn_rates: tuple[BurnRate, ...]

    @property
    def firing(self) -> tuple[BurnRate, ...]:
        return tuple(b for b in self.burn_rates if b.firing)

    @property
    def ok(self) -> bool:
        """True when no burn-rate alert is firing."""
        return not self.firing

    def to_dict(self) -> dict:
        return {
            "slo": self.spec.name,
            "kind": self.spec.kind,
            "target": self.spec.target,
            "total": self.total,
            "good": self.good,
            "bad": self.bad,
            "compliance": self.compliance,
            "budget_consumed": self.budget_consumed,
            "ok": self.ok,
            "alerts": [
                {
                    "severity": b.window.severity,
                    "long_burn": b.long_burn,
                    "short_burn": b.short_burn,
                    "burn_threshold": b.window.burn_threshold,
                    "firing": b.firing,
                }
                for b in self.burn_rates
            ],
        }

    def summary(self) -> str:
        """One human-readable line per spec."""
        state = "OK"
        for burn in self.burn_rates:
            if burn.firing:
                state = burn.window.severity.upper()
                break
        worst = max(
            (b.long_burn for b in self.burn_rates), default=0.0
        )
        return (
            f"{self.spec.name}: {state}  compliance {self.compliance:.4%} "
            f"(target {self.spec.target:.4%})  budget used "
            f"{self.budget_consumed:.1%}  worst burn {worst:.1f}x"
        )


def evaluate_slo(
    spec: SLOSpec,
    requests: Sequence,
    end_time: float | None = None,
) -> SLOStatus:
    """Evaluate one spec over finished request traces.

    ``requests`` need ``outcome``, ``arrival``, and ``latency_seconds``
    attributes (e.g. :class:`repro.observe.dashboard.RequestRecord`).
    Requests are placed on the timeline at their arrival, and the burn
    windows end at ``end_time`` (default: the latest arrival), so
    evaluating at successive end times replays how an alert fires and
    later clears.
    """
    samples = sorted(
        (
            (r.arrival, spec.is_good(r.outcome, r.latency_seconds))
            for r in requests
        ),
        key=lambda s: s[0],
    )
    total = len(samples)
    good = sum(1 for _, ok in samples if ok)
    bad = total - good
    compliance = good / total if total else 1.0
    budget_consumed = (bad / total) / spec.budget if total else 0.0
    if end_time is None:
        end_time = samples[-1][0] if samples else 0.0
    span = end_time - (samples[0][0] if samples else 0.0)
    windows = spec.windows or default_windows(span)

    def burn(window_seconds: float) -> float:
        cutoff = end_time - window_seconds
        in_window = [ok for time, ok in samples if cutoff < time <= end_time]
        if not in_window:
            return 0.0
        bad_fraction = in_window.count(False) / len(in_window)
        return bad_fraction / spec.budget

    burn_rates = tuple(
        BurnRate(w, burn(w.long_seconds), burn(w.short_seconds))
        for w in windows
    )
    return SLOStatus(
        spec=spec,
        total=total,
        good=good,
        bad=bad,
        compliance=compliance,
        budget_consumed=budget_consumed,
        burn_rates=burn_rates,
    )


def evaluate_slos(
    specs: Iterable[SLOSpec],
    requests: Sequence,
    end_time: float | None = None,
) -> list[SLOStatus]:
    """Evaluate every spec over the same request traces."""
    return [evaluate_slo(spec, requests, end_time) for spec in specs]
