"""Observability for the serving path: tracing, windows, SLOs, dashboard.

This package turns the flat telemetry layer (:mod:`repro.telemetry`)
into request-level and operator-level answers:

- :mod:`repro.observe.tracing` — request-scoped causal tracing: a
  trace ID per admitted query, per-stage child spans (admission →
  cache → store → backend/fallback), terminal events for shed and
  deadline-dropped requests;
- :mod:`repro.observe.windows` — rolling-window aggregation of
  cumulative metrics (deltas, rates, EWMA) plus hot-key and
  latency-regression detectors;
- :mod:`repro.observe.slo` — declarative SLO specs with error-budget
  accounting and multi-window burn-rate alerts;
- :mod:`repro.observe.dashboard` — the ``repro top`` model: a full
  dashboard (throughput, percentiles, hit/shed rates, shard traffic,
  replication health, alerts, worst traces) computed from an exported
  JSONL trace;
- :mod:`repro.observe.incident` — the flight recorder: a bounded ring
  buffer over the unified event stream, trigger engine landing
  self-contained incident bundles, and a causal engine producing
  ranked root-cause post-mortems (``repro incident``);
- :mod:`repro.observe.openmetrics` — one-shot OpenMetrics text
  exposition of a dashboard snapshot (``repro top --openmetrics``).

Nothing here imports from :mod:`repro.serve`; the serving pipeline
imports *this* package, keeping the dependency one-way.
"""

from repro.observe.dashboard import (
    DashboardModel,
    RequestRecord,
    WindowRow,
    format_request,
    requests_from_records,
)
from repro.observe.incident import (
    FlightRecorder,
    IncidentReport,
    RootCause,
    SLOBurnTrigger,
    TriggerEngine,
    analyze_bundle,
    list_bundles,
    load_bundle,
)
from repro.observe.openmetrics import render_openmetrics
from repro.observe.slo import (
    BurnRate,
    BurnWindow,
    SLOSpec,
    SLOStatus,
    default_windows,
    evaluate_slo,
    evaluate_slos,
    load_slo_specs,
)
from repro.observe.tracing import (
    RequestTrace,
    StageSpan,
    TraceIdGenerator,
    add_stage,
    begin_request,
    current_request,
    end_request,
)
from repro.observe.windows import (
    HotKey,
    HotKeyDetector,
    LatencyRegressionDetector,
    RollingAggregator,
    WindowSnapshot,
)

__all__ = [
    "BurnRate",
    "BurnWindow",
    "DashboardModel",
    "FlightRecorder",
    "HotKey",
    "HotKeyDetector",
    "IncidentReport",
    "LatencyRegressionDetector",
    "RequestRecord",
    "RequestTrace",
    "RollingAggregator",
    "RootCause",
    "SLOBurnTrigger",
    "SLOSpec",
    "SLOStatus",
    "StageSpan",
    "TraceIdGenerator",
    "TriggerEngine",
    "WindowRow",
    "WindowSnapshot",
    "add_stage",
    "analyze_bundle",
    "begin_request",
    "current_request",
    "default_windows",
    "end_request",
    "evaluate_slo",
    "evaluate_slos",
    "format_request",
    "list_bundles",
    "load_bundle",
    "load_slo_specs",
    "render_openmetrics",
    "requests_from_records",
]
