"""The ``repro top`` dashboard: one serving run at a glance.

Builds a :class:`DashboardModel` from an exported JSONL trace — the
``serve.request`` events written by
:class:`~repro.serve.pipeline.QueryServer` under a telemetry session —
and renders it as a live-refreshing console dashboard or a single JSON
snapshot (``--once --json``) for scripting.

The model recomputes throughput, latency percentiles, and the cache
hit rate with exactly the arithmetic
:class:`~repro.serve.pipeline.ServeReport` uses (nearest-rank
percentiles over served latencies), so the dashboard and the bench
report agree to the float on a single-run trace.  On top of the run
totals it layers the window machinery from
:mod:`repro.observe.windows` (per-window rates, p99, hot pairs,
latency-regression flags) and, given specs, the SLO engine from
:mod:`repro.observe.slo`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.observe.slo import SLOSpec, SLOStatus, evaluate_slos
from repro.observe.tracing import SERVER_STAGES
from repro.observe.windows import (
    HotKey,
    HotKeyDetector,
    LatencyRegressionDetector,
    RollingAggregator,
)

#: Default number of windows the run's span is divided into.
DEFAULT_WINDOW_COUNT = 12


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile, identical to the serve pipeline's."""
    if not sorted_values:
        return 0.0
    rank = max(
        0, min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[rank]


@dataclass(frozen=True)
class RequestRecord:
    """One ``serve.request`` event, parsed."""

    trace_id: str
    source: int
    target: int
    arrival: float
    outcome: str
    latency_seconds: float
    reason: str | None
    stages: tuple[dict, ...]
    run: int | None  # the serve.run span id grouping this request

    def stage(self, name: str) -> dict | None:
        """The first stage with the given name, if recorded."""
        for stage in self.stages:
            if stage.get("stage") == name:
                return stage
        return None

    def stage_names(self) -> list[str]:
        return [s.get("stage", "?") for s in self.stages]


def requests_from_records(records) -> list[RequestRecord]:
    """Parse every ``serve.request`` event out of a record stream."""
    requests: list[RequestRecord] = []
    for record in records:
        if record.get("kind") != "event" or record.get("name") != "serve.request":
            continue
        attrs = record.get("attrs", {})
        if "trace_id" not in attrs:
            continue
        requests.append(
            RequestRecord(
                trace_id=attrs["trace_id"],
                source=attrs.get("source", -1),
                target=attrs.get("target", -1),
                arrival=attrs.get("arrival", 0.0),
                outcome=attrs.get("outcome", "?"),
                latency_seconds=attrs.get("latency_seconds", 0.0),
                reason=attrs.get("reason"),
                stages=tuple(attrs.get("stages", ())),
                run=record.get("span"),
            )
        )
    return requests


@dataclass
class WindowRow:
    """One dashboard window: traffic, tail latency, detector flags."""

    index: int
    start: float
    end: float
    offered: int = 0
    served: int = 0
    shed: int = 0
    deadline_dropped: int = 0
    p99_seconds: float = 0.0
    rate: float = 0.0           # served per simulated second
    ewma_rate: float = 0.0
    regression: bool = False
    hot_keys: list[HotKey] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "offered": self.offered,
            "served": self.served,
            "shed": self.shed,
            "deadline_dropped": self.deadline_dropped,
            "p99_seconds": self.p99_seconds,
            "rate": self.rate,
            "ewma_rate": self.ewma_rate,
            "regression": self.regression,
            "hot_keys": [
                {"key": list(h.key), "count": h.count, "share": h.share}
                for h in self.hot_keys
            ],
        }


@dataclass
class DashboardModel:
    """Everything ``repro top`` shows, computed once from a trace."""

    requests: list[RequestRecord]
    runs: int
    offered: int
    served: int
    shed: int
    deadline_dropped: int
    failed: int
    failovers: int
    positives: int
    makespan_seconds: float
    latencies: list[float]  # served, sorted
    cache_hits: int
    cache_misses: int
    store_fetches: int
    remote_fetches: int
    shard_loads: dict[int, int]
    stage_counts: dict[str, int]
    traced_fraction: float
    windows: list[WindowRow]
    worst: list[RequestRecord]
    slos: list[SLOStatus]
    # Replication health, rebuilt from stage attrs + replica.lag events.
    confirmed_reads: int = 0
    stale_reads: int = 0
    forced_catchups: int = 0
    hedges_won: int = 0
    replication_lag_peak: int = 0
    group_lag_peaks: dict[str, int] = field(default_factory=dict)
    #: Open incident summaries (see repro.observe.incident), attached
    #: by the CLI when ``--incidents`` points at a bundle directory.
    incidents: list[dict] = field(default_factory=list)

    # -- construction --------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records,
        *,
        run: int | None = None,
        window_seconds: float | None = None,
        window_count: int = DEFAULT_WINDOW_COUNT,
        specs: list[SLOSpec] | None = None,
        slowest: int = 5,
        hot_share: float = 0.05,
        regression_factor: float = 2.0,
        incidents: list[dict] | None = None,
    ) -> "DashboardModel":
        """Build the model from raw trace records.

        ``run`` selects the n-th serving run in the file (1-based, in
        order of appearance) when one trace holds several — e.g.
        serve-bench's cached and uncached rows; the default aggregates
        them all.
        """
        records = list(records)
        failovers = sum(
            1
            for record in records
            if record.get("kind") == "event"
            and record.get("name") == "serve.failover"
        )
        # Replicator lag samples: the store emits one replica.lag event
        # whenever the worst follower lag changes, carrying per-group
        # lags; the dashboard keeps the peaks.
        replication_lag_peak = 0
        group_lag_peaks: dict[str, int] = {}
        for record in records:
            if record.get("kind") != "event" or record.get("name") != "replica.lag":
                continue
            attrs = record.get("attrs", {})
            replication_lag_peak = max(replication_lag_peak, attrs.get("lag", 0))
            for group, lag in (attrs.get("groups") or {}).items():
                group_lag_peaks[group] = max(group_lag_peaks.get(group, 0), lag)
        requests = requests_from_records(records)
        run_ids: list = []
        for request in requests:
            if request.run not in run_ids:
                run_ids.append(request.run)
        if run is not None:
            if not 1 <= run <= len(run_ids):
                raise ValueError(
                    f"trace holds {len(run_ids)} serving run(s); "
                    f"--run {run} is out of range"
                )
            wanted = run_ids[run - 1]
            requests = [r for r in requests if r.run == wanted]
            runs = 1
        else:
            runs = len(run_ids)

        served_requests = [r for r in requests if r.outcome == "served"]
        shed = sum(1 for r in requests if r.outcome == "shed")
        deadline_dropped = sum(1 for r in requests if r.outcome == "deadline")
        failed = sum(1 for r in requests if r.outcome == "error")
        latencies = sorted(r.latency_seconds for r in served_requests)
        makespan = max(
            (r.arrival + r.latency_seconds for r in served_requests),
            default=max((r.arrival for r in requests), default=0.0),
        )

        cache_hits = cache_misses = store_fetches = remote_fetches = 0
        positives = 0
        confirmed_reads = forced_catchups = hedges_won = stale_reads = 0
        shard_loads: dict[int, int] = {}
        stage_counts: dict[str, int] = {}
        fully_traced = 0
        server_stages = set(SERVER_STAGES)
        for request in requests:
            seen = set()
            lagged_store = False
            for stage in request.stages:
                name = stage.get("stage", "?")
                seen.add(name)
                stage_counts[name] = stage_counts.get(name, 0) + 1
                if name == "cache":
                    if stage.get("hit"):
                        cache_hits += 1
                    else:
                        cache_misses += 1
                elif name == "store":
                    store_fetches += 1
                    if stage.get("hedge_won"):
                        hedges_won += 1
                    if stage.get("lag"):
                        lagged_store = True
                    home = stage.get("home")
                    if home is not None:
                        shard_loads[home] = shard_loads.get(home, 0) + 1
                    remote = stage.get("remote")
                    if remote is not None:
                        remote_fetches += 1
                        shard_loads[remote] = shard_loads.get(remote, 0) + 1
                elif name == "backend" and stage.get("answer"):
                    positives += 1
            if "confirm" in seen:
                confirmed_reads += 1
            if "catchup" in seen:
                forced_catchups += 1
            # A guarded stale read: the store served from a lagging
            # follower and monotonicity proved no confirmation needed.
            if lagged_store and "confirm" not in seen and "catchup" not in seen:
                stale_reads += 1
            if request.outcome == "served" and server_stages <= seen:
                fully_traced += 1
        traced_fraction = (
            fully_traced / len(served_requests) if served_requests else 0.0
        )

        windows = cls._build_windows(
            requests,
            makespan,
            window_seconds,
            window_count,
            hot_share,
            regression_factor,
        )
        worst = sorted(
            served_requests, key=lambda r: (-r.latency_seconds, r.trace_id)
        )[: max(slowest, 0)]
        # SLO burn windows end at the latest *arrival* (the timeline
        # requests live on), not the makespan: the server may finish
        # draining long after the last request arrived, and a burn
        # window past the arrivals would always be empty.
        slos = evaluate_slos(specs, requests) if specs else []

        return cls(
            requests=requests,
            runs=runs,
            offered=len(requests),
            served=len(served_requests),
            shed=shed,
            deadline_dropped=deadline_dropped,
            failed=failed,
            failovers=failovers,
            positives=positives,
            makespan_seconds=makespan,
            latencies=latencies,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            store_fetches=store_fetches,
            remote_fetches=remote_fetches,
            shard_loads=shard_loads,
            stage_counts=stage_counts,
            traced_fraction=traced_fraction,
            windows=windows,
            worst=worst,
            slos=slos,
            confirmed_reads=confirmed_reads,
            stale_reads=stale_reads,
            forced_catchups=forced_catchups,
            hedges_won=hedges_won,
            replication_lag_peak=replication_lag_peak,
            group_lag_peaks=dict(sorted(group_lag_peaks.items())),
            incidents=list(incidents or []),
        )

    @staticmethod
    def _build_windows(
        requests: list[RequestRecord],
        makespan: float,
        window_seconds: float | None,
        window_count: int,
        hot_share: float,
        regression_factor: float,
    ) -> list[WindowRow]:
        if not requests or makespan <= 0:
            return []
        start = min(r.arrival for r in requests)
        span = makespan - start
        if span <= 0:
            return []
        if window_seconds is None or window_seconds <= 0:
            window_seconds = span / window_count
        count = max(1, -(-span // window_seconds).__int__())
        rows = [
            WindowRow(
                index=i,
                start=start + i * window_seconds,
                end=min(start + (i + 1) * window_seconds, makespan),
            )
            for i in range(count)
        ]
        buckets: list[list[RequestRecord]] = [[] for _ in rows]
        for request in requests:
            i = min(int((request.arrival - start) / window_seconds), count - 1)
            buckets[i].append(request)
        aggregator = RollingAggregator()
        regressions = LatencyRegressionDetector(factor=regression_factor)
        hot = HotKeyDetector(share_threshold=hot_share)
        cumulative_served = 0
        for row, bucket in zip(rows, buckets):
            row.offered = len(bucket)
            window_latencies = sorted(
                r.latency_seconds for r in bucket if r.outcome == "served"
            )
            row.served = len(window_latencies)
            row.shed = sum(1 for r in bucket if r.outcome == "shed")
            row.deadline_dropped = sum(
                1 for r in bucket if r.outcome == "deadline"
            )
            row.p99_seconds = _percentile(window_latencies, 0.99)
            cumulative_served += row.served
            snapshot = aggregator.step(row.end, {"served": cumulative_served})
            row.rate = snapshot.rates.get("served", 0.0)
            row.ewma_rate = snapshot.ewma_rates.get("served", 0.0)
            row.regression = (
                regressions.observe(row.p99_seconds) if window_latencies else False
            )
            pair_counts: dict[tuple[int, int], int] = {}
            for request in bucket:
                key = (request.source, request.target)
                pair_counts[key] = pair_counts.get(key, 0) + 1
            row.hot_keys = hot.observe(pair_counts)
        return rows

    # -- derived numbers ----------------------------------------------
    @property
    def throughput(self) -> float:
        if not self.makespan_seconds:
            return 0.0
        return self.served / self.makespan_seconds

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    def percentile(self, fraction: float) -> float:
        return _percentile(self.latencies, fraction)

    @property
    def firing_alerts(self) -> list[dict]:
        alerts = []
        for status in self.slos:
            for burn in status.firing:
                alerts.append(
                    {
                        "slo": status.spec.name,
                        "severity": burn.window.severity,
                        "long_burn": burn.long_burn,
                        "short_burn": burn.short_burn,
                        "burn_threshold": burn.window.burn_threshold,
                    }
                )
        return alerts

    # -- output --------------------------------------------------------
    def to_json(self) -> dict:
        """The ``repro top --once --json`` payload."""
        return {
            "runs": self.runs,
            "offered": self.offered,
            "served": self.served,
            "shed": self.shed,
            "deadline_dropped": self.deadline_dropped,
            "failed": self.failed,
            "failovers": self.failovers,
            "positives": self.positives,
            "makespan_seconds": self.makespan_seconds,
            "throughput": self.throughput,
            "p50_seconds": self.percentile(0.50),
            "p99_seconds": self.percentile(0.99),
            "p999_seconds": self.percentile(0.999),
            "max_seconds": self.latencies[-1] if self.latencies else 0.0,
            "hit_rate": self.cache_hit_rate,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "shed_rate": self.shed_rate,
            "store_fetches": self.store_fetches,
            "remote_fetches": self.remote_fetches,
            "shard_loads": {
                str(shard): count
                for shard, count in sorted(self.shard_loads.items())
            },
            "stage_counts": dict(sorted(self.stage_counts.items())),
            "traced_fraction": self.traced_fraction,
            "replication": {
                "confirmed_reads": self.confirmed_reads,
                "stale_reads": self.stale_reads,
                "forced_catchups": self.forced_catchups,
                "hedges_won": self.hedges_won,
                "lag_peak": self.replication_lag_peak,
                "group_lag_peaks": dict(self.group_lag_peaks),
            },
            "incidents": list(self.incidents),
            "windows": [w.to_dict() for w in self.windows],
            "slos": [s.to_dict() for s in self.slos],
            "alerts": self.firing_alerts,
            "worst": [
                {
                    "trace_id": r.trace_id,
                    "source": r.source,
                    "target": r.target,
                    "latency_seconds": r.latency_seconds,
                    "stages": list(r.stages),
                }
                for r in self.worst
            ],
        }

    def render(self) -> str:
        """The console dashboard."""
        lines = [
            f"serve dashboard — {self.offered} requests"
            + (f" across {self.runs} runs" if self.runs > 1 else ""),
            f"  throughput {self.throughput:,.0f} q/s over "
            f"{self.makespan_seconds:.3e} s",
            f"  served {self.served}/{self.offered} "
            f"({1 - self.shed_rate - (self.deadline_dropped / self.offered if self.offered else 0):.1%})"
            f"   shed {self.shed} ({self.shed_rate:.1%})"
            f"   deadline {self.deadline_dropped}"
            + (f"   failed {self.failed}" if self.failed else "")
            + (f"   failovers {self.failovers}" if self.failovers else ""),
            f"  latency p50 {self.percentile(0.50):.2e}s  "
            f"p99 {self.percentile(0.99):.2e}s  "
            f"p999 {self.percentile(0.999):.2e}s  "
            f"max {(self.latencies[-1] if self.latencies else 0.0):.2e}s",
        ]
        lookups = self.cache_hits + self.cache_misses
        if lookups:
            lines.append(
                f"  cache {self.cache_hit_rate:.1%} hit "
                f"({self.cache_hits} hits / {self.cache_misses} misses)"
            )
        if self.shard_loads:
            loads = [
                f"s{shard}:{count}"
                for shard, count in sorted(self.shard_loads.items())
            ]
            lines.append(
                f"  shards: {self.store_fetches} fetches "
                f"({self.remote_fetches} remote)  " + " ".join(loads)
            )
        if (
            self.confirmed_reads
            or self.stale_reads
            or self.forced_catchups
            or self.hedges_won
            or self.replication_lag_peak
        ):
            groups = " ".join(
                f"g{group}:{lag}"
                for group, lag in sorted(self.group_lag_peaks.items())
            )
            lines.append(
                f"  replication: lag peak {self.replication_lag_peak}"
                + (f" ({groups})" if groups else "")
                + f"  confirmed {self.confirmed_reads}"
                f"  stale {self.stale_reads}"
                f"  catchups {self.forced_catchups}"
                f"  hedges won {self.hedges_won}"
            )
        lines.append(f"  traced: {self.traced_fraction:.1%} of served requests")

        if self.incidents:
            lines.append("")
            lines.append(f"Open incidents ({len(self.incidents)})")
            for incident in self.incidents:
                lines.append(
                    f"  {incident.get('id', '?')}  {incident.get('kind', '?')} "
                    f"at {incident.get('at', 0.0):.3e}s"
                    + (
                        f"  -> {incident['root_cause']}"
                        if incident.get("root_cause")
                        else ""
                    )
                )

        if self.windows:
            lines.append("")
            lines.append(
                f"Windows ({len(self.windows)} x "
                f"{self.windows[0].end - self.windows[0].start:.2e} s)"
            )
            lines.append(
                "    # |  served |    shed |      q/s |      p99 | flags"
            )
            for row in self.windows:
                flags = []
                if row.regression:
                    flags.append("REGRESSION")
                for hot_key in row.hot_keys[:2]:
                    flags.append(f"hot{hot_key.key}@{hot_key.share:.0%}")
                lines.append(
                    f"  {row.index:>3d} | {row.served:>7d} | {row.shed:>7d} | "
                    f"{row.rate:>8.2e} | {row.p99_seconds:>8.2e} | "
                    + (" ".join(flags) if flags else "-")
                )

        if self.slos:
            lines.append("")
            lines.append("SLOs")
            for status in self.slos:
                lines.append("  " + status.summary())

        if self.worst:
            lines.append("")
            lines.append("Worst requests")
            for request in self.worst:
                lines.append("  " + format_request(request))
        return "\n".join(lines)


def format_request(request: RequestRecord) -> str:
    """One request with its per-stage breakdown, as a single line."""
    stages = []
    for stage in request.stages:
        extras = [
            f"{key}={value}"
            for key, value in stage.items()
            if key not in ("stage", "seconds")
        ]
        text = f"{stage.get('stage', '?')} {stage.get('seconds', 0.0):.2e}s"
        if extras:
            text += " (" + " ".join(extras) + ")"
        stages.append(text)
    head = (
        f"{request.trace_id}  q({request.source},{request.target})  "
        f"{request.outcome}"
    )
    if request.reason:
        head += f"[{request.reason}]"
    head += f"  latency {request.latency_seconds:.2e}s"
    if stages:
        head += "  |  " + " -> ".join(stages)
    return head
