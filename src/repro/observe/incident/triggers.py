"""Turns recorder events into self-contained incident bundles.

A flight recorder is only useful if something *lands* its contents
when they matter.  :class:`TriggerEngine` listens to a
:class:`~repro.observe.incident.recorder.FlightRecorder` and snapshots
the buffer into an **incident bundle** — one JSON file, written
atomically, holding the trigger, its details, and every buffered event
— whenever one of the ISSUE's four tripwires fires:

``failover``
    A ``serve.failover`` event landed: a shard just lost its primary.
``shard_unavailable``
    A request died with no serving replica (a ``serve.request``
    terminal with outcome ``error``).
``slo_burn``
    An online multi-window burn-rate alert fired.  The math mirrors
    :mod:`repro.observe.slo` — an alert fires only when *both* the
    long and the short window exceed the burn threshold — but runs
    incrementally over the request stream instead of batch over a
    finished trace, so the bundle is cut while the regression window
    is still in the buffer.
``scenario_assertion``
    The scenario runner reports a failed expectation via
    :meth:`TriggerEngine.fire` after grading.

Each trigger kind has an independent **cooldown** so one incident does
not shatter into dozens of near-identical bundles: re-fires inside the
cooldown are counted in :attr:`TriggerEngine.suppressed` instead of
written.  Bundle ids are deterministic (``incident-001-failover``),
so scenario runs are replayable byte for byte.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import deque
from pathlib import Path
from typing import Sequence

from repro.observe.incident.recorder import FlightRecorder
from repro.observe.slo import SLOSpec

#: Bundle kinds the engine can produce, in the order they tend to
#: appear during one incident.
TRIGGER_KINDS = ("slo_burn", "failover", "shard_unavailable", "scenario_assertion")

#: The classic "page now" burn threshold (see repro.observe.slo).
DEFAULT_BURN_THRESHOLD = 14.4

#: Don't evaluate a burn window until it holds this many requests —
#: one bad request out of one is burn 1/budget, which is noise.
MIN_WINDOW_SAMPLES = 20


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write JSON via rename so a crash never leaves a torn bundle."""
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, indent=2, default=str) + "\n"
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class SLOBurnTrigger:
    """Incremental multi-window burn-rate evaluation for one spec.

    Feed it every finished request via :meth:`observe`; it returns the
    burn state dict the first time both windows exceed the threshold
    (and again after the windows drain and re-burn — the caller's
    cooldown decides what to do with repeats).
    """

    def __init__(
        self,
        spec: SLOSpec,
        long_seconds: float,
        short_seconds: float,
        burn_threshold: float = DEFAULT_BURN_THRESHOLD,
        min_samples: int = MIN_WINDOW_SAMPLES,
    ):
        if long_seconds <= 0 or short_seconds <= 0:
            raise ValueError("window lengths must be positive")
        if short_seconds > long_seconds:
            raise ValueError("short window must not exceed the long window")
        self.spec = spec
        self.long_seconds = long_seconds
        self.short_seconds = short_seconds
        self.burn_threshold = burn_threshold
        self.min_samples = min_samples
        # (at, good) samples per window, plus running bad counts.
        self._long: deque[tuple[float, bool]] = deque()
        self._short: deque[tuple[float, bool]] = deque()
        self._long_bad = 0
        self._short_bad = 0

    def _burn(self, window: deque, bad: int) -> float:
        if len(window) < self.min_samples:
            return 0.0
        return (bad / len(window)) / self.spec.budget

    def observe(self, at: float, outcome: str, latency_seconds: float) -> dict | None:
        """Account one finished request; returns burn state when firing."""
        good = self.spec.is_good(outcome, latency_seconds)
        for window, length in ((self._long, self.long_seconds),
                               (self._short, self.short_seconds)):
            window.append((at, good))
            cutoff = at - length
            while window and window[0][0] <= cutoff:
                _, was_good = window.popleft()
                if not was_good:
                    if window is self._long:
                        self._long_bad -= 1
                    else:
                        self._short_bad -= 1
        if not good:
            self._long_bad += 1
            self._short_bad += 1
        long_burn = self._burn(self._long, self._long_bad)
        short_burn = self._burn(self._short, self._short_bad)
        if long_burn > self.burn_threshold and short_burn > self.burn_threshold:
            return {
                "slo": self.spec.name,
                "kind": self.spec.kind,
                "target": self.spec.target,
                "long_burn": long_burn,
                "short_burn": short_burn,
                "long_seconds": self.long_seconds,
                "short_seconds": self.short_seconds,
                "burn_threshold": self.burn_threshold,
            }
        return None


class TriggerEngine:
    """Watches a recorder and lands incident bundles when tripped.

    Parameters
    ----------
    recorder:
        The :class:`FlightRecorder` to snapshot.  Attach the engine
        with ``recorder.add_listener(engine.observe)``.
    directory:
        Where bundles land (created on first write).
    slos:
        Specs to track online; window lengths come from ``span_hint``
        (the run's expected simulated span) using the same 1/30 and
        1/720 ratios as :func:`repro.observe.slo.default_windows`.
    span_hint:
        Expected simulated span of the run; also sets the default
        per-kind cooldown (one long window).
    cooldown_seconds:
        Minimum simulated time between two bundles of the same kind.
    context:
        Free-form dict stamped into every bundle (scenario name, ...).
    """

    def __init__(
        self,
        recorder: FlightRecorder,
        directory: str | Path,
        slos: Sequence[SLOSpec] = (),
        span_hint: float | None = None,
        burn_threshold: float = DEFAULT_BURN_THRESHOLD,
        cooldown_seconds: float | None = None,
        context: dict | None = None,
    ):
        self.recorder = recorder
        self.directory = Path(directory)
        self.context = dict(context or {})
        span = span_hint if span_hint and span_hint > 0 else 1.0
        if cooldown_seconds is None:
            cooldown_seconds = span / 30
        self.cooldown_seconds = cooldown_seconds
        self._burn_trackers = [
            SLOBurnTrigger(spec, span / 30, span / 720, burn_threshold)
            for spec in slos
        ]
        #: One summary dict per written bundle, in firing order.
        self.incidents: list[dict] = []
        #: Re-fires swallowed by the cooldown, per trigger kind.
        self.suppressed: dict[str, int] = {}
        self._last_fired: dict[str, float] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    def observe(self, record: dict) -> None:
        """Recorder listener: inspect one record, maybe cut a bundle."""
        name = record.get("event")
        at = record.get("at", 0.0)
        if name == "serve.failover":
            self.fire(
                "failover",
                at,
                details={
                    k: record[k]
                    for k in ("shard", "from_replica", "to_replica", "version")
                    if k in record
                },
                evidence=[record["id"]],
            )
        elif name == "serve.request":
            outcome = record.get("outcome")
            if outcome == "error":
                self.fire(
                    "shard_unavailable",
                    at,
                    details={
                        k: record[k]
                        for k in ("trace_id", "shard", "reason")
                        if k in record
                    },
                    evidence=[record["id"]],
                )
            for tracker in self._burn_trackers:
                state = tracker.observe(
                    record.get("arrival", at),
                    outcome,
                    record.get("latency_seconds", 0.0),
                )
                if state is not None:
                    self.fire("slo_burn", at, details=state, evidence=[record["id"]])

    # ------------------------------------------------------------------
    def fire(
        self,
        kind: str,
        at: float,
        details: dict | None = None,
        evidence: Sequence[int] = (),
    ) -> Path | None:
        """Cut a bundle now (subject to the per-kind cooldown)."""
        last = self._last_fired.get(kind)
        if last is not None and at - last < self.cooldown_seconds:
            self.suppressed[kind] = self.suppressed.get(kind, 0) + 1
            return None
        self._last_fired[kind] = at
        self._seq += 1
        bundle_id = f"incident-{self._seq:03d}-{kind}"
        bundle = {
            "id": bundle_id,
            "kind": kind,
            "at": at,
            "details": dict(details or {}),
            "evidence": list(evidence),
            "context": dict(self.context),
            "recorder": {
                "recorded": self.recorder.recorded,
                "dropped": self.recorder.dropped,
                "bytes_used": self.recorder.bytes_used,
                "max_bytes": self.recorder.max_bytes,
                "window_seconds": self.recorder.window_seconds,
            },
            "events": self.recorder.events(),
        }
        path = self.directory / f"{bundle_id}.json"
        _atomic_write_json(path, bundle)
        self.incidents.append(
            {"id": bundle_id, "kind": kind, "at": at, "path": str(path)}
        )
        return path
