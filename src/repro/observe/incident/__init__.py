"""Flight recorder + automated incident analysis.

The serving stack's *black box*: a bounded
:class:`~repro.observe.incident.recorder.FlightRecorder` ring buffer
over the unified event stream, a
:class:`~repro.observe.incident.triggers.TriggerEngine` that lands
self-contained incident bundles when an SLO burns, a failover happens,
a shard goes unavailable, or a scenario assertion fails, and a causal
engine (:func:`~repro.observe.incident.causal.analyze_bundle`) that
walks a bundle backwards into a ranked post-mortem.  Surfaced on the
command line as ``repro incident list|show|report``.

Like the rest of :mod:`repro.observe`, nothing here imports from
:mod:`repro.serve`: the pipeline, the replicated store, and the
scenario runner push events *into* the recorder.
"""

from repro.observe.incident.causal import (
    IncidentReport,
    RootCause,
    TimelineEntry,
    analyze_bundle,
)
from repro.observe.incident.recorder import FlightRecorder
from repro.observe.incident.report import (
    find_bundle,
    format_bundle_row,
    list_bundles,
    load_bundle,
    render_bundle,
    render_incident_report,
    summarize_bundle,
)
from repro.observe.incident.triggers import (
    TRIGGER_KINDS,
    SLOBurnTrigger,
    TriggerEngine,
)

__all__ = [
    "FlightRecorder",
    "IncidentReport",
    "RootCause",
    "SLOBurnTrigger",
    "TRIGGER_KINDS",
    "TimelineEntry",
    "TriggerEngine",
    "analyze_bundle",
    "find_bundle",
    "format_bundle_row",
    "list_bundles",
    "load_bundle",
    "render_bundle",
    "render_incident_report",
    "summarize_bundle",
]
