"""Bundle IO and the ``repro incident`` presentation layer.

Bundles are plain JSON files written atomically by the trigger engine;
this module loads them back, lists a directory of them (oldest first,
by trigger time), and renders the one-line / full-dump / post-mortem
views behind ``repro incident list|show|report``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.observe.incident.causal import analyze_bundle

#: Events shown by ``repro incident show`` before truncating.
SHOW_EVENT_LIMIT = 40


def load_bundle(path: str | Path) -> dict:
    """Read one bundle back from disk."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "id" not in data or "events" not in data:
        raise ValueError(f"{path}: not an incident bundle")
    return data


def list_bundles(directory: str | Path) -> list[tuple[Path, dict]]:
    """Every readable bundle under ``directory``, by trigger time."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    bundles = []
    for path in sorted(directory.glob("*.json")):
        try:
            bundles.append((path, load_bundle(path)))
        except (ValueError, json.JSONDecodeError):
            continue  # a directory may hold non-bundle JSON; skip it
    bundles.sort(key=lambda item: (item[1].get("at", 0.0), item[1].get("id", "")))
    return bundles


def find_bundle(ref: str, directory: str | Path) -> Path:
    """Resolve a bundle reference: a path, an id, or an id prefix."""
    as_path = Path(ref)
    if as_path.is_file():
        return as_path
    directory = Path(directory)
    exact = directory / f"{ref}.json"
    if exact.is_file():
        return exact
    matches = [
        path
        for path, bundle in list_bundles(directory)
        if bundle.get("id", "").startswith(ref)
    ]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise FileNotFoundError(
            f"no incident bundle {ref!r} under {directory}"
        )
    names = ", ".join(p.stem for p in matches)
    raise FileNotFoundError(f"ambiguous incident {ref!r}: matches {names}")


def summarize_bundle(bundle: dict) -> dict:
    """The compact row ``repro incident list`` and ``repro top`` show."""
    report = analyze_bundle(bundle)
    cause = report.root_cause
    return {
        "id": bundle.get("id", "?"),
        "kind": bundle.get("kind", "?"),
        "at": bundle.get("at", 0.0),
        "events": len(bundle.get("events", ())),
        "context": dict(bundle.get("context", {})),
        "root_cause": cause.description if cause else None,
        "root_cause_kind": cause.kind if cause else None,
    }


def format_bundle_row(summary: dict) -> str:
    """One incident as a single aligned console line."""
    context = summary.get("context") or {}
    where = context.get("scenario") or context.get("run") or ""
    line = (
        f"{summary['id']:<34} {summary['kind']:<18} "
        f"at {summary['at']:.3e}s  {summary['events']:>5} events"
    )
    if where:
        line += f"  [{where}]"
    if summary.get("root_cause"):
        line += f"\n{'':<34} -> {summary['root_cause']}"
    return line


def render_bundle(bundle: dict) -> str:
    """The ``repro incident show`` dump: header, details, raw events."""
    lines = [
        f"incident {bundle.get('id', '?')}  kind={bundle.get('kind', '?')}  "
        f"at {bundle.get('at', 0.0):.3e}s"
    ]
    for key, value in sorted((bundle.get("context") or {}).items()):
        lines.append(f"  {key}: {value}")
    details = bundle.get("details") or {}
    if details:
        lines.append("  trigger details:")
        for key, value in sorted(details.items()):
            lines.append(f"    {key}: {value}")
    recorder = bundle.get("recorder") or {}
    if recorder:
        lines.append(
            f"  recorder: {recorder.get('recorded', '?')} recorded, "
            f"{recorder.get('dropped', '?')} dropped, "
            f"{recorder.get('bytes_used', '?')}/{recorder.get('max_bytes', '?')} "
            "bytes"
        )
    events = bundle.get("events", [])
    shown = events[-SHOW_EVENT_LIMIT:]
    lines.append(f"  events ({len(events)} buffered"
                 + (f", last {len(shown)} shown" if len(shown) < len(events) else "")
                 + "):")
    for event in shown:
        attrs = {
            k: v
            for k, v in event.items()
            if k not in ("id", "at", "event", "stages")
        }
        text = " ".join(f"{k}={v}" for k, v in attrs.items())
        lines.append(
            f"    #{event.get('id', '?'):<6} {event.get('at', 0.0):.3e}s  "
            f"{event.get('event', '?')}" + (f"  {text}" if text else "")
        )
    return "\n".join(lines)


def render_incident_report(bundle: dict) -> str:
    """The ``repro incident report`` post-mortem view."""
    return analyze_bundle(bundle).render()
