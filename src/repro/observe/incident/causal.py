"""Automated post-mortems: walk a bundle backwards to its cause.

Given an incident bundle (:mod:`repro.observe.incident.triggers`),
:func:`analyze_bundle` reconstructs the chain a human on-call would
hand-derive from the trigger backwards:

    alert → regression window → affected shard/replica →
    probe failures and failover → staleness catch-up or injected fault

and emits an :class:`IncidentReport`: a merged **timeline** of the
notable events, plus **ranked root-cause candidates**, each carrying a
score, the supporting event ids from the bundle, a cause→trigger
chain, and trace-id exemplars of affected requests.  Candidate kinds,
strongest evidence first:

``injected_fault``
    A ``serve.replica_crash`` preceding the trigger — scored highest
    when it hit the affected shard/replica, and chained through the
    suspicion and failover events it produced.
``replica_slow``
    A ``serve.replica_slow`` (factor > 1) still active at the trigger.
``replication_lag``
    Non-zero replicator lag samples and forced catch-up / leader
    confirmation stages in the affected window.
``overload``
    Queue-full sheds inside the regression window (the usual culprit
    behind an SLO burn with healthy replicas).
``unattributed``
    Nothing in the recorded window explains the trigger — an honest
    "the black box did not reach back far enough".

Everything is deterministic and derived purely from the bundle, so a
report can be regenerated from the artifact alone (``repro incident
report``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Served requests at least this many times slower than the bundle's
#: median are treated as part of the regression window.
SLOW_FACTOR = 5.0

#: Exemplar trace ids attached per cause, worst first.
MAX_EXEMPLARS = 3


def _fmt_at(at: float | None) -> str:
    return "?" if at is None else f"{at:.3e}s"


def _replica_name(shard, replica=None) -> str:
    if shard is None:
        return "unknown shard"
    if replica is None:
        return f"shard {shard}"
    return f"shard {shard} replica {replica}"


@dataclass
class TimelineEntry:
    """One step of the reconstructed incident timeline."""

    at: float
    label: str
    event_id: int | None = None

    def to_dict(self) -> dict:
        return {"at": self.at, "label": self.label, "event_id": self.event_id}

    def render(self) -> str:
        ref = f"[#{self.event_id}] " if self.event_id is not None else ""
        return f"{_fmt_at(self.at):>11}  {ref}{self.label}"


@dataclass
class RootCause:
    """One ranked root-cause candidate with its supporting evidence."""

    kind: str
    description: str
    score: float
    at: float | None = None
    evidence: list[int] = field(default_factory=list)
    chain: list[str] = field(default_factory=list)
    exemplars: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "description": self.description,
            "score": self.score,
            "at": self.at,
            "evidence": self.evidence,
            "chain": self.chain,
            "exemplars": self.exemplars,
        }


@dataclass
class IncidentReport:
    """The full post-mortem for one bundle."""

    bundle_id: str
    kind: str
    at: float
    context: dict
    affected_shard: int | None
    affected_replica: int | None
    regression_start: float | None
    bad_requests: int
    total_requests: int
    timeline: list[TimelineEntry]
    causes: list[RootCause]

    @property
    def root_cause(self) -> RootCause | None:
        """The top-ranked candidate (None only for an empty bundle)."""
        return self.causes[0] if self.causes else None

    def to_dict(self) -> dict:
        return {
            "bundle_id": self.bundle_id,
            "kind": self.kind,
            "at": self.at,
            "context": self.context,
            "affected_shard": self.affected_shard,
            "affected_replica": self.affected_replica,
            "regression_start": self.regression_start,
            "bad_requests": self.bad_requests,
            "total_requests": self.total_requests,
            "timeline": [entry.to_dict() for entry in self.timeline],
            "causes": [cause.to_dict() for cause in self.causes],
        }

    def render(self) -> str:
        lines = [f"incident {self.bundle_id} — {self.kind} at {_fmt_at(self.at)}"]
        for key, value in sorted(self.context.items()):
            lines.append(f"  {key}: {value}")
        if self.affected_shard is not None:
            lines.append(
                "  affected: "
                + _replica_name(self.affected_shard, self.affected_replica)
            )
        if self.regression_start is not None:
            lines.append(
                f"  regression window: {_fmt_at(self.regression_start)} -> "
                f"{_fmt_at(self.at)} ({self.bad_requests} affected / "
                f"{self.total_requests} recorded requests)"
            )
        if self.timeline:
            lines.append("  timeline:")
            lines.extend("    " + entry.render() for entry in self.timeline)
        if self.causes:
            lines.append("  root causes (ranked):")
            for rank, cause in enumerate(self.causes, start=1):
                lines.append(
                    f"    {rank}. ({cause.score:.2f}) {cause.description}"
                )
                if cause.chain:
                    lines.append("       chain: " + " -> ".join(cause.chain))
                if cause.exemplars:
                    lines.append(
                        "       exemplars: " + ", ".join(cause.exemplars)
                    )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The analysis itself
# ----------------------------------------------------------------------

def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    rank = max(
        0, min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[rank]


def _affected_requests(requests: list[dict]) -> list[dict]:
    """Requests that count toward the regression window: every
    non-served outcome, plus served outliers >= SLOW_FACTOR x median."""
    served = sorted(
        r.get("latency_seconds", 0.0)
        for r in requests
        if r.get("outcome") == "served"
    )
    threshold = SLOW_FACTOR * _percentile(served, 0.5) if len(served) >= 8 else None
    affected = []
    for request in requests:
        if request.get("outcome") != "served":
            affected.append(request)
        elif (
            threshold is not None
            and request.get("latency_seconds", 0.0) >= threshold
        ):
            affected.append(request)
    return affected


def _match_bonus(event: dict, shard, replica) -> float:
    """Score bonus for hitting the affected shard and replica."""
    bonus = 0.0
    if shard is not None and event.get("shard") == shard:
        bonus += 0.20
        if replica is not None and event.get("replica") == replica:
            bonus += 0.15
    return bonus


def analyze_bundle(bundle: dict) -> IncidentReport:
    """Build the post-mortem for one incident bundle."""
    events = sorted(bundle.get("events", []), key=lambda e: (e.get("at", 0.0), e.get("id", 0)))
    trigger_at = bundle.get("at", 0.0)
    kind = bundle.get("kind", "?")
    details = bundle.get("details", {})
    before = [e for e in events if e.get("at", 0.0) <= trigger_at]

    def last(name: str, **match) -> dict | None:
        for event in reversed(before):
            if event.get("event") != name:
                continue
            if all(event.get(k) == v for k, v in match.items()):
                return event
        return None

    # -- affected shard/replica ---------------------------------------
    shard = replica = None
    if kind == "failover":
        shard = details.get("shard")
        replica = details.get("from_replica")
    elif kind == "shard_unavailable":
        shard = details.get("shard")
    if shard is None:
        anchor = (
            last("serve.failover")
            or last("serve.replica_suspected")
            or last("serve.replica_crash")
        )
        if anchor is not None:
            shard = anchor.get("shard")
            replica = anchor.get("replica", anchor.get("from_replica"))

    # -- regression window --------------------------------------------
    requests = [e for e in before if e.get("event") == "serve.request"]
    affected = _affected_requests(requests)
    regression_start = min(
        (r.get("at", trigger_at) for r in affected), default=None
    )
    exemplars = [
        r["trace_id"]
        for r in sorted(
            affected,
            key=lambda r: (-r.get("latency_seconds", 0.0), r.get("id", 0)),
        )
        if "trace_id" in r
    ][:MAX_EXEMPLARS]

    # -- candidate causes ---------------------------------------------
    causes: list[RootCause] = []
    trigger_label = f"{kind} trigger at {_fmt_at(trigger_at)}"

    for crash in (e for e in before if e.get("event") == "serve.replica_crash"):
        where = _replica_name(crash.get("shard"), crash.get("replica"))
        chain = [f"injected crash #{crash.get('id')} ({where})"]
        evidence = [crash.get("id")]
        suspected = last(
            "serve.replica_suspected",
            shard=crash.get("shard"),
            replica=crash.get("replica"),
        )
        if suspected is not None:
            chain.append(f"suspected after probe failures #{suspected.get('id')}")
            evidence.append(suspected.get("id"))
        failover = last(
            "serve.failover",
            shard=crash.get("shard"),
            from_replica=crash.get("replica"),
        )
        if failover is not None:
            chain.append(
                f"failover #{failover.get('id')} to replica "
                f"{failover.get('to_replica')}"
            )
            evidence.append(failover.get("id"))
        chain.append(trigger_label)
        causes.append(
            RootCause(
                kind="injected_fault",
                description=f"injected replica crash on {where}",
                score=0.60 + _match_bonus(crash, shard, replica),
                at=crash.get("at"),
                evidence=[e for e in evidence if e is not None],
                chain=chain,
                exemplars=list(exemplars),
            )
        )

    active_slow: dict[tuple, dict] = {}
    for slow in (e for e in before if e.get("event") == "serve.replica_slow"):
        key = (slow.get("shard"), slow.get("replica"))
        if slow.get("factor", 1.0) > 1.0:
            active_slow[key] = slow
        else:
            active_slow.pop(key, None)
    for (s, r), slow in active_slow.items():
        where = _replica_name(s, r)
        causes.append(
            RootCause(
                kind="replica_slow",
                description=(
                    f"{where} running {slow.get('factor')}x slow "
                    "at the trigger"
                ),
                score=0.45 + _match_bonus(slow, shard, replica),
                at=slow.get("at"),
                evidence=[slow.get("id")],
                chain=[
                    f"slowdown #{slow.get('id')} ({where}, "
                    f"{slow.get('factor')}x)",
                    trigger_label,
                ],
                exemplars=list(exemplars),
            )
        )

    lag_events = [
        e for e in before if e.get("event") == "replica.lag" and e.get("lag", 0)
    ]
    catchups = [
        r
        for r in requests
        if any(s.get("stage") == "catchup" for s in r.get("stages", ()))
    ]
    if lag_events or catchups:
        peak = max((e.get("lag", 0) for e in lag_events), default=0)
        chain = []
        if lag_events:
            worst = max(lag_events, key=lambda e: e.get("lag", 0))
            chain.append(f"replication lag peaked at {peak} ops #{worst.get('id')}")
        if catchups:
            chain.append(f"{len(catchups)} forced catch-up(s) before serving")
        chain.append(trigger_label)
        causes.append(
            RootCause(
                kind="replication_lag",
                description=(
                    f"follower replication lag (peak {peak} ops, "
                    f"{len(catchups)} forced catch-ups)"
                ),
                score=0.40 + (0.05 if catchups else 0.0),
                at=lag_events[0].get("at") if lag_events else catchups[0].get("at"),
                evidence=[e.get("id") for e in lag_events[-3:]]
                + [r.get("id") for r in catchups[:3]],
                chain=chain,
                exemplars=list(exemplars),
            )
        )

    sheds = [r for r in requests if r.get("outcome") == "shed"]
    if sheds:
        causes.append(
            RootCause(
                kind="overload",
                description=(
                    f"admission-queue overload ({len(sheds)} requests shed "
                    "in the recorded window)"
                ),
                score=0.50 if kind == "slo_burn" else 0.25,
                at=sheds[0].get("at"),
                evidence=[r.get("id") for r in sheds[:3]],
                chain=[
                    f"queue-full sheds from #{sheds[0].get('id')}",
                    trigger_label,
                ],
                exemplars=list(exemplars),
            )
        )

    if not causes:
        causes.append(
            RootCause(
                kind="unattributed",
                description=(
                    "no causal antecedent in the recorded window "
                    "(recorder may not reach back far enough)"
                ),
                score=0.05,
                chain=[trigger_label],
                exemplars=list(exemplars),
            )
        )
    causes.sort(key=lambda c: (-c.score, c.at if c.at is not None else trigger_at))

    # -- timeline ------------------------------------------------------
    timeline: list[TimelineEntry] = []
    labels = {
        "serve.replica_crash": "injected fault: replica crash",
        "serve.replica_slow": "injected fault: replica slowdown",
        "serve.replica_recover": "replica recovered (pending probe)",
        "serve.replica_suspected": "replica suspected after probe failures",
        "serve.replica_up": "replica back in rotation",
        "serve.failover": "primary failover",
    }
    for event in before:
        name = event.get("event")
        if name in labels:
            extra = ""
            if name == "serve.failover":
                extra = (
                    f" {_replica_name(event.get('shard'))}: primary "
                    f"{event.get('from_replica')} -> {event.get('to_replica')}"
                    + (
                        f" (log version {event.get('version')})"
                        if event.get("version") is not None
                        else ""
                    )
                )
            elif name == "serve.replica_slow":
                extra = (
                    f" ({_replica_name(event.get('shard'), event.get('replica'))}"
                    f", {event.get('factor')}x)"
                )
            else:
                extra = (
                    f" ({_replica_name(event.get('shard'), event.get('replica'))})"
                )
            timeline.append(
                TimelineEntry(event.get("at", 0.0), labels[name] + extra, event.get("id"))
            )
    if lag_events:
        worst = max(lag_events, key=lambda e: e.get("lag", 0))
        timeline.append(
            TimelineEntry(
                worst.get("at", 0.0),
                f"replication lag peaked at {worst.get('lag')} ops",
                worst.get("id"),
            )
        )
    if regression_start is not None:
        timeline.append(
            TimelineEntry(
                regression_start,
                f"regression window opens ({len(affected)} affected "
                f"request(s) follow)",
            )
        )
    timeline.append(
        TimelineEntry(trigger_at, f"TRIGGER {kind}: {_describe_trigger(kind, details)}")
    )
    timeline.sort(key=lambda entry: (entry.at, entry.event_id or 1 << 60))

    return IncidentReport(
        bundle_id=bundle.get("id", "?"),
        kind=kind,
        at=trigger_at,
        context=dict(bundle.get("context", {})),
        affected_shard=shard,
        affected_replica=replica,
        regression_start=regression_start,
        bad_requests=len(affected),
        total_requests=len(requests),
        timeline=timeline,
        causes=causes,
    )


def _describe_trigger(kind: str, details: dict) -> str:
    if kind == "failover":
        return (
            f"{_replica_name(details.get('shard'))} primary "
            f"{details.get('from_replica')} -> {details.get('to_replica')}"
        )
    if kind == "shard_unavailable":
        return (
            f"request {details.get('trace_id', '?')} found no serving "
            f"replica for {_replica_name(details.get('shard'))}"
        )
    if kind == "slo_burn":
        return (
            f"SLO {details.get('slo', '?')} burning "
            f"{details.get('long_burn', 0.0):.1f}x long / "
            f"{details.get('short_burn', 0.0):.1f}x short "
            f"(threshold {details.get('burn_threshold', 0.0):.1f}x)"
        )
    if kind == "scenario_assertion":
        failed = details.get("checks", [])
        names = ", ".join(c.get("name", "?") for c in failed) or "?"
        return f"scenario expectation(s) failed: {names}"
    return str(details) if details else kind
