"""The flight recorder: a bounded ring buffer over the event stream.

Production systems keep a *black box*: an always-on, bounded recorder
whose contents only matter in the seconds before something went wrong.
:class:`FlightRecorder` is that box for the simulated serving stack.
Every interesting occurrence — ``serve.request`` terminals from the
pipeline, store/replica lifecycle events (crash, suspicion, failover,
recovery), replicator lag samples — is appended as one plain dict on
the **serving clock**, and two retention bounds evict from the front:

- ``window_seconds`` — keep only the last N simulated seconds
  (time-based retention, the "black box keeps the last 30 minutes"
  contract);
- ``max_bytes`` — a hard byte budget on the JSON-encoded records, so
  a chatty run cannot grow the recorder without bound.  The budget is
  an invariant, not a hint: after every append the buffer is evicted
  back under it.

Records carry a monotonically increasing ``id`` so an incident bundle
can cite exact evidence (``dropped`` counts what eviction discarded —
a bundle knows when its history was truncated).  Listeners observe
every record as it lands; the trigger engine
(:mod:`repro.observe.incident.triggers`) is such a listener.

Nothing here imports from :mod:`repro.serve` — the serving layer pushes
events *into* the recorder, keeping the dependency one-way.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable

#: Default byte budget: generous for a scenario run (a few thousand
#: request records), small next to the label store itself.
DEFAULT_MAX_BYTES = 1 << 20


def _encoded_size(record: dict) -> int:
    """Bytes the record costs against the budget (compact JSON)."""
    return len(json.dumps(record, separators=(",", ":"), default=str))


class FlightRecorder:
    """Bounded in-memory recording of the unified serving event stream.

    Parameters
    ----------
    window_seconds:
        Keep only records whose ``at`` is within this many simulated
        seconds of the newest record (``None``: no time bound).
    max_bytes:
        Hard budget on the summed compact-JSON size of buffered
        records; the oldest records are evicted to stay under it.
    """

    def __init__(
        self,
        window_seconds: float | None = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ):
        if window_seconds is not None and window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.window_seconds = window_seconds
        self.max_bytes = max_bytes
        self.clock = 0.0
        #: Records evicted (or too large to ever fit) since start.
        self.dropped = 0
        #: Records ever offered to the recorder.
        self.recorded = 0
        self.bytes_used = 0
        self._buffer: deque[tuple[dict, int]] = deque()
        self._next_id = 1
        self._listeners: list[Callable[[dict], None]] = []

    # ------------------------------------------------------------------
    def add_listener(self, listener: Callable[[dict], None]) -> None:
        """Call ``listener(record)`` for every record as it lands."""
        self._listeners.append(listener)

    def record(self, event: str, at: float, **attrs) -> dict:
        """Append one event on the serving clock; returns the record."""
        record = {"id": self._next_id, "at": at, "event": event}
        record.update(attrs)
        self._next_id += 1
        self.recorded += 1
        if at > self.clock:
            self.clock = at
        size = _encoded_size(record)
        self._buffer.append((record, size))
        self.bytes_used += size
        self._evict()
        for listener in self._listeners:
            listener(record)
        return record

    def record_event(self, event: dict) -> dict:
        """Adapter for store-style event dicts (``{"event", "at", ...}``)."""
        attrs = {k: v for k, v in event.items() if k not in ("event", "at")}
        return self.record(event["event"], event.get("at", self.clock), **attrs)

    # ------------------------------------------------------------------
    def _evict(self) -> None:
        """Restore both retention invariants by dropping from the front."""
        buffer = self._buffer
        while buffer and self.bytes_used > self.max_bytes:
            _, size = buffer.popleft()
            self.bytes_used -= size
            self.dropped += 1
        if self.window_seconds is not None:
            horizon = self.clock - self.window_seconds
            while buffer and buffer[0][0]["at"] < horizon:
                _, size = buffer.popleft()
                self.bytes_used -= size
                self.dropped += 1

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buffer)

    def events(self) -> list[dict]:
        """The buffered records, oldest first (copies, safe to mutate)."""
        return [dict(record) for record, _ in self._buffer]

    def snapshot(self) -> dict:
        """A self-contained dump of the buffer plus retention metadata."""
        return {
            "recorded": self.recorded,
            "dropped": self.dropped,
            "bytes_used": self.bytes_used,
            "max_bytes": self.max_bytes,
            "window_seconds": self.window_seconds,
            "clock": self.clock,
            "events": self.events(),
        }
