"""``repro.profiling`` — analysis on top of :mod:`repro.telemetry`.

The telemetry layer records what happened (spans, events, metrics);
this package answers *why a run was slow*:

- :mod:`~repro.profiling.skew` — per-node load attribution: rebuilds a
  :class:`~repro.pregel.metrics.NodeTimeline` from exported
  ``pregel.node`` events and computes imbalance metrics (max/mean load
  ratio, Gini coefficient, barrier-wait share), names straggler and
  hot-partition nodes, and estimates the speedup from perfect
  rebalancing;
- :mod:`~repro.profiling.export` — standard-format exporters: Chrome
  trace-event JSON (one "process" per simulated node; load it in
  Perfetto or ``chrome://tracing``) and folded stacks for flamegraphs;
- :mod:`~repro.profiling.report` — the ``repro profile`` text report
  (skew + top spans + critical path).

Everything here is derived from an existing ``--trace-out`` JSONL file
or a live :class:`~repro.pregel.metrics.RunStats.node_timeline`; no
instrumentation of its own.
"""

from __future__ import annotations

from repro.profiling.export import (
    chrome_trace,
    folded_stacks,
    write_chrome_trace,
    write_folded_stacks,
)
from repro.profiling.report import critical_path, profile_report
from repro.profiling.skew import (
    NodeLoad,
    SkewReport,
    SuperstepSkew,
    analyze_skew,
    timeline_from_records,
)

__all__ = [
    "NodeLoad",
    "SkewReport",
    "SuperstepSkew",
    "analyze_skew",
    "chrome_trace",
    "critical_path",
    "folded_stacks",
    "profile_report",
    "timeline_from_records",
    "write_chrome_trace",
    "write_folded_stacks",
]
