"""Skew and straggler attribution from per-node timelines.

The simulator's cost formula charges every super-step at the pace of
its slowest node (see ``docs/simulator.md``), so imbalance — skewed
partitions, injected stragglers — turns directly into barrier wait.
:func:`analyze_skew` quantifies that: per-node load shares, the
max/mean load ratio, the Gini coefficient of busy time, each node's
apparent slowdown (its effective seconds-per-unit against the fastest
node), and the speedup a perfectly rebalanced partitioning would buy.

Input is a :class:`~repro.pregel.metrics.NodeTimeline`, either taken
live from ``RunStats.node_timeline`` (build with ``node_timeline=True``)
or rebuilt from an exported JSONL trace's ``pregel.node`` events with
:func:`timeline_from_records`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pregel.metrics import NodeSlice, NodeTimeline, TimelineInterval

#: A node whose apparent slowdown exceeds this names it a straggler.
STRAGGLER_THRESHOLD = 1.5

#: A run whose max/mean busy ratio stays below this is "balanced".
BALANCED_THRESHOLD = 1.2


def timeline_from_records(records: list[dict]) -> NodeTimeline | None:
    """Rebuild a :class:`NodeTimeline` from exported trace records.

    Uses the ``pregel.node`` events (one per node per committed
    super-step, in execution order) plus the ``pregel.recovery`` and
    ``pregel.checkpoint`` events for the fault intervals.  Returns
    ``None`` when the trace holds no ``pregel.node`` events (the run
    predates per-node telemetry or never entered the engine).

    Discarded super-step attempts (``replay`` intervals) are not
    emitted as events, so a rebuilt timeline carries slightly less
    fault detail than a live ``RunStats.node_timeline``.
    """
    slices: list[NodeSlice] = []
    intervals: list[TimelineInterval] = []
    num_nodes = 0
    for record in records:
        if record.get("kind") != "event":
            continue
        name = record.get("name")
        attrs = record.get("attrs", {})
        if name == "pregel.node":
            try:
                piece = NodeSlice(
                    superstep=attrs["superstep"],
                    node=attrs["node"],
                    units=attrs["units"],
                    compute_seconds=attrs["compute_seconds"],
                    comm_seconds=attrs["comm_seconds"],
                    barrier_wait_seconds=attrs["barrier_wait_seconds"],
                    barrier_seconds=attrs["barrier_seconds"],
                    recv_bytes=attrs.get("recv_bytes", 0),
                    slowdown=attrs.get("slowdown", 1.0),
                )
            except KeyError:
                continue
            slices.append(piece)
            num_nodes = max(num_nodes, piece.node + 1)
        elif name == "pregel.recovery":
            intervals.append(
                TimelineInterval(
                    "recovery",
                    attrs.get("superstep", 0),
                    attrs.get("seconds", 0.0),
                    tuple(attrs.get("nodes", ())),
                )
            )
        elif name == "pregel.checkpoint":
            intervals.append(
                TimelineInterval(
                    "checkpoint",
                    attrs.get("superstep", 0),
                    attrs.get("seconds", 0.0),
                )
            )
    if not slices:
        return None
    return NodeTimeline(num_nodes=num_nodes, slices=slices, intervals=intervals)


@dataclass(frozen=True)
class NodeLoad:
    """One node's aggregate load across a whole timeline."""

    node: int
    units: int
    compute_seconds: float
    comm_seconds: float
    barrier_wait_seconds: float
    busy_seconds: float
    #: This node's fraction of the cluster's total busy seconds.
    busy_share: float
    #: Fraction of this node's lane spent idle at barriers.
    wait_share: float
    #: Effective seconds-per-unit against the fastest node (1.0 means
    #: hardware-identical; an injected ``straggler=NxF`` shows ~F here).
    apparent_slowdown: float


@dataclass(frozen=True)
class SuperstepSkew:
    """Imbalance metrics for one super-step occurrence."""

    superstep: int
    max_mean_ratio: float
    gini: float
    slowest_node: int


@dataclass
class SkewReport:
    """Whole-run imbalance metrics (see :func:`analyze_skew`)."""

    num_nodes: int
    supersteps: int
    node_loads: list[NodeLoad]
    #: max over nodes of busy seconds / mean over nodes.
    max_mean_ratio: float
    #: Gini coefficient of per-node busy seconds (0 = equal).
    gini: float
    #: Cluster-wide fraction of lane time lost to barrier waits.
    barrier_wait_share: float
    #: ``(node, apparent_slowdown)`` above the straggler threshold,
    #: worst first.
    stragglers: list[tuple[int, float]] = field(default_factory=list)
    #: The worst straggler, or ``None`` when none crosses the threshold.
    dominant_straggler: int | None = None
    #: The node carrying the largest share of busy time.
    hot_node: int | None = None
    #: Estimated run-time factor recovered by perfectly rebalancing
    #: every super-step's busy time (>= 1.0).
    rebalance_speedup: float = 1.0
    per_superstep: list[SuperstepSkew] = field(default_factory=list)

    @property
    def balanced(self) -> bool:
        """True when no straggler is named and load is near-uniform."""
        return (
            self.dominant_straggler is None
            and self.max_mean_ratio < BALANCED_THRESHOLD
        )

    def render(self) -> str:
        """Human-readable skew report."""
        title = "Skew report"
        lines = [title, "=" * len(title)]
        lines.append(
            f"{self.num_nodes} nodes, {self.supersteps} super-steps; "
            f"max/mean load ratio {self.max_mean_ratio:.2f}, "
            f"Gini {self.gini:.3f}, "
            f"barrier-wait share {self.barrier_wait_share:.1%}"
        )
        if self.dominant_straggler is not None:
            named = ", ".join(
                f"node {node} ({slowdown:.1f}x)"
                for node, slowdown in self.stragglers
            )
            lines.append(f"stragglers: {named}")
        elif self.balanced:
            lines.append("load is near-balanced; no straggler detected")
        if self.hot_node is not None:
            hot = self.node_loads[self.hot_node]
            lines.append(
                f"hot partition: node {self.hot_node} "
                f"({hot.busy_share:.1%} of busy time, {hot.units} units)"
            )
        if self.rebalance_speedup > 1.005:
            lines.append(
                f"perfect rebalancing would speed the run up "
                f"{self.rebalance_speedup:.2f}x"
            )
        header = (
            f"{'node':>4} | {'units':>10} | {'compute s':>11} | "
            f"{'comm s':>11} | {'wait s':>11} | {'busy %':>7} | "
            f"{'wait %':>7} | {'slowdown':>8}"
        )
        lines += ["", header, "-" * len(header)]
        for load in self.node_loads:
            lines.append(
                f"{load.node:>4} | {load.units:>10d} | "
                f"{load.compute_seconds:>11.6f} | "
                f"{load.comm_seconds:>11.6f} | "
                f"{load.barrier_wait_seconds:>11.6f} | "
                f"{load.busy_share:>7.1%} | {load.wait_share:>7.1%} | "
                f"{load.apparent_slowdown:>8.2f}"
            )
        return "\n".join(lines)


def _gini(values: list[float]) -> float:
    """Gini coefficient of a non-negative sample (0 = perfectly equal)."""
    total = sum(values)
    n = len(values)
    if n < 2 or total <= 0:
        return 0.0
    ordered = sorted(values)
    # Σᵢ Σⱼ |xᵢ-xⱼ| / (2 n Σx), via the sorted-prefix identity.
    weighted = sum((2 * i - n + 1) * x for i, x in enumerate(ordered))
    return weighted / (n * total)


def analyze_skew(timeline: NodeTimeline) -> SkewReport:
    """Compute whole-run and per-super-step imbalance metrics.

    *Busy* time is compute plus communication — the work a node would
    keep under any partitioning; barrier wait is the imbalance cost.
    The rebalance estimate replays every super-step with its busy time
    spread evenly over the nodes (barrier latency unchanged), which is
    the best any partitioner could do without changing the algorithm.
    """
    groups = timeline.supersteps()
    totals = timeline.node_totals()
    busy = [entry["busy_seconds"] for entry in totals]
    total_busy = sum(busy)
    mean_busy = total_busy / max(1, len(busy))
    lane_time = sum(entry["total_seconds"] for entry in totals)
    total_wait = sum(entry["barrier_wait_seconds"] for entry in totals)

    # Apparent slowdown: effective seconds-per-unit vs the fastest node.
    rates = [
        entry["compute_seconds"] / entry["units"] if entry["units"] else None
        for entry in totals
    ]
    measured = [rate for rate in rates if rate is not None and rate > 0]
    base_rate = min(measured) if measured else None
    slowdowns = [
        rate / base_rate if rate is not None and base_rate else 1.0
        for rate in rates
    ]

    loads = [
        NodeLoad(
            node=entry["node"],
            units=entry["units"],
            compute_seconds=entry["compute_seconds"],
            comm_seconds=entry["comm_seconds"],
            barrier_wait_seconds=entry["barrier_wait_seconds"],
            busy_seconds=entry["busy_seconds"],
            busy_share=entry["busy_seconds"] / total_busy if total_busy else 0.0,
            wait_share=(
                entry["barrier_wait_seconds"] / entry["total_seconds"]
                if entry["total_seconds"]
                else 0.0
            ),
            apparent_slowdown=slowdowns[entry["node"]],
        )
        for entry in totals
    ]

    stragglers = sorted(
        (
            (load.node, load.apparent_slowdown)
            for load in loads
            if load.apparent_slowdown >= STRAGGLER_THRESHOLD
        ),
        key=lambda pair: pair[1],
        reverse=True,
    )

    per_superstep = []
    actual = 0.0
    ideal = 0.0
    for group in groups:
        group_busy = [piece.busy_seconds for piece in group]
        group_mean = sum(group_busy) / max(1, len(group_busy))
        group_max = max(group_busy, default=0.0)
        barrier = group[0].barrier_seconds if group else 0.0
        actual += group_max + barrier
        ideal += group_mean + barrier
        per_superstep.append(
            SuperstepSkew(
                superstep=group[0].superstep if group else 0,
                max_mean_ratio=group_max / group_mean if group_mean else 1.0,
                gini=_gini(group_busy),
                slowest_node=max(
                    group, key=lambda piece: piece.busy_seconds
                ).node
                if group
                else 0,
            )
        )

    return SkewReport(
        num_nodes=timeline.num_nodes,
        supersteps=len(groups),
        node_loads=loads,
        max_mean_ratio=max(busy, default=0.0) / mean_busy if mean_busy else 1.0,
        gini=_gini(busy),
        barrier_wait_share=total_wait / lane_time if lane_time else 0.0,
        stragglers=stragglers,
        dominant_straggler=stragglers[0][0] if stragglers else None,
        hot_node=(
            max(loads, key=lambda load: load.busy_seconds).node
            if loads and total_busy > 0
            else None
        ),
        rebalance_speedup=actual / ideal if ideal else 1.0,
        per_superstep=per_superstep,
    )
