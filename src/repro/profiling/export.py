"""Standard-format exporters for JSONL traces.

Two targets, both derived from an existing ``--trace-out`` file:

- :func:`chrome_trace` — the Chrome trace-event JSON format, loadable
  in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  The
  driver's real spans become one wall-clock process (pid 0); every
  simulated node becomes its own process whose lane replays the BSP
  timeline (compute / comm / wait / barrier slices per super-step, on
  the simulated clock); fault intervals (recovery, checkpoints) land
  on a separate cluster lane.  Wall timestamps are ``perf_counter``
  readings, normalized to the earliest span start so the trace begins
  at zero.
- :func:`folded_stacks` — folded-stack lines (``a;b;c value``) for
  flamegraph tooling, one line per distinct span path, weighted by
  *self* simulated time in integer nanoseconds.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path

from repro.profiling.skew import timeline_from_records

#: pid of the wall-clock driver process in the Chrome trace.
DRIVER_PID = 0

_MICRO = 1e6
_FAULT_EVENTS = ("pregel.fault", "pregel.recovery", "pregel.checkpoint")


def _wall_zero(records: list[dict]) -> float:
    """The earliest wall timestamp in the trace (the common zero)."""
    starts = [r["start"] for r in records if r.get("kind") == "span"]
    starts += [
        r["wall"]
        for r in records
        if r.get("kind") == "event" and "wall" in r
    ]
    return min(starts, default=0.0)


def chrome_trace(records: list[dict]) -> dict:
    """Convert trace records to a Chrome trace-event JSON object.

    Returns ``{"traceEvents": [...], "displayTimeUnit": "ms"}``.  The
    per-node lanes are rebuilt from the ``pregel.node`` events (see
    :func:`~repro.profiling.skew.timeline_from_records`); traces
    exported without per-node telemetry still get the wall-clock
    process.  Durations are microseconds (fractional — simulated
    super-steps are routinely sub-microsecond).
    """
    events: list[dict] = []
    zero = _wall_zero(records)

    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": DRIVER_PID,
            "tid": 0,
            "args": {"name": "driver (wall clock)"},
        }
    )
    for record in records:
        kind = record.get("kind")
        if kind == "span":
            events.append(
                {
                    "name": record["name"],
                    "ph": "X",
                    "pid": DRIVER_PID,
                    "tid": 0,
                    "ts": (record["start"] - zero) * _MICRO,
                    "dur": record.get("wall_seconds", 0.0) * _MICRO,
                    "args": {
                        "id": record.get("id"),
                        "parent": record.get("parent"),
                        "status": record.get("status", "ok"),
                        "simulated_seconds": record.get(
                            "simulated_seconds", 0.0
                        ),
                        **record.get("attrs", {}),
                    },
                }
            )
        elif kind == "event" and record.get("name") in _FAULT_EVENTS:
            events.append(
                {
                    "name": record["name"],
                    "ph": "i",
                    "s": "g",
                    "pid": DRIVER_PID,
                    "tid": 0,
                    "ts": (record.get("wall", zero) - zero) * _MICRO,
                    "args": dict(record.get("attrs", {})),
                }
            )

    timeline = timeline_from_records(records)
    if timeline is not None:
        for node in range(timeline.num_nodes):
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": node + 1,
                    "tid": 0,
                    "args": {"name": f"node {node} (simulated)"},
                }
            )
        cursor = 0.0
        for group in timeline.supersteps():
            span = group[0].total_seconds if group else 0.0
            for piece in group:
                offset = cursor
                for phase, seconds in (
                    ("compute", piece.compute_seconds),
                    ("comm", piece.comm_seconds),
                    ("wait", piece.barrier_wait_seconds),
                    ("barrier", piece.barrier_seconds),
                ):
                    if seconds > 0:
                        events.append(
                            {
                                "name": phase,
                                "ph": "X",
                                "pid": piece.node + 1,
                                "tid": 0,
                                "ts": offset * _MICRO,
                                "dur": seconds * _MICRO,
                                "args": {
                                    "superstep": piece.superstep,
                                    "units": piece.units,
                                    "recv_bytes": piece.recv_bytes,
                                    "slowdown": piece.slowdown,
                                },
                            }
                        )
                    offset += seconds
            cursor += span
        if timeline.intervals:
            cluster_pid = timeline.num_nodes + 1
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": cluster_pid,
                    "tid": 0,
                    "args": {"name": "cluster (faults, simulated)"},
                }
            )
            for interval in timeline.intervals:
                events.append(
                    {
                        "name": interval.kind,
                        "ph": "X",
                        "pid": cluster_pid,
                        "tid": 0,
                        "ts": cursor * _MICRO,
                        "dur": interval.seconds * _MICRO,
                        "args": {
                            "superstep": interval.superstep,
                            "nodes": list(interval.nodes),
                        },
                    }
                )
                cursor += interval.seconds
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: list[dict], path: str | Path) -> None:
    """Write :func:`chrome_trace` output as JSON to ``path``."""
    Path(path).write_text(
        json.dumps(chrome_trace(records)) + "\n", encoding="utf-8"
    )


def folded_stacks(records: list[dict]) -> list[str]:
    """Folded-stack lines for flamegraph tooling.

    One ``parent;child;leaf value`` line per distinct span path, where
    the value is the path's *self* simulated time (total minus the
    children's totals) in integer nanoseconds — nanoseconds, because
    simulated super-steps are far below the microsecond flamegraph
    tools usually assume.  Sorted for deterministic output.
    """
    spans = {
        record["id"]: record
        for record in records
        if record.get("kind") == "span"
    }
    children_sim: dict[int | None, float] = defaultdict(float)
    for record in spans.values():
        children_sim[record.get("parent")] += record.get(
            "simulated_seconds", 0.0
        )

    def stack_of(record: dict) -> str:
        names = [record["name"]]
        seen = {record["id"]}
        parent = record.get("parent")
        while parent in spans and parent not in seen:
            seen.add(parent)
            record = spans[parent]
            names.append(record["name"])
            parent = record.get("parent")
        return ";".join(reversed(names))

    weights: dict[str, int] = defaultdict(int)
    for span_id, record in spans.items():
        self_sim = record.get("simulated_seconds", 0.0) - children_sim.get(
            span_id, 0.0
        )
        value = round(max(0.0, self_sim) * 1e9)
        if value > 0:
            weights[stack_of(record)] += value
    return [f"{stack} {value}" for stack, value in sorted(weights.items())]


def write_folded_stacks(records: list[dict], path: str | Path) -> None:
    """Write :func:`folded_stacks` lines to ``path``."""
    lines = folded_stacks(records)
    Path(path).write_text(
        "\n".join(lines) + ("\n" if lines else ""), encoding="utf-8"
    )
