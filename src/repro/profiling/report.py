"""The ``repro profile`` text report.

Combines the skew analysis, the per-phase top-spans table, and a
critical-path summary into one report over an exported JSONL trace.
"""

from __future__ import annotations

from collections import defaultdict

from repro.profiling.skew import analyze_skew, timeline_from_records
from repro.telemetry.report import top_spans_section


def critical_path(records: list[dict]) -> list[tuple[str, float]]:
    """The heaviest root-to-leaf span chain by simulated seconds.

    Follows, from the heaviest root span, the heaviest child at every
    level; returns ``(name, simulated_seconds)`` pairs from root to
    leaf.  Empty when the trace has no spans.
    """
    spans = [r for r in records if r.get("kind") == "span"]
    if not spans:
        return []
    children: dict[int | None, list[dict]] = defaultdict(list)
    ids = {record["id"] for record in spans}
    for record in spans:
        parent = record.get("parent")
        children[parent if parent in ids else None].append(record)

    def heaviest(candidates: list[dict]) -> dict:
        return max(candidates, key=lambda r: r.get("simulated_seconds", 0.0))

    path = []
    seen: set[int] = set()
    current = heaviest(children[None])
    while True:
        path.append((current["name"], current.get("simulated_seconds", 0.0)))
        seen.add(current["id"])
        below = [r for r in children[current["id"]] if r["id"] not in seen]
        if not below:
            return path
        current = heaviest(below)


def profile_report(records: list[dict], top: int = 15) -> str:
    """The full text report printed by ``repro profile``.

    Sections: record counts, the skew report (when the trace carries
    ``pregel.node`` events), the top-spans table, and the critical
    path.  Traces exported before per-node telemetry still profile —
    they just lose the skew section.
    """
    spans = sum(1 for r in records if r.get("kind") == "span")
    events = sum(1 for r in records if r.get("kind") == "event")
    node_events = sum(
        1
        for r in records
        if r.get("kind") == "event" and r.get("name") == "pregel.node"
    )
    sections = [
        f"{len(records)} records: {spans} spans, {events} events "
        f"({node_events} per-node)"
    ]
    timeline = timeline_from_records(records)
    if timeline is not None:
        sections.append(analyze_skew(timeline).render())
    else:
        sections.append(
            "no pregel.node events in this trace — re-export with a "
            "telemetry session active to get the skew report"
        )
    if spans:
        sections.append(top_spans_section(records, top=top))
        chain = critical_path(records)
        total = max((seconds for _, seconds in chain), default=0.0)
        title = "Critical path (simulated s)"
        lines = [title, "=" * len(title)]
        for depth, (name, seconds) in enumerate(chain):
            share = f" ({seconds / total:.0%} of run)" if total else ""
            lines.append(f"{'  ' * depth}{name}: {seconds:.6f}s{share}")
        sections.append("\n".join(lines))
    return "\n\n".join(sections)
