"""Distributed weakly connected components (hash-min propagation).

The classic Pregel example (and the subject of the paper's reference
[19]): every vertex repeatedly broadcasts the smallest component id it
has seen to all neighbors (ignoring edge direction) until no id
changes.  Used both as a real algorithm and as an engine workout.
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph
from repro.graph.partition import Partitioner
from repro.pregel.cost_model import CostModel
from repro.pregel.engine import Cluster, ComputeContext
from repro.pregel.metrics import RunStats
from repro.pregel.vertex_program import VertexProgram


class HashMinProgram(VertexProgram):
    """Propagate the minimum vertex id through undirected adjacency."""

    combine_duplicates = True  # duplicate min-candidates are no-ops

    def __init__(self, graph: DiGraph):
        self._graph = graph
        self.component = list(range(graph.num_vertices))

    def compute(self, ctx: ComputeContext, v: int, messages) -> None:
        if ctx.superstep == 1:
            candidate = self.component[v]
            changed = True
        else:
            candidate = min(messages)
            changed = candidate < self.component[v]
            if changed:
                self.component[v] = candidate
        if not changed:
            return
        ctx.charge()
        graph = self._graph
        for w in graph.out_neighbors(v):
            ctx.charge()
            ctx.send(w, candidate)
        for w in graph.in_neighbors(v):
            ctx.charge()
            ctx.send(w, candidate)


def distributed_wcc(
    graph: DiGraph,
    num_nodes: int = 32,
    cost_model: CostModel | None = None,
    partitioner: Partitioner | None = None,
) -> tuple[list[int], RunStats]:
    """Weakly connected component ids (minimum member id) per vertex."""
    cluster = Cluster(
        num_nodes=num_nodes, cost_model=cost_model, partitioner=partitioner
    )
    program = HashMinProgram(graph)
    stats = cluster.run(graph, program)
    return program.component, stats
