"""Distributed graph algorithms built on the vertex-centric engine.

The paper's Section II-C justifies indexing cyclic graphs directly:
"it is non-trivial to obtain and merge strongly connected components to
make graphs acyclic in a distributed environment."  This subpackage
makes that claim quantifiable by actually implementing the distributed
algorithms:

- :mod:`~repro.distributed.wcc` — weakly connected components via
  hash-min propagation (Feng et al., ICDE'16 — the paper's ref [19]).
- :mod:`~repro.distributed.scc` — strongly connected components via
  Forward-Backward-Trim pivoting, plus a distributed condensation
  pipeline.
"""

from repro.distributed.scc import (
    distributed_condensation,
    distributed_scc,
)
from repro.distributed.wcc import distributed_wcc

__all__ = [
    "distributed_condensation",
    "distributed_scc",
    "distributed_wcc",
]
