"""Distributed strongly connected components: Forward-Backward-Trim.

The standard parallel SCC scheme (Fleischer et al.; McLendon et al.):

1. **Trim** — a vertex with no in-neighbor (or no out-neighbor) inside
   its current partition is a singleton SCC; trimming repeats until no
   vertex is removable (this quickly dissolves the acyclic bulk of
   real graphs).
2. **Forward-Backward** — each live partition picks a pivot and floods
   forward and backward within the partition; the intersection of the
   two reachable sets *is* the pivot's SCC, and the remainder splits
   into three independent sub-partitions (forward-only, backward-only,
   neither) processed in later rounds.

Every step runs on the vertex-centric engine with full cost accounting,
so :func:`distributed_condensation` quantifies exactly the overhead the
paper's Section II-C warns about when it chooses to index cyclic graphs
directly instead of condensing them first.
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph
from repro.graph.partition import Partitioner
from repro.graph.scc import Condensation
from repro.pregel.cost_model import CostModel
from repro.pregel.engine import Cluster, ComputeContext
from repro.pregel.metrics import RunStats
from repro.pregel.vertex_program import VertexProgram

_FWD = 0
_BWD = 1
_LIVE = -1  # scc id sentinel for not-yet-settled vertices


class _SccState:
    """Shared vertex state across the rounds of one SCC computation."""

    def __init__(self, n: int):
        self.partition = [0] * n
        self.scc_id = [_LIVE] * n

    def live_vertices(self) -> list[int]:
        return [v for v, scc in enumerate(self.scc_id) if scc == _LIVE]


class _TrimProgram(VertexProgram):
    """One trim round: announce partitions, then drop sources/sinks.

    Super-step 1 has every live vertex announce its partition to both
    neighborhoods; super-step 2 counts same-partition live neighbors
    and finalizes vertices with none on either side.
    """

    combine_duplicates = False  # counts matter, not just presence

    def __init__(self, graph: DiGraph, state: _SccState):
        self._graph = graph
        self._state = state
        self.trimmed = 0

    def compute(self, ctx: ComputeContext, v: int, messages) -> None:
        state = self._state
        if ctx.superstep == 1:
            if state.scc_id[v] != _LIVE:
                return
            ctx.charge()
            payload_out = (state.partition[v], _FWD)
            payload_in = (state.partition[v], _BWD)
            graph = self._graph
            for w in graph.out_neighbors(v):
                ctx.charge()
                ctx.send(w, payload_out)
            for w in graph.in_neighbors(v):
                ctx.charge()
                ctx.send(w, payload_in)
            return
        if state.scc_id[v] != _LIVE:
            return
        mine = state.partition[v]
        in_same = out_same = 0
        for partition, direction in messages:
            if partition != mine:
                continue
            if direction == _FWD:
                in_same += 1  # came along an in-edge of v
            else:
                out_same += 1
        if in_same == 0 or out_same == 0:
            state.scc_id[v] = v  # singleton SCC
            self.trimmed += 1


class _FwBwProgram(VertexProgram):
    """One Forward-Backward round for every live partition at once."""

    combine_duplicates = True  # duplicate reach-marks are no-ops

    def __init__(self, graph: DiGraph, state: _SccState, pivots: dict[int, int]):
        self._graph = graph
        self._state = state
        self._pivots = pivots  # partition id -> pivot vertex
        n = graph.num_vertices
        self.fwd = bytearray(n)
        self.bwd = bytearray(n)

    def compute(self, ctx: ComputeContext, v: int, messages) -> None:
        state = self._state
        if ctx.superstep == 1:
            if self._pivots.get(state.partition[v]) != v:
                return
            ctx.charge()
            self.fwd[v] = 1
            self.bwd[v] = 1
            self._expand(ctx, v, _FWD)
            self._expand(ctx, v, _BWD)
            return
        if state.scc_id[v] != _LIVE:
            return
        mine = state.partition[v]
        for partition, direction in messages:
            if partition != mine:
                continue
            marks = self.fwd if direction == _FWD else self.bwd
            if marks[v]:
                continue
            marks[v] = 1
            self._expand(ctx, v, direction)

    def _expand(self, ctx: ComputeContext, v: int, direction: int) -> None:
        graph = self._graph
        payload = (self._state.partition[v], direction)
        neighbors = (
            graph.out_neighbors(v) if direction == _FWD else graph.in_neighbors(v)
        )
        for w in neighbors:
            ctx.charge()
            ctx.send(w, payload)


def distributed_scc(
    graph: DiGraph,
    num_nodes: int = 32,
    cost_model: CostModel | None = None,
    partitioner: Partitioner | None = None,
    trim: bool = True,
) -> tuple[list[int], RunStats]:
    """Compute SCC ids per vertex on the simulated cluster.

    Returns ``(scc_of, stats)`` where ``scc_of[v]`` is a representative
    vertex id shared by exactly the vertices strongly connected to
    ``v``.  ``trim=False`` disables the trimming phases (ablation).
    """
    cluster = Cluster(
        num_nodes=num_nodes, cost_model=cost_model, partitioner=partitioner
    )
    n = graph.num_vertices
    state = _SccState(n)
    stats = RunStats(num_nodes=cluster.num_nodes)
    stats.per_node_units = [0] * cluster.num_nodes
    next_partition = 1

    while True:
        if trim:
            while True:
                program = _TrimProgram(graph, state)
                cluster.run(graph, program, stats=stats)
                if program.trimmed == 0:
                    break
        live = state.live_vertices()
        if not live:
            break
        # Deterministic pivot per live partition: its smallest vertex.
        pivots: dict[int, int] = {}
        for v in live:
            p = state.partition[v]
            if p not in pivots or v < pivots[p]:
                pivots[p] = v
        fwbw = _FwBwProgram(graph, state, pivots)
        cluster.run(graph, fwbw, stats=stats)
        # Classify and split partitions for the next round.
        split_ids: dict[tuple[int, int], int] = {}
        for v in live:
            in_f, in_b = fwbw.fwd[v], fwbw.bwd[v]
            if in_f and in_b:
                state.scc_id[v] = pivots[state.partition[v]]
                continue
            key = (state.partition[v], 2 * in_f + in_b)
            child = split_ids.get(key)
            if child is None:
                child = next_partition
                next_partition += 1
                split_ids[key] = child
            state.partition[v] = child
    return state.scc_id, stats


def distributed_condensation(
    graph: DiGraph,
    num_nodes: int = 32,
    cost_model: CostModel | None = None,
    partitioner: Partitioner | None = None,
) -> tuple[Condensation, RunStats]:
    """Condense a distributed graph: SCCs, then a deduplicated DAG.

    The edge-contraction step is charged too: every node scans its
    edges and ships cross-component pairs to the component owner.
    """
    if cost_model is None:
        cost_model = CostModel()
    scc_of, stats = distributed_scc(
        graph, num_nodes=num_nodes, cost_model=cost_model, partitioner=partitioner
    )
    # Normalize representative ids to dense component ids, ordered so
    # that every edge points from a higher to a lower component id —
    # matching Tarjan's reverse-topological emission, which downstream
    # code (BFL, the condensed index) relies on.
    from repro.graph.scc import condensation as _serial_condensation

    representatives = sorted(set(scc_of))
    dag_edges: set[tuple[int, int]] = set()
    remote_bytes = 0
    units = 0
    rep_index = {rep: i for i, rep in enumerate(representatives)}
    for u, v in graph.edges():
        units += 1
        cu, cv = rep_index[scc_of[u]], rep_index[scc_of[v]]
        if cu != cv:
            dag_edges.add((cu, cv))
            remote_bytes += cost_model.message_bytes
    stats.compute_units += units
    stats.computation_seconds += (units // max(1, num_nodes)) * cost_model.t_op
    stats.remote_bytes += remote_bytes
    stats.communication_seconds += (
        remote_bytes // max(1, num_nodes)
    ) * cost_model.t_byte
    cost_model.check_time(stats.simulated_seconds)

    # Re-emit components in reverse topological order of the contracted
    # DAG (serial tie-breaking on the tiny contracted structure).
    interim = DiGraph(len(representatives), sorted(dag_edges))
    ordering = _serial_condensation(interim)
    # _serial_condensation on a DAG yields singleton components in
    # reverse topological order; use that order to relabel.
    relabel = [0] * len(representatives)
    for new_id, members in enumerate(ordering.members):
        relabel[members[0]] = new_id
    component_of = [relabel[rep_index[scc_of[v]]] for v in range(graph.num_vertices)]
    members: list[list[int]] = [[] for _ in representatives]
    for v in range(graph.num_vertices):
        members[component_of[v]].append(v)
    dag = DiGraph(
        len(representatives),
        sorted({(relabel[a], relabel[b]) for a, b in dag_edges}),
    )
    return Condensation(dag=dag, component_of=component_of, members=members), stats
