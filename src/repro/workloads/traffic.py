"""Serving-traffic generators: skewed query popularity and arrivals.

The paper evaluates query cost over uniform random pairs; a *serving*
layer faces a different regime — real query streams are heavily
skewed (a few sources/targets dominate) and arrive continuously, not
as a batch.  This module provides both halves, all seeded:

- :func:`zipf_pairs` — ``(s, t)`` pairs whose source and target
  popularity follows a Zipf distribution (the standard web/social
  traffic model), so a cache has something to hit;
- :func:`poisson_arrivals` — open-loop arrival times with exponential
  inter-arrival gaps (requests keep coming whether or not the server
  keeps up — the regime that exposes overload behavior);
- :func:`uniform_arrivals` — evenly spaced arrivals, the deterministic
  control for the same offered rate;
- :func:`phased_arrivals` — piecewise-Poisson phases on one clock
  (flash crowds: steady → spike → steady);
- :func:`sine_arrivals` — a sinusoidally modulated Poisson process
  (diurnal load waves).

Closed-loop (request-on-completion) arrivals depend on service times
and therefore live in the pipeline itself:
:meth:`repro.serve.QueryServer.run_closed`.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left


class ZipfSampler:
    """Seeded Zipf(``skew``) sampler over ``n`` items.

    Rank ``r`` (0-based) is drawn with probability proportional to
    ``1 / (r + 1) ** skew``, via inverse-CDF lookup on the precomputed
    cumulative weights (O(n) setup, O(log n) per sample).  Ranks are
    mapped to item ids through a seeded permutation so that popular
    items are scattered across the id space — and therefore across
    shards under any id-based partitioner — instead of clustering at
    id 0.
    """

    def __init__(self, n: int, skew: float = 1.1, seed: int = 0):
        if n < 1:
            raise ValueError("need at least one item")
        if skew < 0:
            raise ValueError("skew must be non-negative")
        self.n = n
        self.skew = skew
        rng = random.Random(seed)
        self._rank_to_item = list(range(n))
        rng.shuffle(self._rank_to_item)
        cumulative = []
        total = 0.0
        for rank in range(n):
            total += 1.0 / (rank + 1) ** skew
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total
        self._rng = rng

    def sample(self) -> int:
        """One item id."""
        point = self._rng.random() * self._total
        rank = bisect_left(self._cumulative, point)
        if rank >= self.n:  # guard against float round-up at the edge
            rank = self.n - 1
        return self._rank_to_item[rank]


def zipf_pairs(
    num_vertices: int, count: int, seed: int = 0, skew: float = 1.1
) -> list[tuple[int, int]]:
    """``count`` Zipf-skewed ``(s, t)`` pairs over ``num_vertices``.

    Sources and targets are drawn from two independently permuted
    Zipf distributions, so the hot set of sources is unrelated to the
    hot set of targets.  ``skew=0`` degenerates to uniform sampling;
    ``skew≈1`` is classic web traffic; larger values concentrate
    traffic harder (and push cache hit rates up).
    """
    sources = ZipfSampler(num_vertices, skew=skew, seed=seed)
    targets = ZipfSampler(num_vertices, skew=skew, seed=seed + 1)
    return [(sources.sample(), targets.sample()) for _ in range(count)]


def poisson_arrivals(
    count: int, rate: float, seed: int = 0
) -> list[float]:
    """``count`` open-loop arrival times at ``rate`` requests/second.

    Inter-arrival gaps are exponential (a Poisson process), so bursts
    happen naturally — which is exactly what fills admission queues.
    Times are simulated seconds starting at the first arrival.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = random.Random(seed)
    arrivals = []
    clock = 0.0
    for _ in range(count):
        clock += rng.expovariate(rate)
        arrivals.append(clock)
    return arrivals


def uniform_arrivals(count: int, rate: float) -> list[float]:
    """``count`` evenly spaced arrivals at ``rate`` requests/second."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    gap = 1.0 / rate
    return [(i + 1) * gap for i in range(count)]


def phased_arrivals(
    phases: list[tuple[int, float]], seed: int = 0
) -> list[float]:
    """Piecewise-Poisson arrivals: ``phases`` of ``(count, rate)``.

    Each phase continues the previous one's clock, so
    ``[(1000, 1e5), (3000, 1e6), (1000, 1e5)]`` is a **flash crowd**:
    steady traffic, a 10× spike, then back to normal.  One seeded RNG
    spans all phases, so the whole shape is a single deterministic
    stream.
    """
    if not phases:
        raise ValueError("need at least one phase")
    rng = random.Random(seed)
    arrivals: list[float] = []
    clock = 0.0
    for count, rate in phases:
        if count < 0:
            raise ValueError("phase count must be non-negative")
        if rate <= 0:
            raise ValueError("phase rate must be positive")
        for _ in range(count):
            clock += rng.expovariate(rate)
            arrivals.append(clock)
    return arrivals


def sine_arrivals(
    count: int,
    base_rate: float,
    amplitude: float = 0.5,
    period_seconds: float = 1.0,
    seed: int = 0,
) -> list[float]:
    """A **diurnal wave**: Poisson arrivals whose rate oscillates.

    The instantaneous rate is
    ``base_rate * (1 + amplitude * sin(2π · t / period_seconds))``,
    sampled at each arrival (a first-order thinning of the
    inhomogeneous process — exact enough for a rate that moves slowly
    against the inter-arrival gap).  ``amplitude`` must stay below 1 so
    the rate never hits zero.
    """
    if base_rate <= 0:
        raise ValueError("base_rate must be positive")
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("amplitude must be in [0, 1)")
    if period_seconds <= 0:
        raise ValueError("period must be positive")
    rng = random.Random(seed)
    arrivals = []
    clock = 0.0
    two_pi = 2.0 * math.pi
    for _ in range(count):
        rate = base_rate * (1.0 + amplitude * math.sin(two_pi * clock / period_seconds))
        clock += rng.expovariate(rate)
        arrivals.append(clock)
    return arrivals
