"""Benchmark workloads: dataset stand-ins and query generators."""

from repro.workloads.datasets import (
    DATASETS,
    MEDIUM_DATASETS,
    DatasetSpec,
    get_dataset,
)
from repro.workloads.queries import (
    balanced_pairs,
    negative_pairs,
    positive_pairs,
    random_pairs,
)
from repro.workloads.updates import apply_stream, update_stream

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "MEDIUM_DATASETS",
    "apply_stream",
    "balanced_pairs",
    "get_dataset",
    "negative_pairs",
    "positive_pairs",
    "random_pairs",
    "update_stream",
]
