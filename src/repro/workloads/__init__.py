"""Benchmark workloads: dataset stand-ins and query generators."""

from repro.workloads.datasets import (
    DATASETS,
    MEDIUM_DATASETS,
    DatasetSpec,
    get_dataset,
)
from repro.workloads.queries import (
    balanced_pairs,
    negative_pairs,
    positive_pairs,
    random_pairs,
)
from repro.workloads.traffic import (
    ZipfSampler,
    poisson_arrivals,
    uniform_arrivals,
    zipf_pairs,
)
from repro.workloads.updates import (
    IDEAL_RANK,
    apply_stream,
    mixed_update_stream,
    update_stream,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "MEDIUM_DATASETS",
    "ZipfSampler",
    "apply_stream",
    "balanced_pairs",
    "get_dataset",
    "negative_pairs",
    "poisson_arrivals",
    "positive_pairs",
    "random_pairs",
    "uniform_arrivals",
    "update_stream",
    "mixed_update_stream",
    "IDEAL_RANK",
    "zipf_pairs",
]
