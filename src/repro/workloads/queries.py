"""Reachability query workload generators (all seeded).

The paper measures query time over large batches of random vertex
pairs; real evaluations also balance positive/negative answers because
index-assisted methods (BFL) behave very differently on the two.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.graph.digraph import DiGraph
from repro.graph.traversal import bfs_order


def random_pairs(
    num_vertices: int, count: int, seed: int = 0
) -> list[tuple[int, int]]:
    """Uniform random ``(s, t)`` pairs (the paper's query workload)."""
    if num_vertices < 1:
        raise ValueError("need at least one vertex")
    rng = random.Random(seed)
    return [
        (rng.randrange(num_vertices), rng.randrange(num_vertices))
        for _ in range(count)
    ]


def positive_pairs(
    graph: DiGraph, count: int, seed: int = 0, max_attempts_factor: int = 50
) -> list[tuple[int, int]]:
    """Pairs with ``s → t``: sample a source, pick a random descendant.

    Raises ``ValueError`` if the graph is too disconnected to supply
    ``count`` non-trivial positives (falls back to ``s == t`` pairs
    only as a last resort before giving up).
    """
    rng = random.Random(seed)
    pairs: list[tuple[int, int]] = []
    attempts = 0
    limit = max_attempts_factor * max(count, 1)
    while len(pairs) < count:
        attempts += 1
        if attempts > limit:
            raise ValueError(
                f"could not find {count} positive pairs in {limit} attempts"
            )
        s = rng.randrange(graph.num_vertices)
        reachable = bfs_order(graph, s)
        if len(reachable) < 2:
            continue
        t = reachable[rng.randrange(1, len(reachable))]
        pairs.append((s, t))
    return pairs


def negative_pairs(
    graph: DiGraph,
    oracle: Callable[[int, int], bool],
    count: int,
    seed: int = 0,
    max_attempts_factor: int = 200,
) -> list[tuple[int, int]]:
    """Pairs with ``s ↛ t``, verified against ``oracle``."""
    rng = random.Random(seed)
    pairs: list[tuple[int, int]] = []
    attempts = 0
    limit = max_attempts_factor * max(count, 1)
    while len(pairs) < count:
        attempts += 1
        if attempts > limit:
            raise ValueError(
                f"could not find {count} negative pairs in {limit} attempts"
            )
        s = rng.randrange(graph.num_vertices)
        t = rng.randrange(graph.num_vertices)
        if s != t and not oracle(s, t):
            pairs.append((s, t))
    return pairs


def balanced_pairs(
    graph: DiGraph,
    oracle: Callable[[int, int], bool],
    count: int,
    seed: int = 0,
) -> list[tuple[int, int]]:
    """Half positive, half negative, shuffled."""
    half = count // 2
    pairs = positive_pairs(graph, half, seed=seed)
    pairs += negative_pairs(graph, oracle, count - half, seed=seed + 1)
    random.Random(seed + 2).shuffle(pairs)
    return pairs
