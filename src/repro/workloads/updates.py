"""Edge-update workloads for the dynamic index.

Generates deterministic insert/delete streams that respect the current
graph state (insertions pick absent edges, deletions pick present
ones), for exercising :class:`~repro.core.dynamic.DynamicReachabilityIndex`.
"""

from __future__ import annotations

import random
from typing import Literal

from repro.graph.digraph import DiGraph

UpdateOp = tuple[Literal["insert", "delete"], int, int]


def update_stream(
    graph: DiGraph,
    count: int,
    insert_ratio: float = 0.5,
    seed: int = 0,
    max_attempts_factor: int = 200,
) -> list[UpdateOp]:
    """A stream of ``count`` valid edge updates starting from ``graph``.

    Each operation is valid at its position in the stream: deletions
    target an edge that exists at that point, insertions a non-edge.
    The ratio is honoured in expectation; when one kind runs out (no
    edges left to delete, or the graph is complete) the other is used.
    """
    if not 0.0 <= insert_ratio <= 1.0:
        raise ValueError("insert_ratio must lie in [0, 1]")
    n = graph.num_vertices
    if n < 2:
        raise ValueError("need at least two vertices to update edges")
    rng = random.Random(seed)
    present: set[tuple[int, int]] = set(graph.edges())
    stream: list[UpdateOp] = []
    max_edges = n * (n - 1)
    attempts_budget = max_attempts_factor * max(count, 1)

    while len(stream) < count:
        want_insert = rng.random() < insert_ratio
        if want_insert and len(present) >= max_edges:
            want_insert = False
        if not want_insert and not present:
            want_insert = True
            if len(present) >= max_edges:
                raise ValueError("graph admits no further updates")
        if want_insert:
            while True:
                attempts_budget -= 1
                if attempts_budget < 0:
                    raise ValueError("could not find a missing edge to insert")
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v and (u, v) not in present:
                    break
            present.add((u, v))
            stream.append(("insert", u, v))
        else:
            u, v = rng.choice(sorted(present))
            present.discard((u, v))
            stream.append(("delete", u, v))
    return stream


def apply_stream(dynamic, stream: list[UpdateOp]) -> None:
    """Apply an update stream to a dynamic index."""
    for op, u, v in stream:
        if op == "insert":
            dynamic.insert_edge(u, v)
        else:
            dynamic.delete_edge(u, v)
