"""Edge- and node-update workloads for the dynamic index.

Generates deterministic update streams that respect the current graph
state (insertions pick absent edges, deletions pick present ones, node
deletions pick alive vertices), for exercising
:class:`~repro.core.dynamic.DynamicReachabilityIndex`.

:func:`update_stream` is the original edge-only generator and stays
byte-stable for a given seed (committed scenarios and baselines depend
on its streams).  :func:`mixed_update_stream` layers node additions,
node deletions, and order upgrades on top.
"""

from __future__ import annotations

import random
from typing import Literal

from repro.graph.digraph import DiGraph

UpdateOp = tuple[Literal["insert", "delete", "add_node", "delete_node", "promote"], int, int]

#: Sentinel rank in a ``("promote", v, rank)`` op meaning "promote to
#: the vertex's current degree rank" (resolved by the applier).
IDEAL_RANK = -1


def update_stream(
    graph: DiGraph,
    count: int,
    insert_ratio: float = 0.5,
    seed: int = 0,
    max_attempts_factor: int = 200,
) -> list[UpdateOp]:
    """A stream of ``count`` valid edge updates starting from ``graph``.

    Each operation is valid at its position in the stream: deletions
    target an edge that exists at that point, insertions a non-edge.
    The ratio is honoured in expectation; when one kind runs out (no
    edges left to delete, or the graph is complete) the other is used.
    """
    if not 0.0 <= insert_ratio <= 1.0:
        raise ValueError("insert_ratio must lie in [0, 1]")
    n = graph.num_vertices
    if n < 2:
        raise ValueError("need at least two vertices to update edges")
    rng = random.Random(seed)
    present: set[tuple[int, int]] = set(graph.edges())
    stream: list[UpdateOp] = []
    max_edges = n * (n - 1)
    attempts_budget = max_attempts_factor * max(count, 1)

    while len(stream) < count:
        want_insert = rng.random() < insert_ratio
        if want_insert and len(present) >= max_edges:
            want_insert = False
        if not want_insert and not present:
            want_insert = True
            if len(present) >= max_edges:
                raise ValueError("graph admits no further updates")
        if want_insert:
            while True:
                attempts_budget -= 1
                if attempts_budget < 0:
                    raise ValueError("could not find a missing edge to insert")
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v and (u, v) not in present:
                    break
            present.add((u, v))
            stream.append(("insert", u, v))
        else:
            u, v = rng.choice(sorted(present))
            present.discard((u, v))
            stream.append(("delete", u, v))
    return stream


def mixed_update_stream(
    graph: DiGraph,
    count: int,
    insert_ratio: float = 0.5,
    node_ratio: float = 0.0,
    promote_ratio: float = 0.0,
    seed: int = 0,
    max_attempts_factor: int = 200,
) -> list[UpdateOp]:
    """A stream of ``count`` valid updates mixing edge and node ops.

    ``node_ratio`` of operations (in expectation) are node-level —
    split evenly between ``add_node`` (payload carries the id the
    vertex will receive: ids are assigned densely, so it is predictable
    from the op prefix) and ``delete_node`` of a random alive vertex.
    ``promote_ratio`` of operations are ``("promote", v, IDEAL_RANK)``
    order upgrades of a random alive vertex.  The remainder are edge
    updates split by ``insert_ratio`` exactly as :func:`update_stream`.
    Every op is valid at its position: edge ops target alive endpoints,
    deletions existing edges, node deletions keep >= 2 vertices alive.
    """
    for name, ratio in (
        ("insert_ratio", insert_ratio),
        ("node_ratio", node_ratio),
        ("promote_ratio", promote_ratio),
    ):
        if not 0.0 <= ratio <= 1.0:
            raise ValueError(f"{name} must lie in [0, 1]")
    if node_ratio + promote_ratio > 1.0:
        raise ValueError("node_ratio + promote_ratio must not exceed 1")
    n = graph.num_vertices
    if n < 2:
        raise ValueError("need at least two vertices to update edges")
    rng = random.Random(seed)
    present: set[tuple[int, int]] = set(graph.edges())
    alive = set(range(n))
    next_id = n
    stream: list[UpdateOp] = []
    attempts_budget = max_attempts_factor * max(count, 1)

    def pick_absent_edge() -> tuple[int, int] | None:
        nonlocal attempts_budget
        pool = sorted(alive)
        for _ in range(64):
            attempts_budget -= 1
            if attempts_budget < 0:
                raise ValueError("could not find a missing edge to insert")
            u, v = rng.choice(pool), rng.choice(pool)
            if u != v and (u, v) not in present:
                return u, v
        return None

    while len(stream) < count:
        roll = rng.random()
        if roll < node_ratio:
            if rng.random() < 0.5 or len(alive) <= 2:
                stream.append(("add_node", next_id, next_id))
                alive.add(next_id)
                next_id += 1
            else:
                v = rng.choice(sorted(alive))
                alive.discard(v)
                present = {(a, b) for a, b in present if a != v and b != v}
                stream.append(("delete_node", v, v))
        elif roll < node_ratio + promote_ratio:
            v = rng.choice(sorted(alive))
            stream.append(("promote", v, IDEAL_RANK))
        else:
            want_insert = rng.random() < insert_ratio
            max_edges = len(alive) * (len(alive) - 1)
            if want_insert and len(present) >= max_edges:
                want_insert = False
            if not want_insert and not present:
                want_insert = True
            if want_insert:
                edge = pick_absent_edge()
                if edge is None:
                    continue
                present.add(edge)
                stream.append(("insert", *edge))
            else:
                u, v = rng.choice(sorted(present))
                present.discard((u, v))
                stream.append(("delete", u, v))
    return stream


def apply_stream(dynamic, stream: list[UpdateOp]) -> None:
    """Apply an update stream to a dynamic index (all five op kinds)."""
    for op, u, v in stream:
        if op == "insert":
            dynamic.insert_edge(u, v)
        elif op == "delete":
            dynamic.delete_edge(u, v)
        elif op == "add_node":
            dynamic.add_node()
        elif op == "delete_node":
            dynamic.delete_node(u)
        elif op == "promote":
            dynamic.promote(u, None if v == IDEAL_RANK else v)
        else:
            raise ValueError(f"unknown update op {op!r}")
