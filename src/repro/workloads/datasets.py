"""Synthetic stand-ins for the paper's 18 datasets (Table V).

We cannot redistribute (or, in pure Python, traverse) the original
billion-edge graphs, so each Table V row gets a seeded synthetic
stand-in of the matching topology class, scaled to a size this
simulator handles in seconds.  Each spec also records the *paper-scale*
vertex/edge counts and which algorithms the paper marks unavailable
("-" in Table VI: the graph does not fit on one 32 GB machine) so the
benchmark harness can reproduce the table's availability pattern — a
judgement that depends on the authors' hardware, not on our stand-ins.

The first six datasets (WEBW .. GO) are the paper's "medium" graphs
used by Figs. 5-9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    citation_graph,
    knowledge_graph,
    kronecker_graph,
    social_graph,
    web_graph,
)

#: Algorithms that cannot run on a single 32 GB node at paper scale.
_LARGE_FAILS = frozenset({"bfl-c", "tol", "drl-b-m"})
#: SINA fits for BFL^C but not for TOL / DRL_b^M (see Table VI).
_SINA_FAILS = frozenset({"tol", "drl-b-m"})


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table V plus its synthetic stand-in."""

    name: str
    full_name: str
    kind: str
    paper_vertices: int
    paper_edges: int
    medium: bool
    paper_unavailable: frozenset[str]
    factory: Callable[[], DiGraph] = field(repr=False)

    def load(self) -> DiGraph:
        """Generate (and memoize) the stand-in graph."""
        graph = _CACHE.get(self.name)
        if graph is None:
            graph = self.factory()
            _CACHE[self.name] = graph
        return graph

    def available(self, method: str) -> bool:
        """False when Table VI marks ``method`` with "-" on this row."""
        return method not in self.paper_unavailable


_CACHE: dict[str, DiGraph] = {}


def _spec(
    name: str,
    full_name: str,
    kind: str,
    paper_vertices: int,
    paper_edges: int,
    factory: Callable[[], DiGraph],
    medium: bool = False,
    unavailable: frozenset[str] = frozenset(),
) -> DatasetSpec:
    return DatasetSpec(
        name=name,
        full_name=full_name,
        kind=kind,
        paper_vertices=paper_vertices,
        paper_edges=paper_edges,
        medium=medium,
        paper_unavailable=unavailable,
        factory=factory,
    )


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        # ----- the six medium graphs (Figs. 5-9) -----------------------
        _spec(
            "WEBW", "Web-wikipedia", "web", 1_864_433, 4_507_315,
            lambda: web_graph(2600, seed=11, copy_prob=0.5, out_links=3),
            medium=True,
        ),
        _spec(
            "DBPE", "Dbpedia", "knowledge", 3_365_623, 7_989_191,
            lambda: knowledge_graph(2600, seed=12, back_link=0.3),
            medium=True,
        ),
        _spec(
            "CITE", "Citeseerx", "citation", 6_540_401, 15_011_260,
            lambda: citation_graph(3000, avg_refs=4.0, seed=13),
            medium=True,
        ),
        _spec(
            "CITP", "Cit-patent", "citation", 3_774_768, 16_518_947,
            lambda: citation_graph(1800, avg_refs=5.0, seed=14),
            medium=True,
        ),
        _spec(
            "TW", "Twitter", "social", 18_121_168, 18_359_487,
            lambda: social_graph(3000, avg_out_degree=2.5, seed=15, reciprocity=0.3),
            medium=True,
        ),
        _spec(
            "GO", "Go-uniprot", "biology", 6_967_956, 34_770_235,
            lambda: knowledge_graph(2400, seed=16, num_categories=64),
            medium=True,
        ),
        # ----- large graphs (Table VI only) ----------------------------
        _spec(
            "SINA", "Soc-sinaweibo", "social", 58_655_849, 261_321_071,
            lambda: social_graph(4000, avg_out_degree=4.0, seed=17),
            unavailable=_SINA_FAILS,
        ),
        _spec(
            "LINK", "Wikipedia-link", "web", 13_593_032, 437_217_424,
            lambda: web_graph(3000, seed=18, copy_prob=0.6, out_links=6),
        ),
        _spec(
            "WEBB", "Webbase-2001", "web", 118_142_155, 1_019_903_190,
            lambda: web_graph(5000, seed=19, copy_prob=0.55, out_links=5),
            unavailable=_LARGE_FAILS,
        ),
        _spec(
            "GRPH", "Graph500", "synthetic", 17_043_780, 1_046_934_896,
            lambda: kronecker_graph(12, edge_factor=8, seed=20),
        ),
        _spec(
            "TWIT", "Twitter-2010", "social", 41_652_230, 1_468_365_182,
            lambda: social_graph(4500, avg_out_degree=6.0, seed=21),
        ),
        _spec(
            "HOST", "Host-linkage", "web", 57_383_985, 1_643_624_227,
            lambda: web_graph(5500, seed=22, copy_prob=0.6, out_links=6),
            unavailable=_LARGE_FAILS,
        ),
        _spec(
            "GSH", "Gsh-2015-host", "web", 68_660_142, 1_802_747_600,
            lambda: web_graph(6000, seed=23, copy_prob=0.6, out_links=6),
            unavailable=_LARGE_FAILS,
        ),
        _spec(
            "SK", "Sk-2005", "web", 50_636_154, 1_949_412_601,
            lambda: web_graph(6500, seed=24, copy_prob=0.65, out_links=7),
            unavailable=_LARGE_FAILS,
        ),
        _spec(
            "TWIM", "Twitter-mpi", "social", 52_579_682, 1_963_263_821,
            lambda: social_graph(5000, avg_out_degree=7.0, seed=25),
            unavailable=_LARGE_FAILS,
        ),
        _spec(
            "FRIE", "Friendster", "social", 68_349_466, 2_586_147_869,
            lambda: social_graph(6000, avg_out_degree=8.0, seed=26),
            unavailable=_LARGE_FAILS,
        ),
        _spec(
            "UK", "Uk-2006-05", "web", 77_741_046, 2_965_197_340,
            lambda: web_graph(7000, seed=27, copy_prob=0.65, out_links=8),
            unavailable=_LARGE_FAILS,
        ),
        _spec(
            "WEBS", "Webspam-uk", "web", 105_896_555, 3_738_733_648,
            lambda: web_graph(7500, seed=28, copy_prob=0.65, out_links=8),
            unavailable=_LARGE_FAILS,
        ),
    ]
}

MEDIUM_DATASETS: tuple[str, ...] = ("WEBW", "DBPE", "CITE", "CITP", "TW", "GO")
"""The six graphs used by Figs. 5-9."""


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset by its Table V short name (case-insensitive)."""
    spec = DATASETS.get(name.upper())
    if spec is None:
        known = ", ".join(DATASETS)
        raise KeyError(f"unknown dataset {name!r}; known: {known}")
    return spec
