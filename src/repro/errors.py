"""Exception types shared across the library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class OutOfMemoryError(ReproError):
    """A (simulated) computation node exceeded its memory budget.

    Mirrors the paper's "-" entries in Table VI: centralized algorithms
    cannot index graphs that do not fit on a single machine.
    """

    def __init__(self, required_bytes: int, budget_bytes: int, what: str = "run"):
        self.required_bytes = required_bytes
        self.budget_bytes = budget_bytes
        super().__init__(
            f"{what} needs {required_bytes / 2**30:.2f} GiB but the node "
            f"budget is {budget_bytes / 2**30:.2f} GiB"
        )


class TimeLimitExceeded(ReproError):
    """The simulated cut-off time (paper: 2 hours) was exceeded.

    Mirrors the paper's "INF" entries.
    """

    def __init__(self, elapsed_seconds: float, limit_seconds: float):
        self.elapsed_seconds = elapsed_seconds
        self.limit_seconds = limit_seconds
        super().__init__(
            f"simulated time {elapsed_seconds:.1f}s exceeded the "
            f"cut-off of {limit_seconds:.1f}s"
        )
