"""Exception types shared across the library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class OutOfMemoryError(ReproError):
    """A (simulated) computation node exceeded its memory budget.

    Mirrors the paper's "-" entries in Table VI: centralized algorithms
    cannot index graphs that do not fit on a single machine.
    """

    def __init__(self, required_bytes: int, budget_bytes: int, what: str = "run"):
        self.required_bytes = required_bytes
        self.budget_bytes = budget_bytes
        super().__init__(
            f"{what} needs {required_bytes / 2**30:.2f} GiB but the node "
            f"budget is {budget_bytes / 2**30:.2f} GiB"
        )


class ShardOutOfMemoryError(OutOfMemoryError):
    """One label shard's data exceeded its per-shard memory budget.

    Raised with everything an operator needs to act on: *which* shard
    overflowed, how many bytes it attempted to hold, what the budget
    was, and how the shard got that big (vertices / label entries) —
    instead of only GiB-rounded totals that read as "0.00 GiB" for
    small test budgets.
    """

    def __init__(
        self,
        shard_id: int,
        attempted_bytes: int,
        budget_bytes: int,
        vertices: int = 0,
        entries: int = 0,
    ):
        self.shard_id = shard_id
        self.attempted_bytes = attempted_bytes
        self.budget_bytes = budget_bytes
        self.vertices = vertices
        self.entries = entries
        # Skip OutOfMemoryError.__init__: its message rounds to GiB,
        # which loses the actual numbers for small budgets.  Keep its
        # attribute contract so existing handlers work unchanged.
        self.required_bytes = attempted_bytes
        ReproError.__init__(
            self,
            f"label shard {shard_id} needs {attempted_bytes:,} bytes "
            f"({vertices} vertices, {entries} label entries) but the "
            f"per-shard budget is {budget_bytes:,} bytes; rebalance the "
            f"partitioner or add shards",
        )


class ShardUnavailableError(ReproError):
    """Every replica of a label shard is down; the read cannot be served.

    The serving pipeline catches this per request (the request is
    counted as failed, not served) so one lost shard degrades
    availability instead of crashing the server.
    """

    def __init__(self, shard_id: int, replicas: int):
        self.shard_id = shard_id
        self.replicas = replicas
        super().__init__(
            f"all {replicas} replica(s) of label shard {shard_id} are "
            f"unavailable"
        )


class TimeLimitExceeded(ReproError):
    """The simulated cut-off time (paper: 2 hours) was exceeded.

    Mirrors the paper's "INF" entries.
    """

    def __init__(self, elapsed_seconds: float, limit_seconds: float):
        self.elapsed_seconds = elapsed_seconds
        self.limit_seconds = limit_seconds
        super().__init__(
            f"simulated time {elapsed_seconds:.1f}s exceeded the "
            f"cut-off of {limit_seconds:.1f}s"
        )
