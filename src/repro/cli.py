"""Command-line interface: ``python -m repro <command>``.

Commands
--------
- ``datasets`` — list the Table V dataset stand-ins.
- ``generate`` — write a synthetic graph as an edge list.
- ``build`` — build a reachability index from an edge list.
- ``query`` — answer reachability queries from a saved index.
- ``info`` — describe a saved index.
- ``bench`` — run one paper experiment and print its table(s); with
  ``--save-baseline`` / ``--check-baseline`` it doubles as the perf
  regression gate (see ``benchmarks/baselines/``).
- ``serve-bench`` — benchmark the query-serving layer: sharded labels,
  query cache on/off, admission control under a Zipf/Poisson workload;
  supports the same baseline gate flags (see ``docs/serving.md``).
- ``scenario`` — list (``scenario list``) and run (``scenario run``)
  declarative serving scenarios: traffic shape + fault schedule +
  replication config + expected-result assertions, graded against the
  run (see ``docs/api.md``, "Scenario format").
- ``fuzz`` — differential fuzzing of the index builders against the
  oracle matrix, with failure shrinking and ``--replay`` of saved
  repros (see ``docs/paper_mapping.md``, "Fuzzing oracles").
- ``trace`` — summarize a JSONL telemetry trace; ``--slowest N`` and
  ``--trace-id ID`` drill into per-request traces.
- ``top`` — live serving dashboard over a trace's ``serve.request``
  events (``--once --json`` for scripting, ``--slo`` for burn-rate
  alerts).
- ``profile`` — skew/straggler analysis of a JSONL trace, with
  optional Chrome-trace (Perfetto) and flamegraph export.

``build``, ``query``, ``bench``, and ``serve-bench`` accept
``--trace-out PATH`` (export
spans/events/metrics as JSONL) and ``--verbose`` (mirror telemetry to
stderr via stdlib logging); see ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import logging
import sys
from contextlib import ExitStack
from pathlib import Path

from repro import telemetry
from repro.core.build import METHOD_NAMES, build_index
from repro.core.labels import ReachabilityIndex
from repro.errors import ReproError
from repro.faults import FaultPlan
from repro.fuzz.cases import FAMILIES as FUZZ_FAMILIES
from repro.graph import generators
from repro.graph.io import read_edge_list, write_edge_list
from repro.pregel.cost_model import CostModel, paper_scale_model
from repro.pregel.engine import ENGINE_NAMES
from repro.workloads.datasets import DATASETS

_GENERATORS = generators.GRAPH_KINDS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reachability Labeling for Distributed Graphs (ICDE 2022)",
    )
    telemetry_flags = argparse.ArgumentParser(add_help=False)
    telemetry_flags.add_argument(
        "--trace-out", type=Path, default=None, metavar="PATH",
        help="export telemetry (spans, events, metrics) as JSONL to PATH",
    )
    telemetry_flags.add_argument(
        "--verbose", action="store_true",
        help="log telemetry to stderr while running",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the Table V dataset stand-ins")

    generate = sub.add_parser("generate", help="write a synthetic edge list")
    generate.add_argument("output", type=Path)
    generate.add_argument("--kind", choices=sorted(_GENERATORS), default="social")
    generate.add_argument("--vertices", "-n", type=int, default=1000)
    generate.add_argument("--seed", type=int, default=0)

    build = sub.add_parser(
        "build", help="build an index from an edge list",
        parents=[telemetry_flags],
    )
    build.add_argument("graph", type=Path)
    build.add_argument("--output", "-o", type=Path, required=True)
    build.add_argument("--method", choices=sorted(METHOD_NAMES), default="drl-b")
    build.add_argument("--nodes", type=int, default=32)
    build.add_argument("--batch-size", type=float, default=2)
    build.add_argument("--growth-factor", type=float, default=2.0)
    build.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="inject faults during the build; SPEC is comma-separated "
        "clauses: crash=NODE@SUPERSTEP, straggler=NODExFACTOR, "
        "loss=RATE, dup=RATE, seed=N "
        "(e.g. 'crash=3@5,straggler=2x4.0,loss=0.01,seed=42')",
    )
    build.add_argument(
        "--checkpoint-interval", type=int, default=None, metavar="N",
        help="checkpoint vertex state every N supersteps so crashed "
        "builds recover from the last checkpoint instead of restarting",
    )
    build.add_argument(
        "--time-limit", type=float, default=None, metavar="SECONDS",
        help="simulated-time cut-off for the build (default 7200)",
    )
    build.add_argument(
        "--engine", choices=list(ENGINE_NAMES), default="sim",
        help="execution engine: 'sim' is the deterministic single-process "
        "simulator, 'mp' runs the supersteps across real worker processes "
        "(identical labels; see docs/simulator.md)",
    )
    build.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker-process count for --engine mp (default: cpu count)",
    )

    query = sub.add_parser(
        "query", help="answer queries from a saved index",
        parents=[telemetry_flags],
    )
    query.add_argument("index", type=Path)
    query.add_argument("source", type=int, nargs="?")
    query.add_argument("target", type=int, nargs="?")
    query.add_argument(
        "--pairs", type=Path, help="file of whitespace-separated s t pairs"
    )

    info = sub.add_parser("info", help="describe a saved index")
    info.add_argument("index", type=Path)

    analyze = sub.add_parser("analyze", help="structural stats of a graph")
    analyze.add_argument("graph", type=Path)

    validate = sub.add_parser(
        "validate", help="check an index against its graph"
    )
    validate.add_argument("graph", type=Path)
    validate.add_argument("index", type=Path)
    validate.add_argument(
        "--sample", type=int, default=None,
        help="check this many random pairs instead of all pairs",
    )

    bench = sub.add_parser(
        "bench", help="run one paper experiment", parents=[telemetry_flags]
    )
    bench.add_argument(
        "experiment",
        choices=["table6", "fig5", "fig6", "fig7", "fig8", "fig9", "faults"],
    )
    bench.add_argument("--datasets", nargs="*", default=None)
    bench.add_argument(
        "--save-baseline", nargs="?", const="", default=None, metavar="PATH",
        help="save the results as the regression baseline "
        "(default PATH: benchmarks/baselines/EXPERIMENT.json)",
    )
    bench.add_argument(
        "--check-baseline", nargs="?", const="", default=None, metavar="PATH",
        help="compare the results against a saved baseline and exit "
        "non-zero on regression",
    )
    bench.add_argument(
        "--baseline-threshold", type=float, default=None, metavar="FRACTION",
        help="relative deviation tolerated by --check-baseline "
        "(default 0.1 = 10%%)",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing of the index builders",
        description="Run seeded cases (graph families × configurations) "
        "through the oracle matrix: all builders must agree, satisfy "
        "cover/soundness/canonical, match online BFS, survive fault "
        "injection, and track incremental updates.  Failures are "
        "shrunk and written as one-command repro files.",
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument(
        "--cases", type=int, default=None, metavar="N",
        help="number of cases to run (default 100 unless --time-budget)",
    )
    fuzz.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop after this many wall-clock seconds",
    )
    fuzz.add_argument(
        "--families", nargs="*", default=None, choices=FUZZ_FAMILIES,
        help="restrict to these graph families (default: all)",
    )
    fuzz.add_argument(
        "--replay", type=Path, default=None, metavar="FILE",
        help="re-run one serialized failure repro instead of a campaign",
    )
    fuzz.add_argument(
        "--failures-dir", type=Path, default=Path("fuzz-failures"),
        metavar="DIR", help="where failure repros are written",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="skip delta-debugging of failing cases",
    )
    fuzz.add_argument(
        "--engine", choices=list(ENGINE_NAMES), default="sim",
        help="with 'mp', every case additionally cross-checks the "
        "multiprocessing engine against the simulator "
        "(the engine-mismatch oracle)",
    )

    serve_bench = sub.add_parser(
        "serve-bench",
        help="benchmark the query-serving layer (cached vs uncached)",
        parents=[telemetry_flags],
        description="Shard the index, replay a Zipf-skewed request "
        "stream through the admission/batching pipeline with and "
        "without the query cache, and print throughput, latency "
        "percentiles, cache hit rate, per-shard load skew, and shed "
        "counts.  See docs/serving.md.",
    )
    serve_bench.add_argument(
        "graph", type=Path, nargs="?", default=None,
        help="edge-list file to serve; omit to generate one",
    )
    serve_bench.add_argument(
        "--kind", choices=sorted(_GENERATORS), default="social",
        help="generator used when no graph file is given",
    )
    serve_bench.add_argument("--vertices", "-n", type=int, default=2000)
    serve_bench.add_argument("--seed", type=int, default=0)
    serve_bench.add_argument("--shards", type=int, default=8)
    serve_bench.add_argument(
        "--partitioner", choices=["hash", "modulo", "range", "block"],
        default="hash",
    )
    serve_bench.add_argument(
        "--requests", type=int, default=20000,
        help="length of the request stream (default 20000)",
    )
    serve_bench.add_argument(
        "--arrival", choices=["poisson", "uniform", "closed"],
        default="poisson",
        help="open-loop Poisson/uniform arrivals, or closed-loop clients",
    )
    serve_bench.add_argument(
        "--rate", type=float, default=2_000_000.0,
        help="open-loop offered load in requests per simulated second",
    )
    serve_bench.add_argument(
        "--clients", type=int, default=32,
        help="closed-loop client count (with --arrival closed)",
    )
    serve_bench.add_argument(
        "--zipf", type=float, default=1.4,
        help="source/target popularity skew (0 = uniform)",
    )
    serve_bench.add_argument(
        "--cache-size", type=int, default=65536,
        help="query-cache capacity in entries",
    )
    serve_bench.add_argument(
        "--no-negative-cache", action="store_true",
        help="cache only positive answers",
    )
    serve_bench.add_argument(
        "--cache-only", action="store_true",
        help="run only the cached configuration",
    )
    serve_bench.add_argument(
        "--no-cache", action="store_true",
        help="run only the uncached configuration",
    )
    serve_bench.add_argument(
        "--queue-depth", type=int, default=1024,
        help="admission queue bound; overflow is shed",
    )
    serve_bench.add_argument(
        "--batch-size", type=int, default=32,
        help="requests dequeued per dispatch",
    )
    serve_bench.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="drop requests queued longer than this (simulated seconds); "
        "mixed-mode writes are never deadline-dropped",
    )
    serve_bench.add_argument(
        "--mode", choices=["read", "mixed"], default="read",
        help="'read' replays queries only; 'mixed' interleaves Zipf "
        "reads with a Poisson write stream (edge/node mutations and "
        "order upgrades) through the same admission queue and reports "
        "update throughput, write p99, and the replication staleness "
        "window.  See docs/dynamic.md.",
    )
    serve_bench.add_argument(
        "--writes", type=int, default=2000,
        help="mixed mode: length of the write stream (default 2000)",
    )
    serve_bench.add_argument(
        "--write-rate", type=float, default=200_000.0,
        help="mixed mode: offered write load per simulated second",
    )
    serve_bench.add_argument(
        "--insert-ratio", type=float, default=0.6,
        help="mixed mode: fraction of edge ops that are inserts",
    )
    serve_bench.add_argument(
        "--node-ratio", type=float, default=0.1,
        help="mixed mode: fraction of writes that add/delete nodes",
    )
    serve_bench.add_argument(
        "--promote-ratio", type=float, default=0.05,
        help="mixed mode: fraction of writes that are order upgrades",
    )
    serve_bench.add_argument(
        "--replicas", type=int, default=2,
        help="mixed mode: replica groups fed by the leader's op log",
    )
    serve_bench.add_argument(
        "--replication-delay", type=float, default=2e-3, metavar="SECONDS",
        help="mixed mode: op-log delivery delay to followers",
    )
    serve_bench.add_argument(
        "--max-lag", type=int, default=64,
        help="mixed mode: bounded-staleness lag before forced catch-up",
    )
    serve_bench.add_argument(
        "--drift-threshold", type=int, default=None, metavar="POSITIONS",
        help="mixed mode: auto-promote a vertex whose degree rank "
        "drifted this far above its frozen rank (default: off)",
    )
    serve_bench.add_argument(
        "--save-baseline", nargs="?", const="", default=None, metavar="PATH",
        help="save the table as the serve regression baseline "
        "(default PATH: benchmarks/baselines/serve-bench.json, or "
        "serve-bench-mixed.json with --mode mixed)",
    )
    serve_bench.add_argument(
        "--check-baseline", nargs="?", const="", default=None, metavar="PATH",
        help="compare against a saved baseline; exit non-zero on deviation",
    )
    serve_bench.add_argument(
        "--baseline-threshold", type=float, default=None, metavar="FRACTION",
        help="relative deviation tolerated by --check-baseline "
        "(default 0.1 = 10%%)",
    )
    serve_bench.add_argument(
        "--report", type=Path, default=None, metavar="PATH",
        help="write the per-row reports as JSON (atomic: an interrupted "
        "run never leaves a torn file)",
    )

    scenario = sub.add_parser(
        "scenario",
        help="run declarative serving scenarios with assertions",
        description="Execute declarative serving scenarios (traffic "
        "shape + fault schedule + replication config + expected-result "
        "assertions) and grade their expectations.  See docs/api.md, "
        "'Scenario format'.",
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)
    scenario_sub.add_parser(
        "list", help="list the committed scenario library"
    )
    scenario_run = scenario_sub.add_parser(
        "run",
        help="run scenarios (library names and/or spec files)",
        parents=[telemetry_flags],
    )
    scenario_run.add_argument(
        "scenarios", nargs="*", metavar="NAME_OR_PATH",
        help="library scenario names or paths to spec files "
        "(default: the whole committed library)",
    )
    scenario_run.add_argument(
        "--fail-on-assert", action="store_true",
        help="exit non-zero when any expectation fails "
        "(default: report failures but exit 0)",
    )
    scenario_run.add_argument(
        "--report", type=Path, default=None, metavar="PATH",
        help="write a combined JSON report of all runs (atomic write)",
    )
    scenario_run.add_argument(
        "--incidents-dir", type=Path, default=None, metavar="DIR",
        help="where the flight recorder lands incident bundles "
        "(default: an 'incidents' directory next to --report, or "
        "./incidents); inspect them with 'repro incident'",
    )

    incident = sub.add_parser(
        "incident",
        help="inspect flight-recorder incident bundles",
        description="List, dump, and analyze the incident bundles the "
        "flight recorder lands during scenario runs: 'list' shows one "
        "line per bundle with its top-ranked root cause, 'show' dumps "
        "a bundle's trigger and buffered events, 'report' runs the "
        "causal engine and prints the full post-mortem (timeline + "
        "ranked root-cause candidates with supporting event ids).",
    )
    incident_sub = incident.add_subparsers(
        dest="incident_command", required=True
    )
    incident_list = incident_sub.add_parser(
        "list", help="one line per bundle, oldest first"
    )
    incident_list.add_argument(
        "--dir", type=Path, default=Path("incidents"), metavar="DIR",
        help="bundle directory (default: ./incidents)",
    )
    incident_show = incident_sub.add_parser(
        "show", help="dump one bundle's trigger and buffered events"
    )
    incident_show.add_argument(
        "incident", metavar="ID_OR_PATH",
        help="bundle id (or unique prefix) or a path to a bundle file",
    )
    incident_show.add_argument(
        "--dir", type=Path, default=Path("incidents"), metavar="DIR",
        help="bundle directory (default: ./incidents)",
    )
    incident_report = incident_sub.add_parser(
        "report", help="causal post-mortem: timeline + ranked root causes"
    )
    incident_report.add_argument(
        "incident", metavar="ID_OR_PATH",
        help="bundle id (or unique prefix) or a path to a bundle file",
    )
    incident_report.add_argument(
        "--dir", type=Path, default=Path("incidents"), metavar="DIR",
        help="bundle directory (default: ./incidents)",
    )
    incident_report.add_argument(
        "--json", action="store_true",
        help="print the post-mortem as JSON",
    )

    trace = sub.add_parser(
        "trace", help="summarize a JSONL telemetry trace"
    )
    trace.add_argument("file", type=Path)
    trace.add_argument(
        "--top", type=int, default=15,
        help="span names to show in the ranking (default 15)",
    )
    trace.add_argument(
        "--supersteps", type=int, default=20,
        help="super-step rows to show (default 20)",
    )
    trace.add_argument(
        "--trace-id", default=None, metavar="ID",
        help="print only the request trace(s) with this trace ID",
    )
    trace.add_argument(
        "--slowest", type=int, default=None, metavar="N",
        help="print the N slowest request traces with per-stage breakdown",
    )

    top = sub.add_parser(
        "top",
        help="live serving dashboard over a JSONL trace",
        description="Read the serve.request events of a trace and show "
        "throughput, latency percentiles, hit/shed rates, per-shard "
        "traffic, rolling windows with hot-key and regression flags, "
        "SLO burn-rate alerts, and the worst request traces.  Without "
        "--once the dashboard re-reads the file and refreshes until "
        "interrupted; --once --json prints one machine-readable "
        "snapshot (see docs/observability.md).",
    )
    top.add_argument("file", type=Path)
    top.add_argument(
        "--once", action="store_true",
        help="render one snapshot and exit instead of live-refreshing",
    )
    top.add_argument(
        "--json", action="store_true",
        help="with --once: print the snapshot as JSON",
    )
    top.add_argument(
        "--refresh", type=float, default=2.0, metavar="SECONDS",
        help="live-mode refresh interval (default 2s)",
    )
    top.add_argument(
        "--window", type=float, default=None, metavar="SECONDS",
        help="window length in simulated seconds (default: span / 12)",
    )
    top.add_argument(
        "--slo", type=Path, default=None, metavar="SPEC",
        help="evaluate the SLO specs in this JSON file (see "
        "docs/observability.md)",
    )
    top.add_argument(
        "--fail-on-alert", action="store_true",
        help="exit 1 when any SLO burn-rate alert is firing",
    )
    top.add_argument(
        "--slowest", type=int, default=5, metavar="N",
        help="worst request traces to show (default 5)",
    )
    top.add_argument(
        "--run", type=int, default=None, metavar="N",
        help="select the N-th serving run in the file (1-based; "
        "default: aggregate all runs)",
    )
    top.add_argument(
        "--incidents", type=Path, default=None, metavar="DIR",
        help="also show open incident bundles from this directory "
        "(written by 'repro scenario run')",
    )
    top.add_argument(
        "--openmetrics", action="store_true",
        help="with --once: print the dashboard counters/histograms in "
        "OpenMetrics text exposition format instead of the console view",
    )

    profile = sub.add_parser(
        "profile",
        help="skew/straggler analysis of a JSONL telemetry trace",
    )
    profile.add_argument("file", type=Path)
    profile.add_argument(
        "--top", type=int, default=15,
        help="span names to show in the ranking (default 15)",
    )
    profile.add_argument(
        "--chrome-trace", type=Path, default=None, metavar="PATH",
        help="also export a Chrome trace-event JSON (load in Perfetto "
        "or chrome://tracing)",
    )
    profile.add_argument(
        "--flamegraph", type=Path, default=None, metavar="PATH",
        help="also export folded stacks for flamegraph tooling",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        # Simulated-resource failures (time limit, memory, super-step
        # limit) and bad fault specs are expected outcomes, not bugs:
        # report them like any other usage error instead of tracebacking.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout was piped into e.g. `head`; the truncation is
        # deliberate, so swallow the error instead of tracebacking.
        # Point the fd at devnull so the interpreter's final flush of
        # sys.stdout does not raise the same error again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _dispatch(args) -> int:
    handler = _HANDLERS[args.command]
    trace_out = getattr(args, "trace_out", None)
    verbose = getattr(args, "verbose", False)
    if trace_out is None and not verbose:
        return handler(args)

    from repro.telemetry.sinks import JsonlSink, LoggingSink

    sinks = []
    with ExitStack() as stack:
        if trace_out is not None:
            try:
                sinks.append(JsonlSink(trace_out))
            except OSError as exc:
                print(f"error: cannot write trace to {trace_out}: "
                      f"{exc.strerror or exc}", file=sys.stderr)
                return 2
        if verbose:
            handler_obj = logging.StreamHandler(sys.stderr)
            handler_obj.setFormatter(logging.Formatter("%(name)s: %(message)s"))
            logger = logging.getLogger("repro.telemetry")
            logger.setLevel(logging.INFO)
            logger.addHandler(handler_obj)
            stack.callback(logger.removeHandler, handler_obj)
            sinks.append(LoggingSink(logger))
        with telemetry.session(sinks):
            with telemetry.trace_span(f"cli.{args.command}"):
                code = handler(args)
    if trace_out is not None:
        print(f"trace written to {trace_out}", file=sys.stderr)
    return code


def _cmd_datasets(args) -> int:
    print(f"{'name':6} {'type':10} {'paper |V|':>12} {'paper |E|':>14} medium")
    for spec in DATASETS.values():
        print(
            f"{spec.name:6} {spec.kind:10} {spec.paper_vertices:>12,} "
            f"{spec.paper_edges:>14,} {'yes' if spec.medium else ''}"
        )
    return 0


def _cmd_generate(args) -> int:
    factory = _GENERATORS[args.kind]
    graph = factory(args.vertices, seed=args.seed)
    write_edge_list(graph, args.output)
    print(f"wrote {graph.num_vertices} vertices / {graph.num_edges} edges "
          f"to {args.output}")
    return 0


def _cmd_build(args) -> int:
    if not args.graph.exists():
        print(f"error: no such file: {args.graph}", file=sys.stderr)
        return 2
    graph = read_edge_list(args.graph)
    kwargs = {}
    if args.method == "drl-b":
        kwargs = dict(
            initial_batch_size=args.batch_size, growth_factor=args.growth_factor
        )
    if args.engine != "sim":
        if args.method == "tol":
            print(
                "error: --engine needs a cluster method; the serial "
                "'tol' baseline runs outside the Pregel engines",
                file=sys.stderr,
            )
            return 2
        if args.faults is not None or args.checkpoint_interval is not None:
            print(
                "error: --faults/--checkpoint-interval only work on the "
                "deterministic simulator; drop them or use --engine sim",
                file=sys.stderr,
            )
            return 2
        if args.workers is not None and args.workers < 1:
            print("error: --workers must be at least 1", file=sys.stderr)
            return 2
        kwargs["engine"] = args.engine
        if args.workers is not None:
            kwargs["workers"] = args.workers
    elif args.workers is not None:
        print(
            "error: --workers only applies to --engine mp", file=sys.stderr
        )
        return 2
    if args.faults is not None or args.checkpoint_interval is not None:
        if args.method == "tol":
            print(
                "error: --faults/--checkpoint-interval need a cluster "
                "method; the serial 'tol' baseline has no nodes to fail",
                file=sys.stderr,
            )
            return 2
        if args.faults is not None:
            plan = FaultPlan.parse(args.faults)
            try:
                plan.validate_for(args.nodes)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            kwargs["faults"] = plan
        if args.checkpoint_interval is not None:
            if args.checkpoint_interval < 1:
                print(
                    "error: --checkpoint-interval must be at least 1",
                    file=sys.stderr,
                )
                return 2
            kwargs["checkpoint_interval"] = args.checkpoint_interval
    if args.time_limit is not None:
        kwargs["cost_model"] = CostModel().with_time_limit(args.time_limit)
    result = build_index(
        graph, method=args.method, num_nodes=args.nodes, **kwargs
    )
    result.index.save(args.output)
    print(f"built {args.method} index for n={graph.num_vertices} "
          f"m={graph.num_edges}")
    print(f"  entries: {result.index.num_entries}  "
          f"size: {result.index.size_bytes() / 1024:.1f} KiB  "
          f"delta: {result.index.largest_label}")
    print(f"  {result.stats.summary()}")
    print(f"saved to {args.output}")
    return 0


def _parse_pairs_file(path: Path) -> tuple[list[tuple[int, int]], int]:
    """Parse a whitespace-separated pairs file, skipping bad lines.

    Returns ``(pairs, skipped)``; each malformed line (fewer than two
    columns, or non-integer tokens) is reported to stderr.
    """
    pairs: list[tuple[int, int]] = []
    skipped = 0
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if not line.strip():
            continue
        tokens = line.split()
        if len(tokens) < 2:
            print(
                f"warning: {path}:{lineno}: expected two columns, "
                f"got {len(tokens)}; skipped",
                file=sys.stderr,
            )
            skipped += 1
            continue
        try:
            pairs.append((int(tokens[0]), int(tokens[1])))
        except ValueError:
            print(
                f"warning: {path}:{lineno}: non-integer pair "
                f"{tokens[0]!r} {tokens[1]!r}; skipped",
                file=sys.stderr,
            )
            skipped += 1
    return pairs, skipped


def _cmd_query(args) -> int:
    from repro.query.service import IndexBackend, QueryService

    if not args.index.exists():
        print(f"error: no such file: {args.index}", file=sys.stderr)
        return 2
    index = ReachabilityIndex.load(args.index)
    skipped = 0
    if args.pairs is not None:
        pairs, skipped = _parse_pairs_file(args.pairs)
    elif args.source is not None and args.target is not None:
        pairs = [(args.source, args.target)]
    else:
        print("error: give SOURCE TARGET or --pairs FILE", file=sys.stderr)
        return 2
    service = QueryService(IndexBackend(index))
    for s, t in pairs:
        if not (0 <= s < index.num_vertices and 0 <= t < index.num_vertices):
            print(f"{s} {t} out-of-range")
            continue
        print(f"{s} {t} {'reachable' if service.query(s, t) else 'unreachable'}")
    if skipped:
        print(f"warning: skipped {skipped} malformed line(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_info(args) -> int:
    if not args.index.exists():
        print(f"error: no such file: {args.index}", file=sys.stderr)
        return 2
    index = ReachabilityIndex.load(args.index)
    print(f"vertices:      {index.num_vertices}")
    print(f"label entries: {index.num_entries}")
    print(f"size:          {index.size_bytes() / 1024:.1f} KiB")
    print(f"largest label: {index.largest_label}")
    print(f"average label: {index.average_label:.2f}")
    return 0


def _cmd_analyze(args) -> int:
    if not args.graph.exists():
        print(f"error: no such file: {args.graph}", file=sys.stderr)
        return 2
    from repro.graph.analysis import bowtie_decomposition, degree_summary
    from repro.graph.scc import strongly_connected_components

    graph = read_edge_list(args.graph)
    print(f"vertices: {graph.num_vertices}   edges: {graph.num_edges}")
    stats = degree_summary(graph)
    print(f"degrees:  max in {stats['max_in']}, max out {stats['max_out']}, "
          f"mean {stats['mean_degree']:.2f}")
    print(f"hub concentration: top-1% vertices hold "
          f"{stats['top1_in_share']:.0%} of in-degree")
    components = strongly_connected_components(graph)
    nontrivial = sum(1 for c in components if len(c) > 1)
    print(f"SCCs: {len(components)} ({nontrivial} non-trivial)")
    print(f"bow-tie: {bowtie_decomposition(graph).summary()}")
    return 0


def _cmd_validate(args) -> int:
    for path in (args.graph, args.index):
        if not path.exists():
            print(f"error: no such file: {path}", file=sys.stderr)
            return 2
    from repro.core.validate import check_cover, check_soundness

    graph = read_edge_list(args.graph)
    index = ReachabilityIndex.load(args.index)
    cover = check_cover(index, graph, sample=args.sample)
    soundness = check_soundness(index, graph)
    print(f"cover:     {cover}")
    print(f"soundness: {soundness}")
    for violation in (cover.violations + soundness.violations)[:10]:
        print(f"  violation: {violation}")
    suppressed = cover.suppressed + soundness.suppressed
    if suppressed:
        print(f"  ... {suppressed} further violation(s) suppressed")
    return 0 if cover.ok and soundness.ok else 1


def _cmd_bench(args) -> int:
    from repro.bench import harness
    from repro.bench.results import capture_tables

    names = args.datasets
    model = paper_scale_model()
    with capture_tables() as started:
        try:
            if args.experiment == "table6":
                tables = harness.run_table6(dataset_names=names, cost_model=model)
            elif args.experiment == "fig5":
                tables = (harness.run_fig5_comm_comp(names, cost_model=model),)
            elif args.experiment == "fig6":
                tables = tuple(
                    harness.run_fig6_speedup(names, cost_model=model).values()
                )
            elif args.experiment == "fig7":
                tables = tuple(
                    harness.run_fig7_scalability(names, cost_model=model).values()
                )
            elif args.experiment == "fig8":
                tables = (harness.run_fig8_batch_size(names, cost_model=model),)
            elif args.experiment == "fig9":
                tables = (harness.run_fig9_factor_k(names, cost_model=model),)
            else:
                tables = (harness.run_fault_recovery(names, cost_model=model),)
        except KeyboardInterrupt:
            # Measurements land in their tables cell by cell; print what
            # completed before the interrupt instead of discarding it.
            print("interrupted — partial results:", file=sys.stderr)
            for table in started:
                if table.rows:
                    print(table.render())
                    print()
            return 130
    for table in tables:
        print(table.render())
        print()
    exit_code = 0
    if args.check_baseline is not None or args.save_baseline is not None:
        from repro.bench.baseline import (
            DEFAULT_THRESHOLD,
            compare_to_baseline,
            default_baseline_path,
            load_baseline,
            save_baseline,
        )

        if args.check_baseline is not None:
            path = (
                Path(args.check_baseline)
                if args.check_baseline
                else default_baseline_path(args.experiment)
            )
            threshold = (
                args.baseline_threshold
                if args.baseline_threshold is not None
                else DEFAULT_THRESHOLD
            )
            comparison = compare_to_baseline(
                load_baseline(path), list(tables), threshold=threshold
            )
            print(comparison.render())
            if not comparison.ok:
                exit_code = 1
        if args.save_baseline is not None:
            path = (
                Path(args.save_baseline)
                if args.save_baseline
                else default_baseline_path(args.experiment)
            )
            saved = save_baseline(args.experiment, list(tables), path)
            print(f"baseline saved to {saved}", file=sys.stderr)
    return exit_code


def _cmd_serve_bench(args) -> int:
    from repro.serve.bench import (
        caching_speedup,
        run_mixed_serve_bench,
        run_serve_bench,
    )

    if args.cache_only and args.no_cache:
        print("error: --cache-only and --no-cache exclude each other",
              file=sys.stderr)
        return 2
    if args.graph is not None:
        if not args.graph.exists():
            print(f"error: no such file: {args.graph}", file=sys.stderr)
            return 2
        graph = read_edge_list(args.graph)
    else:
        graph = _GENERATORS[args.kind](args.vertices, seed=args.seed)
        print(f"generated {args.kind} graph: n={graph.num_vertices} "
              f"m={graph.num_edges}", file=sys.stderr)
    if args.mode == "mixed":
        baseline_name = "serve-bench-mixed"
        try:
            table, reports = run_mixed_serve_bench(
                graph,
                shards=args.shards,
                partitioner=args.partitioner,
                requests=args.requests,
                rate=args.rate,
                zipf=args.zipf,
                cache_size=args.cache_size,
                negative_cache=not args.no_negative_cache,
                queue_depth=args.queue_depth,
                batch_size=args.batch_size,
                deadline_seconds=args.deadline,
                seed=args.seed,
                writes=args.writes,
                write_rate=args.write_rate,
                insert_ratio=args.insert_ratio,
                node_ratio=args.node_ratio,
                promote_ratio=args.promote_ratio,
                replicas=args.replicas,
                replication_delay=args.replication_delay,
                max_lag=args.max_lag,
                drift_threshold=args.drift_threshold,
                with_cache=not args.no_cache,
                without_cache=not args.cache_only,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        baseline_name = "serve-bench"
        table, reports = run_serve_bench(
            graph,
            shards=args.shards,
            partitioner=args.partitioner,
            requests=args.requests,
            rate=args.rate,
            arrival=args.arrival,
            clients=args.clients,
            zipf=args.zipf,
            cache_size=args.cache_size,
            negative_cache=not args.no_negative_cache,
            queue_depth=args.queue_depth,
            batch_size=args.batch_size,
            deadline_seconds=args.deadline,
            seed=args.seed,
            with_cache=not args.no_cache,
            without_cache=not args.cache_only,
        )
    for row, report in reports.items():
        print(f"[{row}]")
        print(report.summary())
        print()
    print(table.render())
    speedup = caching_speedup(reports)
    if speedup is not None:
        print(f"\ncaching speedup: {speedup:.2f}x throughput")
    if args.report is not None:
        import dataclasses
        import json as json_module

        from repro.bench.results import atomic_write_text

        payload = {
            "rows": {
                row: dataclasses.asdict(report)
                for row, report in reports.items()
            },
        }
        if speedup is not None:
            payload["caching_speedup"] = speedup
        atomic_write_text(
            args.report, json_module.dumps(payload, indent=2) + "\n"
        )
        print(f"report written to {args.report}", file=sys.stderr)
    exit_code = 0
    if args.check_baseline is not None or args.save_baseline is not None:
        from repro.bench.baseline import (
            DEFAULT_THRESHOLD,
            compare_to_baseline,
            default_baseline_path,
            load_baseline,
            save_baseline,
        )

        if args.check_baseline is not None:
            path = (
                Path(args.check_baseline)
                if args.check_baseline
                else default_baseline_path(baseline_name)
            )
            threshold = (
                args.baseline_threshold
                if args.baseline_threshold is not None
                else DEFAULT_THRESHOLD
            )
            comparison = compare_to_baseline(
                load_baseline(path), [table], threshold=threshold
            )
            print(comparison.render())
            if not comparison.ok:
                exit_code = 1
        if args.save_baseline is not None:
            path = (
                Path(args.save_baseline)
                if args.save_baseline
                else default_baseline_path(baseline_name)
            )
            saved = save_baseline(baseline_name, [table], path)
            print(f"baseline saved to {saved}", file=sys.stderr)
    return exit_code


def _cmd_scenario(args) -> int:
    from repro.scenarios import (
        library_scenarios,
        load_scenario,
        run_scenario,
        write_scenario_report,
    )

    library = library_scenarios()
    if args.scenario_command == "list":
        if not library:
            print("no committed scenarios found")
            return 0
        width = max(len(name) for name in library)
        for name, path in library.items():
            spec = load_scenario(path)
            print(f"{name:<{width}}  {spec.description or '(no description)'}")
        return 0

    names = args.scenarios or sorted(library)
    specs = []
    for name in names:
        if name in library:
            specs.append(load_scenario(library[name]))
        elif Path(name).exists():
            specs.append(load_scenario(Path(name)))
        else:
            print(
                f"error: {name!r} is neither a library scenario "
                f"({', '.join(sorted(library)) or 'none committed'}) "
                f"nor a spec file",
                file=sys.stderr,
            )
            return 2
    incident_dir = args.incidents_dir
    if incident_dir is None:
        # Bundles land next to the report by default, so a red CI run
        # always ships its own post-mortem artifact.
        base = args.report.parent if args.report is not None else Path(".")
        incident_dir = base / "incidents"
    results = []
    for spec in specs:
        result = run_scenario(spec, incident_dir=incident_dir)
        results.append(result)
        print(result.render())
        print()
    passed = sum(result.ok for result in results)
    print(f"{passed}/{len(results)} scenario(s) passed")
    bundles = sum(len(result.incidents) for result in results)
    if bundles:
        print(
            f"{bundles} incident bundle(s) in {incident_dir} "
            f"(inspect with: repro incident list --dir {incident_dir})"
        )
    if args.report is not None:
        write_scenario_report(results, args.report)
        print(f"report written to {args.report}", file=sys.stderr)
    if args.fail_on_assert and passed != len(results):
        return 1
    return 0


def _cmd_incident(args) -> int:
    from repro.observe.incident import (
        find_bundle,
        format_bundle_row,
        list_bundles,
        load_bundle,
        render_bundle,
        render_incident_report,
        summarize_bundle,
    )

    if args.incident_command == "list":
        bundles = list_bundles(args.dir)
        if not bundles:
            print(f"no incident bundles under {args.dir}")
            return 0
        for _, bundle in bundles:
            print(format_bundle_row(summarize_bundle(bundle)))
        print(f"{len(bundles)} incident(s)")
        return 0

    try:
        path = find_bundle(args.incident, args.dir)
        bundle = load_bundle(path)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.incident_command == "show":
        print(render_bundle(bundle))
        return 0
    if getattr(args, "json", False):
        import json as _json

        from repro.observe.incident import analyze_bundle

        print(_json.dumps(analyze_bundle(bundle).to_dict(), indent=2))
    else:
        print(render_incident_report(bundle))
    return 0


def _cmd_fuzz(args) -> int:
    from repro.fuzz.runner import replay_failure, run_fuzz

    if args.replay is not None:
        if not args.replay.exists():
            print(f"error: no such file: {args.replay}", file=sys.stderr)
            return 2
        data, result = replay_failure(args.replay)
        print(f"replaying {args.replay}")
        print(f"  {data['case'].describe()}")
        if "fingerprint" in data:
            print(f"  recorded failure: [{data.get('oracle', '?')}] "
                  f"{data.get('message', '')}")
        if result.ok:
            print("  all oracles pass — the failure no longer reproduces")
            return 0
        for failure in result.failures:
            print(f"  [{failure.oracle}] {failure.message}")
        return 1

    count = args.cases
    if count is None and args.time_budget is None:
        count = 100
    if args.time_budget is not None and args.time_budget <= 0:
        print("error: --time-budget must be positive", file=sys.stderr)
        return 2
    report = run_fuzz(
        seed=args.seed,
        count=count,
        time_budget=args.time_budget,
        families=args.families or None,
        failures_dir=args.failures_dir,
        shrink=not args.no_shrink,
        engine=args.engine,
        progress=lambda message: print(message, file=sys.stderr),
    )
    print(report.render())
    return 0 if report.ok else 1


def _read_trace_tolerantly(path: Path):
    """Shared trace loading for ``trace``/``profile``: returns
    ``(records, exit_code)`` where records is ``None`` on a hard error.

    Malformed lines are reported to stderr as counted warnings and turn
    the eventual exit code into 1 (the summary still prints), matching
    ``query --pairs``.
    """
    from repro.telemetry.report import TraceReadError, read_trace

    if not path.exists():
        print(f"error: no such file: {path}", file=sys.stderr)
        return None, 2
    try:
        records = read_trace(path)
    except TraceReadError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None, 2
    for reason in records.skipped[:5]:
        print(f"warning: {reason}; skipped", file=sys.stderr)
    if records.skipped:
        print(
            f"warning: skipped {len(records.skipped)} malformed line(s)",
            file=sys.stderr,
        )
        return records, 1
    return records, 0


def _cmd_trace(args) -> int:
    from repro.telemetry.report import (
        find_request_traces,
        format_request_trace,
        slowest_requests_section,
        summarize_trace,
    )

    records, exit_code = _read_trace_tolerantly(args.file)
    if records is None:
        return exit_code
    if args.trace_id is not None:
        matches = find_request_traces(records, args.trace_id)
        if not matches:
            print(f"error: no request trace with ID {args.trace_id!r} "
                  f"in {args.file}", file=sys.stderr)
            return 1
        for attrs in matches:
            print(format_request_trace(attrs))
        return exit_code
    if args.slowest is not None:
        section = slowest_requests_section(records, args.slowest)
        if section is None:
            print(f"error: no served request traces in {args.file}",
                  file=sys.stderr)
            return 1
        print(section)
        return exit_code
    print(summarize_trace(records, top=args.top, superstep_limit=args.supersteps))
    return exit_code


def _cmd_top(args) -> int:
    import time

    from repro.observe.dashboard import DashboardModel
    from repro.observe.slo import load_slo_specs

    if args.json and not args.once:
        print("error: --json needs --once", file=sys.stderr)
        return 2
    if args.openmetrics and not args.once:
        print("error: --openmetrics needs --once", file=sys.stderr)
        return 2
    if args.openmetrics and args.json:
        print("error: --openmetrics and --json are exclusive", file=sys.stderr)
        return 2
    incidents = None
    if args.incidents is not None:
        from repro.observe.incident import list_bundles, summarize_bundle

        incidents = [
            summarize_bundle(bundle)
            for _, bundle in list_bundles(args.incidents)
        ]
    specs = None
    if args.slo is not None:
        if not args.slo.exists():
            print(f"error: no such file: {args.slo}", file=sys.stderr)
            return 2
        try:
            specs = load_slo_specs(args.slo)
        except (ValueError, OSError) as exc:
            print(f"error: bad SLO spec {args.slo}: {exc}", file=sys.stderr)
            return 2

    def build_model():
        records, exit_code = _read_trace_tolerantly(args.file)
        if records is None:
            return None, exit_code
        try:
            model = DashboardModel.from_records(
                records,
                run=args.run,
                window_seconds=args.window,
                specs=specs,
                slowest=args.slowest,
                incidents=incidents,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return None, 2
        return model, exit_code

    if args.once:
        model, exit_code = build_model()
        if model is None:
            return exit_code
        if not model.requests:
            print(f"error: no request traces in {args.file} "
                  "(run serve-bench with --trace-out)", file=sys.stderr)
            return 1
        if args.json:
            import json as _json

            print(_json.dumps(model.to_json(), indent=2))
        elif args.openmetrics:
            from repro.observe.openmetrics import render_openmetrics

            print(render_openmetrics(model), end="")
        else:
            print(model.render())
        if args.fail_on_alert and model.firing_alerts:
            for alert in model.firing_alerts:
                print(
                    f"ALERT[{alert['severity']}] {alert['slo']}: "
                    f"burn {alert['long_burn']:.1f}x/"
                    f"{alert['short_burn']:.1f}x > "
                    f"{alert['burn_threshold']:.1f}x",
                    file=sys.stderr,
                )
            return 1
        return exit_code
    # Live mode: re-read and re-render until interrupted.
    try:
        while True:
            model, exit_code = build_model()
            if model is None:
                return exit_code
            # ANSI clear + home, then the fresh frame.
            sys.stdout.write("\x1b[2J\x1b[H")
            print(model.render())
            print(f"\n(refreshing every {args.refresh:g}s — Ctrl-C to exit)")
            sys.stdout.flush()
            time.sleep(args.refresh)
    except KeyboardInterrupt:
        return 0


def _cmd_profile(args) -> int:
    from repro.profiling import (
        profile_report,
        write_chrome_trace,
        write_folded_stacks,
    )

    records, exit_code = _read_trace_tolerantly(args.file)
    if records is None:
        return exit_code
    # Export before printing: a closed stdout pipe must not lose the files.
    if args.chrome_trace is not None:
        write_chrome_trace(records, args.chrome_trace)
        print(f"chrome trace written to {args.chrome_trace}", file=sys.stderr)
    if args.flamegraph is not None:
        write_folded_stacks(records, args.flamegraph)
        print(f"folded stacks written to {args.flamegraph}", file=sys.stderr)
    print(profile_report(records, top=args.top))
    return exit_code


_HANDLERS = {
    "datasets": _cmd_datasets,
    "generate": _cmd_generate,
    "build": _cmd_build,
    "query": _cmd_query,
    "info": _cmd_info,
    "analyze": _cmd_analyze,
    "validate": _cmd_validate,
    "bench": _cmd_bench,
    "serve-bench": _cmd_serve_bench,
    "scenario": _cmd_scenario,
    "incident": _cmd_incident,
    "fuzz": _cmd_fuzz,
    "trace": _cmd_trace,
    "top": _cmd_top,
    "profile": _cmd_profile,
}


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
