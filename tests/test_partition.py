"""Tests for vertex partitioners."""

import pytest

from repro.graph.partition import (
    PARTITIONER_STRATEGIES,
    BlockPartitioner,
    HashPartitioner,
    ModuloPartitioner,
    Partitioner,
    RangePartitioner,
)


@pytest.mark.parametrize(
    "partitioner",
    [
        HashPartitioner(4),
        ModuloPartitioner(4),
        RangePartitioner(4, 100),
        BlockPartitioner(4, block_size=8),
    ],
    ids=["hash", "modulo", "range", "block"],
)
def test_assignment_in_range_and_deterministic(partitioner):
    for v in range(100):
        node = partitioner.node_of(v)
        assert 0 <= node < 4
        assert node == partitioner.node_of(v)


def test_partition_materialization_covers_all():
    partitioner = HashPartitioner(3)
    parts = partitioner.partition(50)
    assert len(parts) == 3
    assert sorted(v for part in parts for v in part) == list(range(50))


def test_hash_partitioner_balance():
    parts = HashPartitioner(8).partition(8000)
    sizes = [len(p) for p in parts]
    assert max(sizes) < 2 * min(sizes)


def test_modulo_partitioner_literal():
    p = ModuloPartitioner(4)
    assert [p.node_of(v) for v in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]


def test_range_partitioner_contiguous():
    p = RangePartitioner(4, 100)
    assert p.node_of(0) == 0
    assert p.node_of(24) == 0
    assert p.node_of(25) == 1
    assert p.node_of(99) == 3


def test_range_partitioner_more_nodes_than_vertices():
    p = RangePartitioner(10, 3)
    assert {p.node_of(v) for v in range(3)} <= set(range(10))


def test_block_partitioner_round_robin():
    p = BlockPartitioner(2, block_size=2)
    assert [p.node_of(v) for v in range(8)] == [0, 0, 1, 1, 0, 0, 1, 1]


def test_invalid_parameters():
    with pytest.raises(ValueError):
        HashPartitioner(0)
    with pytest.raises(ValueError):
        RangePartitioner(2, -1)
    with pytest.raises(ValueError):
        BlockPartitioner(2, block_size=0)


def test_single_node_everything_local():
    for name, factory in PARTITIONER_STRATEGIES.items():
        p = factory(1, 20)
        assert all(p.node_of(v) == 0 for v in range(20)), name


def test_strategy_registry_keys():
    assert set(PARTITIONER_STRATEGIES) == {"hash", "modulo", "range", "block"}
    for factory in PARTITIONER_STRATEGIES.values():
        assert isinstance(factory(4, 100), Partitioner)
