"""Unit tests for GraphBuilder."""

import pytest

from repro.graph.builder import GraphBuilder


def test_build_empty():
    assert GraphBuilder().build().num_vertices == 0
    assert GraphBuilder(num_vertices=5).build().num_vertices == 5


def test_vertex_count_inferred():
    g = GraphBuilder().add_edge(0, 7).build()
    assert g.num_vertices == 8
    assert g.num_edges == 1


def test_dedup_default():
    builder = GraphBuilder()
    builder.add_edge(0, 1).add_edge(0, 1).add_edge(1, 0)
    assert builder.num_edges == 2
    assert builder.build().num_edges == 2


def test_dedup_disabled():
    builder = GraphBuilder(dedup=False)
    builder.add_edge(0, 1).add_edge(0, 1)
    assert builder.build().num_edges == 2


def test_self_loops_dropped_by_default():
    g = GraphBuilder().add_edge(0, 0).add_edge(0, 1).build()
    assert g.num_edges == 1
    assert not g.has_edge(0, 0)


def test_self_loops_kept_when_allowed():
    g = GraphBuilder(allow_self_loops=True).add_edge(0, 0).build()
    assert g.has_edge(0, 0)


def test_add_edges_bulk():
    g = GraphBuilder().add_edges([(0, 1), (1, 2), (2, 0)]).build()
    assert g.num_edges == 3


def test_negative_ids_rejected():
    with pytest.raises(ValueError):
        GraphBuilder().add_edge(-1, 0)
    with pytest.raises(ValueError):
        GraphBuilder().add_edge(0, -2)


def test_fixed_vertex_count_enforced():
    builder = GraphBuilder(num_vertices=3)
    builder.add_edge(0, 5)
    with pytest.raises(ValueError):
        builder.build()


def test_chaining_returns_builder():
    builder = GraphBuilder()
    assert builder.add_edge(0, 1) is builder
    assert builder.add_edges([(1, 2)]) is builder
