"""Tests for the dataset registry and query generators."""

import pytest

from repro.baselines.transitive_closure import TransitiveClosure
from repro.graph.generators import random_digraph, social_graph
from repro.workloads.datasets import DATASETS, MEDIUM_DATASETS, get_dataset
from repro.workloads.queries import (
    balanced_pairs,
    negative_pairs,
    positive_pairs,
    random_pairs,
)


def test_registry_has_all_18_table_v_rows():
    assert len(DATASETS) == 18
    expected = {
        "WEBW", "DBPE", "CITE", "CITP", "TW", "GO", "SINA", "LINK",
        "WEBB", "GRPH", "TWIT", "HOST", "GSH", "SK", "TWIM", "FRIE",
        "UK", "WEBS",
    }
    assert set(DATASETS) == expected


def test_medium_datasets_are_the_figure_six():
    assert MEDIUM_DATASETS == ("WEBW", "DBPE", "CITE", "CITP", "TW", "GO")
    for name in MEDIUM_DATASETS:
        assert DATASETS[name].medium


def test_paper_scale_metadata_matches_table_v():
    assert DATASETS["WEBS"].paper_edges == 3_738_733_648
    assert DATASETS["WEBW"].paper_vertices == 1_864_433
    assert DATASETS["SK"].full_name == "Sk-2005"


def test_availability_flags_follow_table_vi():
    # SINA: BFL^C ran, TOL and DRL_b^M did not.
    sina = DATASETS["SINA"]
    assert sina.available("bfl-c")
    assert not sina.available("tol")
    assert not sina.available("drl-b-m")
    # WEBB and the other billion-edge graphs lose all three.
    webb = DATASETS["WEBB"]
    assert not webb.available("bfl-c")
    assert not webb.available("tol")
    # Distributed methods always run.
    for spec in DATASETS.values():
        assert spec.available("drl-b")
        assert spec.available("bfl-d")


def test_medium_loads_are_cached_and_deterministic():
    spec = get_dataset("WEBW")
    a = spec.load()
    b = spec.load()
    assert a is b  # memoized
    assert a.num_vertices > 1000


def test_get_dataset_case_insensitive():
    assert get_dataset("webw") is DATASETS["WEBW"]
    with pytest.raises(KeyError):
        get_dataset("NOPE")


def test_dataset_types_match_table_v():
    assert DATASETS["GRPH"].kind == "synthetic"
    assert DATASETS["TW"].kind == "social"
    assert DATASETS["GO"].kind == "biology"
    assert DATASETS["DBPE"].kind == "knowledge"
    assert DATASETS["CITE"].kind == "citation"
    assert DATASETS["UK"].kind == "web"


# ----------------------------------------------------------------------
# Query generators
# ----------------------------------------------------------------------
def test_random_pairs_deterministic_in_range():
    pairs = random_pairs(100, 500, seed=4)
    assert len(pairs) == 500
    assert all(0 <= s < 100 and 0 <= t < 100 for s, t in pairs)
    assert pairs == random_pairs(100, 500, seed=4)
    assert pairs != random_pairs(100, 500, seed=5)


def test_random_pairs_empty_graph_rejected():
    with pytest.raises(ValueError):
        random_pairs(0, 10)


def test_positive_pairs_are_positive():
    g = social_graph(300, seed=1)
    oracle = TransitiveClosure(g)
    pairs = positive_pairs(g, 50, seed=2)
    assert len(pairs) == 50
    assert all(oracle.query(s, t) for s, t in pairs)
    assert all(s != t for s, t in pairs)


def test_positive_pairs_impossible_graph():
    from repro.graph.digraph import DiGraph

    g = DiGraph(5, [])  # nothing reaches anything else
    with pytest.raises(ValueError):
        positive_pairs(g, 5, seed=0, max_attempts_factor=5)


def test_negative_pairs_are_negative():
    g = social_graph(300, seed=3)
    oracle = TransitiveClosure(g)
    pairs = negative_pairs(g, oracle.query, 50, seed=4)
    assert len(pairs) == 50
    assert not any(oracle.query(s, t) for s, t in pairs)


def test_negative_pairs_impossible_graph():
    from repro.graph.digraph import DiGraph

    n = 4
    g = DiGraph(n, [(u, v) for u in range(n) for v in range(n) if u != v])
    oracle = TransitiveClosure(g)
    with pytest.raises(ValueError):
        negative_pairs(g, oracle.query, 5, seed=0, max_attempts_factor=5)


def test_balanced_pairs_mix():
    g = random_digraph(200, 500, seed=5)
    oracle = TransitiveClosure(g)
    pairs = balanced_pairs(g, oracle.query, 60, seed=6)
    assert len(pairs) == 60
    positives = sum(oracle.query(s, t) for s, t in pairs)
    assert positives == 30
