"""Smoke tests: every example script must run end-to-end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py"),
    key=lambda p: p.name,
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(script)])
    try:
        runpy.run_path(str(script), run_name="__main__")
    except SystemExit as exit_info:
        assert not exit_info.code, f"{script.name} exited with {exit_info.code}"
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "social_influence.py",
            "citation_provenance.py", "cluster_sizing.py"} <= names
