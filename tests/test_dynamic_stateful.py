"""Stateful property test: the dynamic index as a state machine.

Hypothesis drives arbitrary interleavings of insertions, deletions,
and queries against a model (rebuilt TOL + exact reachability) and
shrinks any failing interleaving to a minimal counterexample.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.baselines.transitive_closure import TransitiveClosure
from repro.core.dynamic import DynamicReachabilityIndex
from repro.core.tol import tol_index
from repro.graph.digraph import DiGraph

_N = 8
_VERTEX = st.integers(min_value=0, max_value=_N - 1)


class DynamicIndexMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.dynamic = DynamicReachabilityIndex(DiGraph(_N, []))
        self.edges: set[tuple[int, int]] = set()

    @rule(u=_VERTEX, v=_VERTEX)
    def insert(self, u, v):
        if u == v:
            return
        added = self.dynamic.insert_edge(u, v)
        assert added == ((u, v) not in self.edges)
        self.edges.add((u, v))

    @rule(u=_VERTEX, v=_VERTEX)
    def delete(self, u, v):
        if u == v:
            return
        removed = self.dynamic.delete_edge(u, v)
        assert removed == ((u, v) in self.edges)
        self.edges.discard((u, v))

    @rule(s=_VERTEX, t=_VERTEX)
    def query(self, s, t):
        oracle = TransitiveClosure(DiGraph(_N, sorted(self.edges)))
        assert self.dynamic.query(s, t) == oracle.query(s, t)

    @invariant()
    def index_is_exactly_tol(self):
        graph = DiGraph(_N, sorted(self.edges))
        assert self.dynamic.snapshot() == tol_index(graph, self.dynamic.order)


DynamicIndexMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=20, deadline=None
)
TestDynamicIndexMachine = DynamicIndexMachine.TestCase
