"""Stateful property test: the dynamic index as a state machine.

Hypothesis drives arbitrary interleavings of edge insertions/deletions,
node additions/deletions, order upgrades (explicit promotes plus
drift-triggered automatic ones), and queries against a model (rebuilt
TOL + exact reachability) and shrinks any failing interleaving to a
minimal counterexample.  The invariant is the repo's dynamic contract:
after every step, ``snapshot() == tol_index(current_graph, order)``
for the index's *current* order.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.baselines.transitive_closure import TransitiveClosure
from repro.core.dynamic import DynamicReachabilityIndex
from repro.core.tol import tol_index
from repro.graph.digraph import DiGraph

_N = 8
_RAW = st.integers(min_value=0, max_value=31)


class DynamicIndexMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        # A small drift threshold so automatic promotions fire
        # organically inside the interleavings under test.
        self.dynamic = DynamicReachabilityIndex(
            DiGraph(_N, []), drift_threshold=3
        )
        self.n = _N
        self.dead: set[int] = set()
        self.edges: set[tuple[int, int]] = set()

    def _vertex(self, raw: int) -> int:
        """Map a raw draw onto a currently alive vertex id."""
        alive = [v for v in range(self.n) if v not in self.dead]
        return alive[raw % len(alive)]

    @rule(u=_RAW, v=_RAW)
    def insert(self, u, v):
        u, v = self._vertex(u), self._vertex(v)
        if u == v:
            return
        added = self.dynamic.insert_edge(u, v)
        assert added == ((u, v) not in self.edges)
        self.edges.add((u, v))

    @rule(u=_RAW, v=_RAW)
    def delete(self, u, v):
        u, v = self._vertex(u), self._vertex(v)
        if u == v:
            return
        removed = self.dynamic.delete_edge(u, v)
        assert removed == ((u, v) in self.edges)
        self.edges.discard((u, v))

    @rule()
    def add_node(self):
        v = self.dynamic.add_node()
        assert v == self.n  # ids are dense and never recycled
        self.n += 1

    @rule(raw=_RAW)
    def delete_node(self, raw):
        if self.n - len(self.dead) <= 2:
            return
        v = self._vertex(raw)
        assert self.dynamic.delete_node(v)
        self.dead.add(v)
        self.edges = {(a, b) for a, b in self.edges if v not in (a, b)}

    @rule(raw=_RAW)
    def promote(self, raw):
        v = self._vertex(raw)
        new_rank = self.dynamic.promote(v)
        if new_rank is not None:
            assert self.dynamic.order.ranks[v] == new_rank

    @rule(s=_RAW, t=_RAW)
    def query(self, s, t):
        s, t = self._vertex(s), self._vertex(t)
        oracle = TransitiveClosure(DiGraph(self.n, sorted(self.edges)))
        assert self.dynamic.query(s, t) == oracle.query(s, t)

    @invariant()
    def index_is_exactly_tol(self):
        graph = DiGraph(self.n, sorted(self.edges))
        assert self.dynamic.snapshot() == tol_index(graph, self.dynamic.order)


DynamicIndexMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=20, deadline=None
)
TestDynamicIndexMachine = DynamicIndexMachine.TestCase
