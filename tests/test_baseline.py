"""Tests for the benchmark baseline store and regression gate."""

import json

import pytest

from repro.bench.baseline import (
    BaselineError,
    baseline_from_tables,
    compare_to_baseline,
    default_baseline_path,
    load_baseline,
    save_baseline,
)
from repro.bench.results import Cell, ExperimentTable


def _table(cells):
    table = ExperimentTable("T", ["time", "entries"])
    for (row, column), value in cells.items():
        table.set(row, column, value)
    return table


def test_baseline_roundtrip(tmp_path):
    table = _table({("GO", "time"): 0.5, ("GO", "entries"): 120.0})
    table.set("TW", "time", Cell.timeout())
    path = save_baseline("fig5", [table], tmp_path / "fig5.json")
    doc = load_baseline(path)
    assert doc["experiment"] == "fig5"
    assert doc["metrics"]["T/GO/time"] == 0.5
    assert doc["metrics"]["T/TW/time"] == {"marker": "INF"}
    comparison = compare_to_baseline(doc, [table])
    assert comparison.ok
    assert comparison.checked == 3


def test_gate_fails_and_names_metric_on_perturbation(tmp_path):
    table = _table({("GO", "time"): 1.0})
    doc = load_baseline(save_baseline("x", [table], tmp_path / "x.json"))
    worse = _table({("GO", "time"): 1.5})
    comparison = compare_to_baseline(doc, [worse], threshold=0.1)
    assert not comparison.ok
    assert "T/GO/time" in comparison.failures[0]
    assert "regressed" in comparison.failures[0]
    better = _table({("GO", "time"): 0.5})
    comparison = compare_to_baseline(doc, [better], threshold=0.1)
    assert not comparison.ok
    assert "improved" in comparison.failures[0]


def test_gate_tolerates_within_threshold(tmp_path):
    table = _table({("GO", "time"): 1.0})
    doc = load_baseline(save_baseline("x", [table], tmp_path / "x.json"))
    near = _table({("GO", "time"): 1.05})
    assert compare_to_baseline(doc, [near], threshold=0.1).ok
    assert not compare_to_baseline(doc, [near], threshold=0.01).ok


def test_gate_marker_transitions_fail():
    table = _table({("GO", "time"): 1.0})
    table.set("TW", "time", Cell.timeout())
    doc = baseline_from_tables("x", [table])
    # value -> INF: the worst regression of all.
    now = _table({("GO", "time"): Cell.timeout()})
    now.set("TW", "time", Cell.timeout())
    comparison = compare_to_baseline(doc, [now])
    assert any("marker changed" in f for f in comparison.failures)
    # INF -> value without re-saving also fails (prove it on purpose).
    now = _table({("GO", "time"): 1.0, ("TW", "time"): 0.5})
    comparison = compare_to_baseline(doc, [now])
    assert any("marker changed" in f for f in comparison.failures)


def test_gate_missing_and_new_metrics(tmp_path):
    doc = baseline_from_tables("x", [_table({("GO", "time"): 1.0})])
    grown = _table({("GO", "time"): 1.0, ("GO", "entries"): 5.0})
    comparison = compare_to_baseline(doc, [grown])
    assert comparison.ok
    assert comparison.new_metrics == ["T/GO/entries"]
    assert "new metric(s)" in comparison.render()
    shrunk = ExperimentTable("T", ["time"])
    comparison = compare_to_baseline(doc, [shrunk])
    assert not comparison.ok
    assert "missing from the current run" in comparison.failures[0]


def test_gate_zero_baseline_requires_zero():
    doc = baseline_from_tables("x", [_table({("GO", "time"): 0.0})])
    assert compare_to_baseline(doc, [_table({("GO", "time"): 0.0})]).ok
    assert not compare_to_baseline(doc, [_table({("GO", "time"): 1e-9})]).ok


def test_load_baseline_errors(tmp_path):
    with pytest.raises(BaselineError, match="--save-baseline"):
        load_baseline(tmp_path / "none.json")
    bad = tmp_path / "bad.json"
    bad.write_text("not json")
    with pytest.raises(BaselineError, match="not valid JSON"):
        load_baseline(bad)
    bad.write_text('{"some": "json"}')
    with pytest.raises(BaselineError, match="no 'metrics'"):
        load_baseline(bad)
    bad.write_text('{"version": 99, "metrics": {}}')
    with pytest.raises(BaselineError, match="version"):
        load_baseline(bad)


def test_negative_threshold_rejected():
    doc = baseline_from_tables("x", [_table({("GO", "time"): 1.0})])
    with pytest.raises(ValueError):
        compare_to_baseline(doc, [_table({("GO", "time"): 1.0})], threshold=-1)


def test_default_baseline_path():
    path = default_baseline_path("fig5")
    assert path.as_posix() == "benchmarks/baselines/fig5.json"


def test_committed_fig5_baseline_is_loadable():
    """The repo ships a fig5 baseline for CI; it must stay parseable."""
    from pathlib import Path

    path = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines" / "fig5.json"
    doc = load_baseline(path)
    assert doc["experiment"] == "fig5"
    assert len(doc["metrics"]) >= 30


def test_save_baseline_atomic_and_sorted(tmp_path):
    path = save_baseline(
        "x", [_table({("GO", "time"): 1.0})], tmp_path / "sub" / "x.json"
    )
    assert path.exists()
    text = path.read_text()
    assert json.loads(text)  # valid
    assert text == json.dumps(json.loads(text), indent=2, sort_keys=True) + "\n"
