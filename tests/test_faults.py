"""Tests for fault injection, checkpointing, and crash recovery."""

import pytest

from repro.baselines.bfl_distributed import build_bfl_distributed
from repro.core.drl import drl_index
from repro.core.drl_basic import drl_basic_index
from repro.core.drl_batch import drl_batch_index
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpecError,
    NodeCrash,
    Straggler,
)
from repro.graph.generators import random_dag, random_digraph
from repro.graph.order import degree_order
from repro.pregel.cost_model import CostModel
from repro.pregel.engine import Cluster
from repro.telemetry import session
from repro.telemetry.sinks import InMemorySink

_NO_LIMIT = CostModel(time_limit_seconds=None)

_BUILDERS = {
    "drl": drl_index,
    "drl-": drl_basic_index,
    "drl-b": drl_batch_index,
}


@pytest.fixture(scope="module")
def graph():
    return random_digraph(150, 500, seed=3)


@pytest.fixture(scope="module")
def order(graph):
    return degree_order(graph)


def _crash_plan(**overrides):
    defaults = dict(crashes=(NodeCrash(1, 3),), seed=7)
    defaults.update(overrides)
    return FaultPlan(**defaults)


# ----------------------------------------------------------------------
# FaultPlan: construction, validation, parsing
# ----------------------------------------------------------------------
def test_plan_validation():
    with pytest.raises(ValueError, match="superstep"):
        NodeCrash(0, 0)
    with pytest.raises(ValueError, match="non-negative"):
        NodeCrash(-1, 1)
    with pytest.raises(ValueError, match=">= 1"):
        Straggler(0, 0.5)
    with pytest.raises(ValueError, match="loss_rate"):
        FaultPlan(loss_rate=1.0)
    with pytest.raises(ValueError, match="more than once"):
        FaultPlan(crashes=(NodeCrash(2, 1), NodeCrash(2, 5)))


def test_plan_validate_for_cluster():
    plan = _crash_plan(crashes=(NodeCrash(9, 3),))
    with pytest.raises(ValueError, match="only 4 nodes"):
        plan.validate_for(4)
    every = FaultPlan(crashes=tuple(NodeCrash(n, n + 1) for n in range(3)))
    with pytest.raises(ValueError, match="survivor"):
        every.validate_for(3)
    _crash_plan().validate_for(4)  # fine


def test_plan_parse():
    plan = FaultPlan.parse("crash=3@5,straggler=2x4.0,loss=0.01,dup=0.02,seed=42")
    assert plan.crashes == (NodeCrash(3, 5),)
    assert plan.stragglers == (Straggler(2, 4.0),)
    assert plan.loss_rate == 0.01
    assert plan.duplication_rate == 0.02
    assert plan.seed == 42
    assert "crash node 3" in plan.describe()
    assert FaultPlan.parse("").describe() == "no faults"


@pytest.mark.parametrize(
    "spec",
    [
        "",
        "crash=3@5",
        "crash=3@5,straggler=2x4.0,loss=0.01,dup=0.02,seed=42",
        "straggler=0x1.5,straggler=1x2.25",
        "loss=0.005,seed=9",
    ],
)
def test_plan_to_spec_round_trips(spec):
    """``parse`` ∘ ``to_spec`` is the identity — fuzz-case repro files
    store plans as this one string."""
    plan = FaultPlan.parse(spec)
    assert FaultPlan.parse(plan.to_spec()) == plan


@pytest.mark.parametrize(
    "spec",
    [
        "crash=oops",
        "crash=1",
        "straggler=1",
        "straggler=1x0.2",
        "loss=2.0",
        "frobnicate=1",
        "crash",
        "crash=1@2,crash=1@9",
    ],
)
def test_plan_parse_rejects(spec):
    with pytest.raises(FaultSpecError):
        FaultPlan.parse(spec)


# ----------------------------------------------------------------------
# FaultInjector mechanics
# ----------------------------------------------------------------------
def test_injector_crash_fires_once():
    injector = FaultInjector(_crash_plan(), num_nodes=4)
    assert injector.has_pending
    assert injector.crashes_at(2) == ()
    assert injector.crashes_at(3) == (1,)
    assert injector.dead == {1}
    assert not injector.has_pending
    assert injector.crashes_at(3) == ()  # consumed, never re-fires
    assert injector.survivors == [0, 2, 3]


def test_injector_reassign_moves_dead_vertices():
    from array import array

    injector = FaultInjector(_crash_plan(), num_nodes=4)
    injector.crashes_at(3)
    node_of = array("q", [v % 4 for v in range(20)])
    moved = injector.reassign(node_of, (1,))
    assert moved == 5
    assert all(node_of[v] != 1 for v in range(20))


def test_injector_transit_deterministic():
    plan = FaultPlan(loss_rate=0.3, duplication_rate=0.2, seed=11)
    draws = [FaultInjector(plan, 4).transit_faults(500) for _ in range(2)]
    assert draws[0] == draws[1]
    assert draws[0][0] > 0 and draws[0][1] > 0
    assert FaultInjector(plan, 4).transit_faults(0) == (0, 0)
    clean = FaultPlan()
    assert FaultInjector(clean, 4).transit_faults(500) == (0, 0)


# ----------------------------------------------------------------------
# The invariant: faults never change the index
# ----------------------------------------------------------------------
@pytest.mark.parametrize("method", sorted(_BUILDERS))
def test_crash_recovery_produces_identical_index(graph, order, method):
    build = _BUILDERS[method]
    clean = build(graph, order, num_nodes=4, cost_model=_NO_LIMIT)
    plan = _crash_plan(
        stragglers=(Straggler(0, 2.0),), loss_rate=0.01, duplication_rate=0.01
    )
    faulty = build(
        graph, order, num_nodes=4, cost_model=_NO_LIMIT,
        faults=plan, checkpoint_interval=2,
    )
    assert faulty.index == clean.index
    assert faulty.stats.crashes == 1
    assert faulty.stats.checkpoints > 0
    assert faulty.stats.recovery_seconds > 0.0
    assert faulty.stats.checkpoint_seconds > 0.0
    # Work counters describe committed progress: same as fault-free.
    assert faulty.stats.supersteps == clean.stats.supersteps
    assert faulty.stats.compute_units == clean.stats.compute_units
    assert faulty.stats.simulated_seconds > clean.stats.simulated_seconds


def test_crash_without_checkpointing_restarts_from_scratch(graph, order):
    clean = drl_index(graph, order, num_nodes=4, cost_model=_NO_LIMIT)
    faulty = drl_index(
        graph, order, num_nodes=4, cost_model=_NO_LIMIT,
        faults=_crash_plan(crashes=(NodeCrash(1, 4),)),
    )
    assert faulty.index == clean.index
    assert faulty.stats.checkpoints == 0
    assert faulty.stats.crashes == 1
    # Replaying supersteps 1-4 costs more than the aborted attempt alone.
    assert faulty.stats.recovery_seconds > _NO_LIMIT.failover_seconds
    assert faulty.stats.supersteps == clean.stats.supersteps


def test_crash_past_termination_never_fires(graph, order):
    clean = drl_index(graph, order, num_nodes=4, cost_model=_NO_LIMIT)
    faulty = drl_index(
        graph, order, num_nodes=4, cost_model=_NO_LIMIT,
        faults=_crash_plan(crashes=(NodeCrash(1, 10_000),)),
        checkpoint_interval=3,
    )
    assert faulty.index == clean.index
    assert faulty.stats.crashes == 0
    assert faulty.stats.recovery_seconds == 0.0


def test_same_plan_same_stats_across_runs(graph, order):
    plan = _crash_plan(loss_rate=0.05, duplication_rate=0.02)
    results = [
        drl_batch_index(
            graph, order, num_nodes=4, cost_model=_NO_LIMIT,
            faults=plan, checkpoint_interval=2,
        )
        for _ in range(2)
    ]
    first, second = (r.stats for r in results)
    assert results[0].index == results[1].index
    assert first.simulated_seconds == second.simulated_seconds
    assert first.recovery_seconds == second.recovery_seconds
    assert first.checkpoint_seconds == second.checkpoint_seconds
    assert first.messages_lost == second.messages_lost
    assert first.messages_duplicated == second.messages_duplicated
    assert first.compute_units == second.compute_units


def test_straggler_stretches_computation_only(graph, order):
    clean = drl_index(graph, order, num_nodes=4, cost_model=_NO_LIMIT)
    slow = drl_index(
        graph, order, num_nodes=4, cost_model=_NO_LIMIT,
        faults=FaultPlan(stragglers=(Straggler(2, 8.0),)),
    )
    assert slow.index == clean.index
    assert slow.stats.compute_units == clean.stats.compute_units
    assert slow.stats.computation_seconds > clean.stats.computation_seconds
    assert slow.stats.communication_seconds == clean.stats.communication_seconds
    assert slow.stats.crashes == 0 and slow.stats.recovery_seconds == 0.0


def test_transit_faults_charge_but_do_not_drop(graph, order):
    clean = drl_index(graph, order, num_nodes=4, cost_model=_NO_LIMIT)
    lossy = drl_index(
        graph, order, num_nodes=4, cost_model=_NO_LIMIT,
        faults=FaultPlan(loss_rate=0.05, duplication_rate=0.05, seed=9),
    )
    assert lossy.index == clean.index
    assert lossy.stats.messages_lost > 0
    assert lossy.stats.messages_duplicated > 0
    assert (
        lossy.stats.communication_seconds > clean.stats.communication_seconds
    )
    # Delivery is repaired by retransmission: same committed messages.
    assert lossy.stats.remote_messages == clean.stats.remote_messages


def test_dead_node_stays_dead_across_chained_runs(graph, order):
    # DRL_b chains one engine run per batch over the SAME cluster: the
    # node crashed in an early batch must do no work in later ones.
    plan = _crash_plan(crashes=(NodeCrash(2, 2),))
    faulty = drl_batch_index(
        graph, order, num_nodes=4, cost_model=_NO_LIMIT,
        faults=plan, checkpoint_interval=2,
    )
    clean = drl_batch_index(graph, order, num_nodes=4, cost_model=_NO_LIMIT)
    assert faulty.index == clean.index
    assert faulty.stats.crashes == 1
    # The dead node accumulated strictly less work than fault-free.
    assert faulty.stats.per_node_units[2] < clean.stats.per_node_units[2]


def test_cluster_rejects_bad_fault_config():
    with pytest.raises(ValueError, match="checkpoint_interval"):
        Cluster(num_nodes=4, checkpoint_interval=0)
    with pytest.raises(ValueError, match="only 4 nodes"):
        Cluster(num_nodes=4, faults=_crash_plan(crashes=(NodeCrash(7, 2),)))


def test_runstats_summary_mentions_faults(graph, order):
    faulty = drl_index(
        graph, order, num_nodes=4, cost_model=_NO_LIMIT,
        faults=_crash_plan(), checkpoint_interval=2,
    )
    text = faulty.stats.summary()
    assert "1 crash(es)" in text and "recovery" in text


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------
def test_fault_telemetry_events(graph, order):
    sink = InMemorySink()
    with session([sink]):
        drl_index(
            graph, order, num_nodes=4, cost_model=_NO_LIMIT,
            faults=_crash_plan(loss_rate=0.05), checkpoint_interval=2,
        )
    by_name = {}
    for event in sink.events:
        by_name.setdefault(event.name, []).append(event)
    crash_events = [
        e for e in by_name.get("pregel.fault", [])
        if e.attrs["kind"] == "crash"
    ]
    transit_events = [
        e for e in by_name.get("pregel.fault", [])
        if e.attrs["kind"] == "transit"
    ]
    assert len(crash_events) == 1 and crash_events[0].attrs["node"] == 1
    assert transit_events, "expected transit fault events"
    recoveries = by_name.get("pregel.recovery", [])
    assert len(recoveries) == 1
    assert recoveries[0].attrs["restored_to"] == 2
    assert recoveries[0].attrs["seconds"] > 0
    assert recoveries[0].attrs["reassigned_vertices"] > 0
    checkpoints = by_name.get("pregel.checkpoint", [])
    assert checkpoints and all(
        e.attrs["superstep"] % 2 == 0 for e in checkpoints
    )


# ----------------------------------------------------------------------
# BFL^D analytic model
# ----------------------------------------------------------------------
def test_bfl_distributed_fault_model(graph):
    _, clean = build_bfl_distributed(graph, num_nodes=4, cost_model=_NO_LIMIT)
    plan = FaultPlan(
        crashes=(NodeCrash(1, 50),),
        stragglers=(Straggler(0, 2.0),),
        loss_rate=0.01,
        seed=5,
    )
    index, faulty = build_bfl_distributed(
        graph, num_nodes=4, cost_model=_NO_LIMIT,
        faults=plan, checkpoint_interval=40,
    )
    _, faulty2 = build_bfl_distributed(
        graph, num_nodes=4, cost_model=_NO_LIMIT,
        faults=plan, checkpoint_interval=40,
    )
    assert faulty.crashes == 1
    assert faulty.recovery_seconds > 0.0
    assert faulty.checkpoints > 0 and faulty.checkpoint_seconds > 0.0
    assert faulty.messages_lost > 0
    assert faulty.computation_seconds > clean.computation_seconds
    assert faulty.simulated_seconds > clean.simulated_seconds
    assert faulty.simulated_seconds == faulty2.simulated_seconds
    # Same labels as the fault-free build.
    _, _ = index.query_with_cost(0, 1)  # still answers queries


def test_bfl_distributed_crash_past_walk_never_fires(graph):
    _, clean = build_bfl_distributed(graph, num_nodes=4, cost_model=_NO_LIMIT)
    _, faulty = build_bfl_distributed(
        graph, num_nodes=4, cost_model=_NO_LIMIT,
        faults=FaultPlan(crashes=(NodeCrash(1, 10**9),)),
    )
    assert faulty.crashes == 0
    assert faulty.simulated_seconds == clean.simulated_seconds
