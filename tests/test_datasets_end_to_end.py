"""Dataset-level regression: every medium stand-in builds an exact,
cover-correct index through the distributed pipeline."""

import pytest

from repro.core.build import build_index
from repro.core.tol import tol_index
from repro.core.validate import check_cover
from repro.graph.order import degree_order
from repro.pregel.cost_model import CostModel
from repro.workloads.datasets import MEDIUM_DATASETS, get_dataset

_NO_LIMIT = CostModel(time_limit_seconds=None)


@pytest.mark.parametrize("name", MEDIUM_DATASETS)
def test_medium_dataset_drlb_exact_and_covering(name):
    graph = get_dataset(name).load()
    order = degree_order(graph)
    result = build_index(
        graph, method="drl-b", order=order, num_nodes=32, cost_model=_NO_LIMIT
    )
    assert result.index == tol_index(graph, order), name
    assert check_cover(result.index, graph, sample=1500, seed=42).ok, name
    # Distributed accounting happened.
    assert result.stats.remote_messages > 0
    assert result.stats.supersteps > 1


@pytest.mark.parametrize("name", ("SINA", "GRPH", "SK"))
def test_large_dataset_drlb_covering(name):
    """Large stand-ins (no TOL rerun — just cover correctness)."""
    graph = get_dataset(name).load()
    result = build_index(graph, method="drl-b", cost_model=_NO_LIMIT)
    assert check_cover(result.index, graph, sample=800, seed=7).ok, name
