"""Tests for index collection planning and super-step tracing."""

import pytest

from repro.core.build import build_index
from repro.core.collect import plan_collection
from repro.core.drl import DrlFloodProgram
from repro.graph.generators import random_digraph
from repro.graph.order import degree_order
from repro.pregel.cost_model import CostModel
from repro.pregel.engine import Cluster
from repro.pregel.vertex_program import VertexProgram

_NO_LIMIT = CostModel(time_limit_seconds=None)


# ----------------------------------------------------------------------
# Collection planning
# ----------------------------------------------------------------------
def test_collection_single_node_ships_nothing():
    g = random_digraph(50, 150, seed=1)
    index = build_index(g, cost_model=_NO_LIMIT).index
    plan = plan_collection(index, num_nodes=1)
    assert plan.total_bytes == 0
    assert plan.fits_in_memory


def test_collection_many_nodes_ships_most_of_the_index():
    g = random_digraph(50, 150, seed=1)
    index = build_index(g, cost_model=_NO_LIMIT).index
    plan = plan_collection(index, num_nodes=32)
    expected = index.size_bytes() * 31 // 32
    assert plan.total_bytes == expected
    assert plan.seconds > 0


def test_collection_memory_flag():
    g = random_digraph(50, 150, seed=1)
    index = build_index(g, cost_model=_NO_LIMIT).index
    tiny = CostModel(node_memory_bytes=8)
    assert not plan_collection(index, 4, tiny).fits_in_memory


def test_collection_invalid_nodes():
    g = random_digraph(10, 20, seed=2)
    index = build_index(g, cost_model=_NO_LIMIT).index
    with pytest.raises(ValueError):
        plan_collection(index, 0)


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
def test_trace_off_by_default():
    g = random_digraph(40, 120, seed=3)
    program = DrlFloodProgram(g, degree_order(g))
    stats = Cluster(num_nodes=4, cost_model=_NO_LIMIT).run(g, program)
    assert stats.trace == []


def test_trace_records_every_superstep():
    g = random_digraph(40, 120, seed=3)
    program = DrlFloodProgram(g, degree_order(g))
    stats = Cluster(num_nodes=4, cost_model=_NO_LIMIT).run(
        g, program, trace=True
    )
    # The finalize pass adds one superstep without a trace row.
    assert len(stats.trace) in (stats.supersteps, stats.supersteps - 1)
    assert stats.trace[0].superstep == 1
    assert stats.trace[0].active_vertices == g.num_vertices
    assert sum(row.compute_units for row in stats.trace) <= stats.compute_units
    for row in stats.trace:
        assert row.max_node_units <= row.compute_units
        assert row.remote_bytes >= 0


def test_trace_activity_wanes():
    """The flood's active set eventually shrinks to nothing."""
    g = random_digraph(60, 180, seed=4)
    program = DrlFloodProgram(g, degree_order(g))
    stats = Cluster(num_nodes=2, cost_model=_NO_LIMIT).run(
        g, program, trace=True
    )
    assert stats.trace[-1].active_vertices <= stats.trace[1].active_vertices


class _NoFinalizeFlood(VertexProgram):
    """Flood from vertex 0; charges nothing in finalize, so the trace
    covers every charged super-step exactly."""

    def compute(self, ctx, v, messages):
        if ctx.superstep == 1:
            if v != 0:
                return
            self._seen = {0}
        elif v in self._seen:
            return
        else:
            self._seen.add(v)
        for w in ctx.graph.out_neighbors(v):
            ctx.charge()
            ctx.send(w, None)


def test_trace_one_row_per_superstep_matching_stats():
    g = random_digraph(50, 200, seed=11)
    stats = Cluster(num_nodes=4, cost_model=_NO_LIMIT).run(
        g, _NoFinalizeFlood(), trace=True
    )
    assert len(stats.trace) == stats.supersteps
    assert [row.superstep for row in stats.trace] == list(
        range(1, stats.supersteps + 1)
    )
    assert stats.trace[0].active_vertices == g.num_vertices
    assert sum(r.compute_units for r in stats.trace) == stats.compute_units
    assert sum(r.remote_messages for r in stats.trace) == stats.remote_messages
    assert sum(r.remote_bytes for r in stats.trace) == stats.remote_bytes
    assert (
        sum(r.broadcast_bytes for r in stats.trace) == stats.broadcast_bytes
    )
    # Active vertices per step never exceed the graph, and the last
    # step's frontier delivered no new messages.
    assert all(0 <= r.active_vertices <= g.num_vertices for r in stats.trace)


def test_trace_disabled_is_zero_overhead():
    """No rows (and no row allocations) when tracing is off."""
    g = random_digraph(50, 200, seed=11)
    cluster = Cluster(num_nodes=4, cost_model=_NO_LIMIT)
    off = cluster.run(g, _NoFinalizeFlood())
    on = cluster.run(g, _NoFinalizeFlood(), trace=True)
    assert off.trace == []
    assert len(on.trace) == on.supersteps
    # Accounting itself is identical with and without tracing.
    assert off.compute_units == on.compute_units
    assert off.supersteps == on.supersteps
    assert off.simulated_seconds == on.simulated_seconds


def test_trace_row_to_dict_roundtrip():
    g = random_digraph(30, 90, seed=2)
    stats = Cluster(num_nodes=2, cost_model=_NO_LIMIT).run(
        g, _NoFinalizeFlood(), trace=True
    )
    row = stats.trace[0]
    as_dict = row.to_dict()
    assert as_dict["superstep"] == 1
    assert as_dict["active_vertices"] == row.active_vertices
    assert set(as_dict) == {
        "superstep", "active_vertices", "compute_units", "max_node_units",
        "remote_messages", "remote_bytes", "broadcast_bytes",
    }
