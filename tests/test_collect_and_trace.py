"""Tests for index collection planning and super-step tracing."""

import pytest

from repro.core.build import build_index
from repro.core.collect import plan_collection
from repro.core.drl import DrlFloodProgram
from repro.graph.generators import random_digraph
from repro.graph.order import degree_order
from repro.pregel.cost_model import CostModel
from repro.pregel.engine import Cluster

_NO_LIMIT = CostModel(time_limit_seconds=None)


# ----------------------------------------------------------------------
# Collection planning
# ----------------------------------------------------------------------
def test_collection_single_node_ships_nothing():
    g = random_digraph(50, 150, seed=1)
    index = build_index(g, cost_model=_NO_LIMIT).index
    plan = plan_collection(index, num_nodes=1)
    assert plan.total_bytes == 0
    assert plan.fits_in_memory


def test_collection_many_nodes_ships_most_of_the_index():
    g = random_digraph(50, 150, seed=1)
    index = build_index(g, cost_model=_NO_LIMIT).index
    plan = plan_collection(index, num_nodes=32)
    expected = index.size_bytes() * 31 // 32
    assert plan.total_bytes == expected
    assert plan.seconds > 0


def test_collection_memory_flag():
    g = random_digraph(50, 150, seed=1)
    index = build_index(g, cost_model=_NO_LIMIT).index
    tiny = CostModel(node_memory_bytes=8)
    assert not plan_collection(index, 4, tiny).fits_in_memory


def test_collection_invalid_nodes():
    g = random_digraph(10, 20, seed=2)
    index = build_index(g, cost_model=_NO_LIMIT).index
    with pytest.raises(ValueError):
        plan_collection(index, 0)


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
def test_trace_off_by_default():
    g = random_digraph(40, 120, seed=3)
    program = DrlFloodProgram(g, degree_order(g))
    stats = Cluster(num_nodes=4, cost_model=_NO_LIMIT).run(g, program)
    assert stats.trace == []


def test_trace_records_every_superstep():
    g = random_digraph(40, 120, seed=3)
    program = DrlFloodProgram(g, degree_order(g))
    stats = Cluster(num_nodes=4, cost_model=_NO_LIMIT).run(
        g, program, trace=True
    )
    # The finalize pass adds one superstep without a trace row.
    assert len(stats.trace) in (stats.supersteps, stats.supersteps - 1)
    assert stats.trace[0].superstep == 1
    assert stats.trace[0].active_vertices == g.num_vertices
    assert sum(row.compute_units for row in stats.trace) <= stats.compute_units
    for row in stats.trace:
        assert row.max_node_units <= row.compute_units
        assert row.remote_bytes >= 0


def test_trace_activity_wanes():
    """The flood's active set eventually shrinks to nothing."""
    g = random_digraph(60, 180, seed=4)
    program = DrlFloodProgram(g, degree_order(g))
    stats = Cluster(num_nodes=2, cost_model=_NO_LIMIT).run(
        g, program, trace=True
    )
    assert stats.trace[-1].active_vertices <= stats.trace[1].active_vertices
