"""Tests for request-scoped tracing through the serving pipeline."""

import pytest

from repro.core.build import build_index
from repro.graph.generators import social_graph
from repro.observe import tracing
from repro.observe.tracing import RequestTrace, TraceIdGenerator
from repro.pregel.cost_model import CostModel
from repro.query import FallbackBackend
from repro.serve import (
    CachingBackend,
    QueryServer,
    ShardedIndexBackend,
    ShardedLabelStore,
)
from repro.telemetry import session
from repro.telemetry.sinks import InMemorySink
from repro.workloads.traffic import poisson_arrivals, zipf_pairs

_NO_LIMIT = CostModel(time_limit_seconds=None)


@pytest.fixture(scope="module")
def graph():
    return social_graph(150, seed=4)


@pytest.fixture(scope="module")
def backend(graph):
    index = build_index(graph, cost_model=_NO_LIMIT).index
    store = ShardedLabelStore(index, num_shards=4, cost_model=_NO_LIMIT)
    return CachingBackend(ShardedIndexBackend(store), cost_model=_NO_LIMIT)


def _request_events(sink):
    return [
        record for record in sink.records
        if record.get("kind") == "event" and record.get("name") == "serve.request"
    ]


def _serve(backend, pairs, arrivals, **kwargs):
    sink = InMemorySink()
    with session([sink]):
        server = QueryServer(backend, cost_model=_NO_LIMIT, **kwargs)
        report = server.run_open(pairs, arrivals)
    return report, _request_events(sink)


class TestTraceIds:
    def test_ids_are_unique_and_deterministic_per_run(self):
        gen = TraceIdGenerator(run_id=7)
        ids = [gen.next_id() for _ in range(5)]
        assert len(set(ids)) == 5
        assert ids == [f"0007-{i:06d}" for i in range(5)]

    def test_distinct_generators_never_collide(self):
        a, b = TraceIdGenerator(), TraceIdGenerator()
        assert a.run_id != b.run_id
        assert a.next_id() != b.next_id()


class TestRequestTrace:
    def test_stage_order_and_attrs_round_trip(self):
        trace = RequestTrace("0001-000000", 3, 9, 0.5)
        trace.add_stage("admission", 1e-6)
        trace.add_stage("cache", 1e-8, hit=False)
        trace.finish("served", 2e-6)
        attrs = trace.to_attrs()
        assert attrs["trace_id"] == "0001-000000"
        assert attrs["outcome"] == "served"
        assert "reason" not in attrs
        assert [s["stage"] for s in attrs["stages"]] == ["admission", "cache"]
        assert attrs["stages"][1]["hit"] is False

    def test_drop_reason_is_exported(self):
        trace = RequestTrace("0001-000001", 0, 1, 0.0)
        trace.finish("shed", reason="queue_full")
        assert trace.to_attrs()["reason"] == "queue_full"

    def test_active_slot_begin_end(self):
        trace = RequestTrace("0001-000002", 0, 1, 0.0)
        assert tracing.current_request() is None
        tracing.begin_request(trace)
        tracing.add_stage("store", 1e-6, home=2)
        tracing.end_request()
        assert tracing.current_request() is None
        assert trace.stage_names() == ["store"]

    def test_add_stage_without_active_request_is_noop(self):
        tracing.add_stage("cache", 1e-8)  # must not raise


class TestServerTracing:
    def test_every_request_gets_a_terminal_event(self, graph, backend):
        pairs = zipf_pairs(graph.num_vertices, 800, seed=1)
        arrivals = poisson_arrivals(800, rate=2_000_000, seed=2)
        report, events = _serve(
            backend, pairs, arrivals, queue_depth=32, batch_size=8
        )
        assert len(events) == report.offered
        outcomes = [e["attrs"]["outcome"] for e in events]
        assert outcomes.count("served") == report.served
        assert outcomes.count("shed") == report.shed
        ids = [e["attrs"]["trace_id"] for e in events]
        assert len(set(ids)) == len(ids)

    def test_served_requests_carry_all_stages(self, graph, backend):
        pairs = zipf_pairs(graph.num_vertices, 400, seed=3)
        arrivals = poisson_arrivals(400, rate=500_000, seed=4)
        _, events = _serve(backend, pairs, arrivals)
        served = [e["attrs"] for e in events if e["attrs"]["outcome"] == "served"]
        assert served
        for attrs in served:
            names = [s["stage"] for s in attrs["stages"]]
            assert names[0] == "admission"
            assert names[-1] == "backend"
            assert "cache" in names
            cache = next(s for s in attrs["stages"] if s["stage"] == "cache")
            # A miss goes on to the store; a hit stops at the cache.
            assert ("store" in names) == (not cache["hit"])

    def test_shed_requests_record_queue_full_reason(self, graph, backend):
        pairs = zipf_pairs(graph.num_vertices, 600, seed=5)
        arrivals = [0.0] * 600  # everything at once: queue must overflow
        report, events = _serve(backend, pairs, arrivals, queue_depth=16)
        assert report.shed > 0
        shed = [e["attrs"] for e in events if e["attrs"]["outcome"] == "shed"]
        assert len(shed) == report.shed
        assert all(a["reason"] == "queue_full" for a in shed)
        assert all(a["stages"] == [] for a in shed)

    def test_deadline_drops_record_reason_and_wait(self, graph):
        class Slow:
            def query_with_cost(self, s, t):
                return False, 1.0

        pairs = [(0, 1)] * 20
        arrivals = [0.0] * 20
        sink = InMemorySink()
        with session([sink]):
            server = QueryServer(
                Slow(), batch_size=1, deadline_seconds=2.5, cost_model=_NO_LIMIT
            )
            report = server.run_open(pairs, arrivals)
        assert report.deadline_dropped > 0
        dropped = [
            e["attrs"] for e in _request_events(sink)
            if e["attrs"]["outcome"] == "deadline"
        ]
        assert len(dropped) == report.deadline_dropped
        for attrs in dropped:
            assert attrs["reason"] == "deadline"
            assert attrs["stages"][0]["stage"] == "admission"
            assert attrs["stages"][0]["seconds"] > 2.5

    def test_per_reason_drop_counters(self, graph, backend):
        pairs = zipf_pairs(graph.num_vertices, 600, seed=5)
        arrivals = [0.0] * 600
        sink = InMemorySink()
        with session([sink]):
            server = QueryServer(backend, queue_depth=16, cost_model=_NO_LIMIT)
            report = server.run_open(pairs, arrivals)
        counters = {
            r["name"]: r["value"] for r in sink.records
            if r.get("kind") == "metric" and r.get("metric") == "counter"
        }
        assert counters["serve.dropped.queue_full"] == report.shed
        assert "serve.dropped.deadline" not in counters

    def test_fallback_stage_recorded_when_degraded(self, graph):
        fallback = FallbackBackend(None, graph, cost_model=_NO_LIMIT)
        pairs = [(0, 5), (3, 9)]
        arrivals = [0.0, 0.0]
        _, events = _serve(fallback, pairs, arrivals)
        for event in events:
            names = [s["stage"] for s in event["attrs"]["stages"]]
            assert "fallback" in names

    def test_tracing_off_emits_no_events(self, graph, backend):
        pairs = zipf_pairs(graph.num_vertices, 100, seed=6)
        arrivals = poisson_arrivals(100, rate=100_000, seed=7)
        sink = InMemorySink()
        with session([sink]):
            server = QueryServer(
                backend, cost_model=_NO_LIMIT, request_tracing=False
            )
            report = server.run_open(pairs, arrivals)
        assert report.served == 100
        assert _request_events(sink) == []

    def test_tracing_forced_on_without_session(self, graph, backend):
        pairs = zipf_pairs(graph.num_vertices, 50, seed=8)
        arrivals = poisson_arrivals(50, rate=100_000, seed=9)
        server = QueryServer(backend, cost_model=_NO_LIMIT, request_tracing=True)
        report = server.run_open(pairs, arrivals)  # no tracer: events vanish
        assert report.served == 50

    def test_tracing_does_not_change_report(self, graph):
        index = build_index(graph, cost_model=_NO_LIMIT).index
        pairs = zipf_pairs(graph.num_vertices, 300, seed=10)
        arrivals = poisson_arrivals(300, rate=1_000_000, seed=11)

        def run(**kwargs):
            # Fresh store and cache per run: a warmed cache would change
            # the costs and mask a tracing-induced difference.
            store = ShardedLabelStore(index, num_shards=4, cost_model=_NO_LIMIT)
            fresh = CachingBackend(
                ShardedIndexBackend(store), cost_model=_NO_LIMIT
            )
            server = QueryServer(
                fresh, queue_depth=32, cost_model=_NO_LIMIT, **kwargs
            )
            return server.run_open(pairs, arrivals)

        untraced = run(request_tracing=False)
        with session([InMemorySink()]):
            traced = run()
        assert traced.p99_seconds == untraced.p99_seconds
        assert traced.served == untraced.served
        assert traced.shed == untraced.shed
        assert traced.makespan_seconds == untraced.makespan_seconds
