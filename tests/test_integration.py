"""Cross-module integration tests at moderate scale."""

import pytest

from repro.core.build import build_index
from repro.core.dynamic import DynamicReachabilityIndex
from repro.core.labels import ReachabilityIndex
from repro.core.tol import tol_index
from repro.core.validate import check_canonical, check_cover
from repro.graph.generators import web_graph
from repro.graph.order import degree_order
from repro.pregel.cost_model import CostModel
from repro.query import IndexBackend, QueryService
from repro.workloads import (
    apply_stream,
    balanced_pairs,
    get_dataset,
    update_stream,
)

_NO_LIMIT = CostModel(time_limit_seconds=None)


def test_medium_dataset_pipeline_end_to_end(tmp_path):
    """Load a registry dataset, index it two ways, validate, serve,
    serialize, and reload — the full user journey."""
    graph = get_dataset("GO").load()
    order = degree_order(graph)
    serial = tol_index(graph, order)
    distributed = build_index(
        graph, method="drl-b", order=order, num_nodes=32, cost_model=_NO_LIMIT
    )
    assert distributed.index == serial
    assert check_cover(distributed.index, graph, sample=2000).ok
    assert check_canonical(distributed.index, graph, order).ok

    from repro.baselines.transitive_closure import TransitiveClosure

    oracle = TransitiveClosure(graph)
    pairs = balanced_pairs(graph, oracle.query, 100, seed=1)
    service = QueryService(IndexBackend(distributed.index, _NO_LIMIT))
    report = service.evaluate(pairs)
    assert report.positives == 50

    path = tmp_path / "go.idx"
    distributed.index.save(path, compress=True)
    assert ReachabilityIndex.load(path) == serial


def test_dynamic_index_stays_canonical_under_stream():
    graph = web_graph(400, seed=9, copy_prob=0.4, out_links=3)
    dynamic = DynamicReachabilityIndex(graph)
    stream = update_stream(graph, 40, seed=10)
    apply_stream(dynamic, stream)
    current = dynamic.current_graph()
    snapshot = dynamic.snapshot()
    assert check_cover(snapshot, current, sample=3000).ok
    assert check_canonical(snapshot, current, dynamic.order).ok


def test_moderate_scale_equality_all_methods():
    graph = web_graph(2000, seed=11, copy_prob=0.5, out_links=4)
    order = degree_order(graph)
    reference = tol_index(graph, order)
    for method in ("drl", "drl-b", "drl-b-m"):
        built = build_index(
            graph, method=method, order=order, num_nodes=16,
            cost_model=_NO_LIMIT,
        ).index
        assert built == reference, method


def test_index_entries_scale_reasonably():
    """2-hop index stays far below the transitive closure's size."""
    graph = get_dataset("TW").load()
    index = build_index(graph, cost_model=_NO_LIMIT).index
    from repro.baselines.transitive_closure import TransitiveClosure

    closure_pairs = TransitiveClosure(graph).reachable_pairs()
    assert index.num_entries < closure_pairs / 10
