"""Tests for Tarjan SCC and the condensation, cross-checked against
networkx on random graphs."""

import networkx as nx
from hypothesis import given, settings

from repro.graph.digraph import DiGraph
from repro.graph.scc import condensation, strongly_connected_components
from tests.conftest import digraphs


def test_single_cycle_one_component():
    g = DiGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
    components = strongly_connected_components(g)
    assert len(components) == 1
    assert sorted(components[0]) == [0, 1, 2, 3]


def test_dag_all_singletons():
    g = DiGraph(4, [(0, 1), (1, 2), (1, 3)])
    assert sorted(map(len, strongly_connected_components(g))) == [1, 1, 1, 1]


def test_two_cycles_bridged():
    g = DiGraph(6, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 2), (4, 5)])
    components = {frozenset(c) for c in strongly_connected_components(g)}
    assert frozenset({0, 1}) in components
    assert frozenset({2, 3, 4}) in components
    assert frozenset({5}) in components


def test_emission_order_is_reverse_topological():
    """A component is emitted before any component that reaches it."""
    g = DiGraph(5, [(0, 1), (1, 2), (2, 1), (2, 3), (3, 4)])
    cond = condensation(g)
    for cu, cv in cond.dag.edges():
        assert cv < cu  # edge target (reachable side) was emitted first


def test_condensation_dag_is_acyclic():
    g = DiGraph(6, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4), (4, 5)])
    cond = condensation(g)
    assert all(
        len(c) == 1 for c in strongly_connected_components(cond.dag)
    )


def test_condensation_maps_members_consistently():
    g = DiGraph(4, [(0, 1), (1, 0), (2, 3)])
    cond = condensation(g)
    for cid, members in enumerate(cond.members):
        for v in members:
            assert cond.component_of[v] == cid


def test_condensation_trivial_flag():
    dag = DiGraph(3, [(0, 1), (1, 2)])
    cyclic = DiGraph(3, [(0, 1), (1, 0)])
    assert condensation(dag).is_trivial()
    assert not condensation(cyclic).is_trivial()


def test_deep_path_no_recursion_error():
    n = 5000
    g = DiGraph(n, [(i, i + 1) for i in range(n - 1)])
    assert len(strongly_connected_components(g)) == n


def test_deep_cycle_no_recursion_error():
    n = 5000
    g = DiGraph(n, [(i, (i + 1) % n) for i in range(n)])
    assert len(strongly_connected_components(g)) == 1


@settings(max_examples=60, deadline=None)
@given(digraphs())
def test_property_matches_networkx(g):
    nx_graph = nx.DiGraph()
    nx_graph.add_nodes_from(range(g.num_vertices))
    nx_graph.add_edges_from(g.edges())
    expected = {frozenset(c) for c in nx.strongly_connected_components(nx_graph)}
    actual = {frozenset(c) for c in strongly_connected_components(g)}
    assert actual == expected


@settings(max_examples=40, deadline=None)
@given(digraphs())
def test_property_condensation_preserves_reachability(g):
    from repro.graph.traversal import reachable_set

    cond = condensation(g)
    for s in range(min(g.num_vertices, 6)):
        reach_g = reachable_set(g, s)
        reach_dag = reachable_set(cond.dag, cond.component_of[s])
        lifted = {
            v for c in reach_dag for v in cond.members[c]
        }
        assert lifted == reach_g
