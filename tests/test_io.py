"""Tests for edge-list and binary graph I/O."""

import gzip

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import random_digraph
from repro.graph.io import (
    iter_edge_list,
    read_binary,
    read_edge_list,
    write_binary,
    write_edge_list,
)


def test_text_round_trip(tmp_path):
    g = random_digraph(40, 120, seed=1)
    path = tmp_path / "graph.txt"
    write_edge_list(g, path)
    assert read_edge_list(path, num_vertices=40) == g


def test_gzip_round_trip(tmp_path):
    g = random_digraph(30, 80, seed=2)
    path = tmp_path / "graph.txt.gz"
    write_edge_list(g, path)
    with gzip.open(path, "rt") as handle:  # really gzipped
        assert handle.readline().startswith("#")
    assert read_edge_list(path, num_vertices=30) == g


def test_comments_and_blank_lines_skipped(tmp_path):
    path = tmp_path / "graph.txt"
    path.write_text("# comment\n% other comment\n\n0 1\n1 2 999\n")
    assert list(iter_edge_list(path)) == [(0, 1), (1, 2)]


def test_extra_columns_ignored(tmp_path):
    path = tmp_path / "graph.txt"
    path.write_text("0\t1\t0.5\t2021\n")
    assert list(iter_edge_list(path)) == [(0, 1)]


def test_header_optional(tmp_path):
    g = DiGraph(2, [(0, 1)])
    path = tmp_path / "graph.txt"
    write_edge_list(g, path, header=False)
    assert not path.read_text().startswith("#")
    assert read_edge_list(path) == g


def test_malformed_rows_raise(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0\n")
    with pytest.raises(ValueError, match="two columns"):
        list(iter_edge_list(path))
    path.write_text("a b\n")
    with pytest.raises(ValueError, match="non-integer"):
        list(iter_edge_list(path))


def test_read_edge_list_dedup_flag(tmp_path):
    path = tmp_path / "dup.txt"
    path.write_text("0 1\n0 1\n")
    assert read_edge_list(path).num_edges == 1
    assert read_edge_list(path, dedup=False).num_edges == 2


def test_binary_round_trip(tmp_path):
    g = random_digraph(50, 150, seed=3)
    path = tmp_path / "graph.bin"
    write_binary(g, path)
    assert read_binary(path) == g


def test_binary_empty_graph(tmp_path):
    g = DiGraph(0, [])
    path = tmp_path / "empty.bin"
    write_binary(g, path)
    assert read_binary(path).num_vertices == 0


def test_binary_bad_magic(tmp_path):
    path = tmp_path / "bad.bin"
    path.write_bytes(b"NOPE" + b"\x00" * 20)
    with pytest.raises(ValueError, match="bad magic"):
        read_binary(path)


def test_binary_truncated(tmp_path):
    g = random_digraph(10, 20, seed=4)
    path = tmp_path / "trunc.bin"
    write_binary(g, path)
    data = path.read_bytes()
    path.write_bytes(data[:-8])
    with pytest.raises(ValueError, match="truncated"):
        read_binary(path)


def test_binary_bad_version(tmp_path):
    path = tmp_path / "ver.bin"
    import struct

    path.write_bytes(b"RPRO" + struct.pack("<IQQ", 99, 0, 0))
    with pytest.raises(ValueError, match="version"):
        read_binary(path)


def test_binary_truncated_header(tmp_path):
    path = tmp_path / "header.bin"
    path.write_bytes(b"RPRO" + b"\x00" * 7)  # header cut short
    with pytest.raises(ValueError, match="truncated header"):
        read_binary(path)


def test_binary_errors_carry_path(tmp_path):
    path = tmp_path / "ctx.bin"
    path.write_bytes(b"NOPE" + b"\x00" * 20)
    with pytest.raises(ValueError, match=str(path)):
        read_binary(path)


def test_edge_list_errors_carry_path_and_line(tmp_path):
    path = tmp_path / "ctx.txt"
    path.write_text("0 1\n# comment\nbroken\n")
    with pytest.raises(ValueError, match=f"{path}:3:"):
        list(iter_edge_list(path))
    path.write_text("0 1\n1 2\n\nx y\n")
    with pytest.raises(ValueError, match=f"{path}:4:.*non-integer"):
        list(iter_edge_list(path))
