"""Tests for the ``repro top`` dashboard model and CLI."""

import json

import pytest

from repro.cli import main
from repro.core.build import build_index
from repro.graph.generators import social_graph
from repro.observe.dashboard import DashboardModel, requests_from_records
from repro.observe.slo import SLOSpec
from repro.pregel.cost_model import CostModel
from repro.serve import (
    CachingBackend,
    QueryServer,
    ShardedIndexBackend,
    ShardedLabelStore,
)
from repro.telemetry import session
from repro.telemetry.sinks import InMemorySink
from repro.workloads.traffic import poisson_arrivals, zipf_pairs

_NO_LIMIT = CostModel(time_limit_seconds=None)


@pytest.fixture(scope="module")
def traced_run():
    """One cached serving run: (records, ServeReport)."""
    graph = social_graph(200, seed=9)
    index = build_index(graph, cost_model=_NO_LIMIT).index
    store = ShardedLabelStore(index, num_shards=4, cost_model=_NO_LIMIT)
    backend = CachingBackend(ShardedIndexBackend(store), cost_model=_NO_LIMIT)
    pairs = zipf_pairs(graph.num_vertices, 1500, seed=1)
    arrivals = poisson_arrivals(1500, rate=2_000_000, seed=2)
    sink = InMemorySink()
    with session([sink]):
        server = QueryServer(backend, queue_depth=64, cost_model=_NO_LIMIT)
        report = server.run_open(pairs, arrivals)
    return sink.records, report


@pytest.fixture(scope="module")
def model(traced_run):
    records, _ = traced_run
    return DashboardModel.from_records(records)


class TestModel:
    def test_counts_match_report(self, traced_run, model):
        _, report = traced_run
        assert model.offered == report.offered
        assert model.served == report.served
        assert model.shed == report.shed
        assert model.deadline_dropped == report.deadline_dropped
        assert model.positives == report.positives

    def test_percentiles_match_report_exactly(self, traced_run, model):
        _, report = traced_run
        assert model.percentile(0.50) == report.p50_seconds
        assert model.percentile(0.99) == report.p99_seconds
        assert model.percentile(0.999) == report.p999_seconds
        assert model.makespan_seconds == report.makespan_seconds
        assert model.throughput == report.throughput

    def test_hit_rate_matches_report_exactly(self, traced_run, model):
        _, report = traced_run
        assert model.cache_hits == report.cache_hits
        assert model.cache_misses == report.cache_misses
        assert model.cache_hit_rate == report.cache_hit_rate

    def test_traced_fraction_and_stage_counts(self, model):
        assert model.traced_fraction >= 0.99
        for stage in ("admission", "cache", "store", "backend"):
            assert model.stage_counts.get(stage, 0) > 0

    def test_shard_traffic(self, traced_run, model):
        _, report = traced_run
        # Store stages record every fetch; shard loads cover all shards.
        assert model.store_fetches == report.cache_misses
        assert sum(model.shard_loads.values()) == sum(report.shard_loads)

    def test_windows_cover_the_run(self, model):
        assert model.windows
        assert sum(w.offered for w in model.windows) == model.offered
        assert sum(w.served for w in model.windows) == model.served

    def test_worst_traces_sorted(self, model):
        latencies = [r.latency_seconds for r in model.worst]
        assert latencies == sorted(latencies, reverse=True)
        assert latencies[0] == model.latencies[-1]

    def test_to_json_round_trips(self, model):
        payload = json.loads(json.dumps(model.to_json()))
        assert payload["served"] == model.served
        assert payload["p99_seconds"] == model.percentile(0.99)
        assert payload["hit_rate"] == model.cache_hit_rate
        assert len(payload["windows"]) == len(model.windows)
        assert payload["alerts"] == []

    def test_render_mentions_the_essentials(self, model):
        text = model.render()
        assert "throughput" in text
        assert "p99" in text
        assert "Windows" in text
        assert "Worst requests" in text

    def test_slo_statuses_included(self, traced_run):
        records, _ = traced_run
        specs = [
            SLOSpec("impossible", "latency", 0.999, threshold_seconds=1e-12),
            SLOSpec("trivial", "latency", 0.5, threshold_seconds=10.0),
        ]
        with_slos = DashboardModel.from_records(records, specs=specs)
        by_name = {s.spec.name: s for s in with_slos.slos}
        assert not by_name["impossible"].ok
        assert by_name["trivial"].ok
        assert any(a["slo"] == "impossible" for a in with_slos.firing_alerts)

    def test_run_selection(self, traced_run):
        records, report = traced_run
        doubled = list(records) + [
            {**r, "span": (r.get("span") or 0) + 1000}
            for r in records
            if r.get("kind") == "event" and r.get("name") == "serve.request"
        ]
        both = DashboardModel.from_records(doubled)
        assert both.runs == 2
        assert both.offered == 2 * report.offered
        first = DashboardModel.from_records(doubled, run=1)
        assert first.offered == report.offered
        with pytest.raises(ValueError, match="out of range"):
            DashboardModel.from_records(doubled, run=3)

    def test_empty_records(self):
        empty = DashboardModel.from_records([])
        assert empty.offered == 0
        assert empty.windows == []
        assert empty.percentile(0.99) == 0.0
        assert "0 requests" in empty.render()

    def test_requests_from_records_ignores_other_events(self):
        records = [
            {"kind": "event", "name": "pregel.superstep", "attrs": {}},
            {"kind": "span", "name": "serve.run"},
            {"kind": "event", "name": "serve.request", "attrs": {}},  # no id
        ]
        assert requests_from_records(records) == []


class TestCli:
    @pytest.fixture()
    def trace_file(self, traced_run, tmp_path):
        records, _ = traced_run
        path = tmp_path / "serve.jsonl"
        path.write_text(
            "\n".join(json.dumps(record) for record in records) + "\n"
        )
        return path

    def test_top_once_json(self, trace_file, capsys):
        assert main(["top", str(trace_file), "--once", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["served"] > 0
        assert payload["traced_fraction"] >= 0.99

    def test_top_once_text(self, trace_file, capsys):
        assert main(["top", str(trace_file), "--once"]) == 0
        assert "throughput" in capsys.readouterr().out

    def test_top_json_requires_once(self, trace_file, capsys):
        assert main(["top", str(trace_file), "--json"]) == 2

    def test_top_missing_file(self, tmp_path, capsys):
        assert main(["top", str(tmp_path / "nope.jsonl"), "--once"]) == 2

    def test_top_no_requests(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text('{"kind": "span", "name": "x"}\n')
        assert main(["top", str(path), "--once"]) == 1

    def test_top_fail_on_alert(self, trace_file, tmp_path, capsys):
        tight = tmp_path / "tight.json"
        tight.write_text(json.dumps({"slos": [{
            "name": "impossible", "kind": "latency",
            "target": 0.999, "threshold_seconds": 1e-12,
        }]}))
        loose = tmp_path / "loose.json"
        loose.write_text(json.dumps({"slos": [{
            "name": "trivial", "kind": "latency",
            "target": 0.5, "threshold_seconds": 10.0,
        }]}))
        assert main(
            ["top", str(trace_file), "--once", "--slo", str(tight),
             "--fail-on-alert"]
        ) == 1
        assert "ALERT" in capsys.readouterr().err
        assert main(
            ["top", str(trace_file), "--once", "--slo", str(loose),
             "--fail-on-alert"]
        ) == 0

    def test_top_bad_slo_spec(self, trace_file, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        assert main(
            ["top", str(trace_file), "--once", "--slo", str(bad)]
        ) == 2

    def test_top_run_selection(self, trace_file, capsys):
        assert main(["top", str(trace_file), "--once", "--run", "1"]) == 0
        assert main(["top", str(trace_file), "--once", "--run", "9"]) == 2

    def test_trace_slowest(self, trace_file, capsys):
        assert main(["trace", str(trace_file), "--slowest", "3"]) == 0
        out = capsys.readouterr().out
        assert "Slowest 3" in out
        assert "admission" in out

    def test_trace_by_trace_id(self, trace_file, capsys):
        main(["trace", str(trace_file), "--slowest", "1"])
        line = capsys.readouterr().out.splitlines()[-1]
        trace_id = line.split()[0]
        assert main(["trace", str(trace_file), "--trace-id", trace_id]) == 0
        assert trace_id in capsys.readouterr().out
        assert main(["trace", str(trace_file), "--trace-id", "nope"]) == 1

    def test_trace_summary_includes_request_overview(self, trace_file, capsys):
        assert main(["trace", str(trace_file)]) == 0
        assert "Request traces" in capsys.readouterr().out
