"""Tests for the ``repro top`` dashboard model and CLI."""

import json

import pytest

from repro.cli import main
from repro.core.build import build_index
from repro.graph.generators import social_graph
from repro.observe.dashboard import DashboardModel, requests_from_records
from repro.observe.slo import SLOSpec
from repro.pregel.cost_model import CostModel
from repro.serve import (
    CachingBackend,
    QueryServer,
    ShardedIndexBackend,
    ShardedLabelStore,
)
from repro.telemetry import session
from repro.telemetry.sinks import InMemorySink
from repro.workloads.traffic import poisson_arrivals, zipf_pairs

_NO_LIMIT = CostModel(time_limit_seconds=None)


@pytest.fixture(scope="module")
def traced_run():
    """One cached serving run: (records, ServeReport)."""
    graph = social_graph(200, seed=9)
    index = build_index(graph, cost_model=_NO_LIMIT).index
    store = ShardedLabelStore(index, num_shards=4, cost_model=_NO_LIMIT)
    backend = CachingBackend(ShardedIndexBackend(store), cost_model=_NO_LIMIT)
    pairs = zipf_pairs(graph.num_vertices, 1500, seed=1)
    arrivals = poisson_arrivals(1500, rate=2_000_000, seed=2)
    sink = InMemorySink()
    with session([sink]):
        server = QueryServer(backend, queue_depth=64, cost_model=_NO_LIMIT)
        report = server.run_open(pairs, arrivals)
    return sink.records, report


@pytest.fixture(scope="module")
def model(traced_run):
    records, _ = traced_run
    return DashboardModel.from_records(records)


class TestModel:
    def test_counts_match_report(self, traced_run, model):
        _, report = traced_run
        assert model.offered == report.offered
        assert model.served == report.served
        assert model.shed == report.shed
        assert model.deadline_dropped == report.deadline_dropped
        assert model.positives == report.positives

    def test_percentiles_match_report_exactly(self, traced_run, model):
        _, report = traced_run
        assert model.percentile(0.50) == report.p50_seconds
        assert model.percentile(0.99) == report.p99_seconds
        assert model.percentile(0.999) == report.p999_seconds
        assert model.makespan_seconds == report.makespan_seconds
        assert model.throughput == report.throughput

    def test_hit_rate_matches_report_exactly(self, traced_run, model):
        _, report = traced_run
        assert model.cache_hits == report.cache_hits
        assert model.cache_misses == report.cache_misses
        assert model.cache_hit_rate == report.cache_hit_rate

    def test_traced_fraction_and_stage_counts(self, model):
        assert model.traced_fraction >= 0.99
        for stage in ("admission", "cache", "store", "backend"):
            assert model.stage_counts.get(stage, 0) > 0

    def test_shard_traffic(self, traced_run, model):
        _, report = traced_run
        # Store stages record every fetch; shard loads cover all shards.
        assert model.store_fetches == report.cache_misses
        assert sum(model.shard_loads.values()) == sum(report.shard_loads)

    def test_windows_cover_the_run(self, model):
        assert model.windows
        assert sum(w.offered for w in model.windows) == model.offered
        assert sum(w.served for w in model.windows) == model.served

    def test_worst_traces_sorted(self, model):
        latencies = [r.latency_seconds for r in model.worst]
        assert latencies == sorted(latencies, reverse=True)
        assert latencies[0] == model.latencies[-1]

    def test_to_json_round_trips(self, model):
        payload = json.loads(json.dumps(model.to_json()))
        assert payload["served"] == model.served
        assert payload["p99_seconds"] == model.percentile(0.99)
        assert payload["hit_rate"] == model.cache_hit_rate
        assert len(payload["windows"]) == len(model.windows)
        assert payload["alerts"] == []

    def test_render_mentions_the_essentials(self, model):
        text = model.render()
        assert "throughput" in text
        assert "p99" in text
        assert "Windows" in text
        assert "Worst requests" in text

    def test_slo_statuses_included(self, traced_run):
        records, _ = traced_run
        specs = [
            SLOSpec("impossible", "latency", 0.999, threshold_seconds=1e-12),
            SLOSpec("trivial", "latency", 0.5, threshold_seconds=10.0),
        ]
        with_slos = DashboardModel.from_records(records, specs=specs)
        by_name = {s.spec.name: s for s in with_slos.slos}
        assert not by_name["impossible"].ok
        assert by_name["trivial"].ok
        assert any(a["slo"] == "impossible" for a in with_slos.firing_alerts)

    def test_run_selection(self, traced_run):
        records, report = traced_run
        doubled = list(records) + [
            {**r, "span": (r.get("span") or 0) + 1000}
            for r in records
            if r.get("kind") == "event" and r.get("name") == "serve.request"
        ]
        both = DashboardModel.from_records(doubled)
        assert both.runs == 2
        assert both.offered == 2 * report.offered
        first = DashboardModel.from_records(doubled, run=1)
        assert first.offered == report.offered
        with pytest.raises(ValueError, match="out of range"):
            DashboardModel.from_records(doubled, run=3)

    def test_empty_records(self):
        empty = DashboardModel.from_records([])
        assert empty.offered == 0
        assert empty.windows == []
        assert empty.percentile(0.99) == 0.0
        assert "0 requests" in empty.render()

    def test_requests_from_records_ignores_other_events(self):
        records = [
            {"kind": "event", "name": "pregel.superstep", "attrs": {}},
            {"kind": "span", "name": "serve.run"},
            {"kind": "event", "name": "serve.request", "attrs": {}},  # no id
        ]
        assert requests_from_records(records) == []


def _request_record(trace_id, stages, outcome="served"):
    return {
        "kind": "event",
        "name": "serve.request",
        "attrs": {
            "trace_id": trace_id,
            "outcome": outcome,
            "arrival": 0.0,
            "latency_seconds": 1e-6,
            "stages": stages,
        },
    }


class TestReplicationHealth:
    """Replication counters rebuilt from stage attrs + lag samples."""

    @pytest.fixture()
    def replicated_model(self):
        records = [
            # Confirmed read: lagging follower, guard confirmed with
            # the leader.
            _request_record("t-1", [
                {"stage": "store", "lag": 3},
                {"stage": "confirm", "ops": 3},
            ]),
            # Guarded stale read: lagging follower, monotonicity proved
            # no confirmation was needed.
            _request_record("t-2", [{"stage": "store", "lag": 2}]),
            # Forced catch-up: lag exceeded the staleness bound.
            _request_record("t-3", [
                {"stage": "store", "lag": 5},
                {"stage": "catchup", "ops": 5},
            ]),
            # Hedged read resolved by the faster replica; no lag.
            _request_record("t-4", [{"stage": "store", "hedge_won": True}]),
            # Replicator lag samples, one per change of the worst lag.
            {"kind": "event", "name": "replica.lag",
             "attrs": {"lag": 3, "groups": {"1": 3}, "version": 3}},
            {"kind": "event", "name": "replica.lag",
             "attrs": {"lag": 5, "groups": {"1": 5, "2": 2}, "version": 5}},
            {"kind": "event", "name": "replica.lag",
             "attrs": {"lag": 0, "groups": {"1": 0, "2": 0}, "version": 5}},
        ]
        return DashboardModel.from_records(records)

    def test_counters_rebuilt_from_stages(self, replicated_model):
        model = replicated_model
        assert model.confirmed_reads == 1
        assert model.stale_reads == 1
        assert model.forced_catchups == 1
        assert model.hedges_won == 1

    def test_lag_peaks_per_group(self, replicated_model):
        assert replicated_model.replication_lag_peak == 5
        assert replicated_model.group_lag_peaks == {"1": 5, "2": 2}

    def test_to_json_has_replication_block(self, replicated_model):
        payload = json.loads(json.dumps(replicated_model.to_json()))
        assert payload["replication"] == {
            "confirmed_reads": 1,
            "stale_reads": 1,
            "forced_catchups": 1,
            "hedges_won": 1,
            "lag_peak": 5,
            "group_lag_peaks": {"1": 5, "2": 2},
        }
        assert payload["incidents"] == []

    def test_render_shows_replication_line(self, replicated_model):
        rendered = replicated_model.render()
        assert (
            "replication: lag peak 5 (g1:5 g2:2)  confirmed 1  stale 1"
            "  catchups 0" not in rendered
        )
        assert (
            "replication: lag peak 5 (g1:5 g2:2)  confirmed 1  stale 1"
            "  catchups 1  hedges won 1" in rendered
        )

    def test_render_omits_line_without_replication(self):
        model = DashboardModel.from_records(
            [_request_record("t-1", [{"stage": "store"}])]
        )
        assert "replication:" not in model.render()

    def test_incidents_render_and_serialize(self):
        incidents = [{
            "id": "incident-001-failover",
            "kind": "failover",
            "at": 2.5e-3,
            "root_cause": "injected replica crash on shard 0 replica 0",
        }]
        model = DashboardModel.from_records([], incidents=incidents)
        rendered = model.render()
        assert "Open incidents (1)" in rendered
        assert "incident-001-failover" in rendered
        assert "-> injected replica crash" in rendered
        payload = json.loads(json.dumps(model.to_json()))
        assert payload["incidents"] == incidents


class TestCli:
    @pytest.fixture()
    def trace_file(self, traced_run, tmp_path):
        records, _ = traced_run
        path = tmp_path / "serve.jsonl"
        path.write_text(
            "\n".join(json.dumps(record) for record in records) + "\n"
        )
        return path

    def test_top_once_json(self, trace_file, capsys):
        assert main(["top", str(trace_file), "--once", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["served"] > 0
        assert payload["traced_fraction"] >= 0.99

    def test_top_once_text(self, trace_file, capsys):
        assert main(["top", str(trace_file), "--once"]) == 0
        assert "throughput" in capsys.readouterr().out

    def test_top_json_requires_once(self, trace_file, capsys):
        assert main(["top", str(trace_file), "--json"]) == 2

    def test_top_openmetrics_exposition(self, trace_file, capsys):
        assert main(["top", str(trace_file), "--once", "--openmetrics"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# TYPE repro_serve_requests counter")
        assert out.endswith("# EOF\n")
        assert "repro_serve_latency_seconds_bucket" in out

    def test_top_openmetrics_flag_validation(self, trace_file, capsys):
        assert main(["top", str(trace_file), "--openmetrics"]) == 2
        assert "--openmetrics needs --once" in capsys.readouterr().err
        assert main([
            "top", str(trace_file), "--once", "--openmetrics", "--json",
        ]) == 2
        assert "exclusive" in capsys.readouterr().err

    def test_top_incidents_section(self, trace_file, tmp_path, capsys):
        from repro.observe.incident import FlightRecorder, TriggerEngine

        recorder = FlightRecorder()
        engine = TriggerEngine(recorder, tmp_path / "incidents")
        recorder.add_listener(engine.observe)
        recorder.record("serve.replica_crash", at=0.001, shard=0, replica=0)
        recorder.record("serve.failover", at=0.002, shard=0,
                        from_replica=0, to_replica=1, version=1)
        assert main([
            "top", str(trace_file), "--once",
            "--incidents", str(tmp_path / "incidents"),
        ]) == 0
        out = capsys.readouterr().out
        assert "Open incidents (1)" in out
        assert "incident-001-failover" in out
        assert "-> injected replica crash" in out

    def test_top_missing_file(self, tmp_path, capsys):
        assert main(["top", str(tmp_path / "nope.jsonl"), "--once"]) == 2

    def test_top_no_requests(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text('{"kind": "span", "name": "x"}\n')
        assert main(["top", str(path), "--once"]) == 1

    def test_top_fail_on_alert(self, trace_file, tmp_path, capsys):
        tight = tmp_path / "tight.json"
        tight.write_text(json.dumps({"slos": [{
            "name": "impossible", "kind": "latency",
            "target": 0.999, "threshold_seconds": 1e-12,
        }]}))
        loose = tmp_path / "loose.json"
        loose.write_text(json.dumps({"slos": [{
            "name": "trivial", "kind": "latency",
            "target": 0.5, "threshold_seconds": 10.0,
        }]}))
        assert main(
            ["top", str(trace_file), "--once", "--slo", str(tight),
             "--fail-on-alert"]
        ) == 1
        assert "ALERT" in capsys.readouterr().err
        assert main(
            ["top", str(trace_file), "--once", "--slo", str(loose),
             "--fail-on-alert"]
        ) == 0

    def test_top_bad_slo_spec(self, trace_file, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        assert main(
            ["top", str(trace_file), "--once", "--slo", str(bad)]
        ) == 2

    def test_top_run_selection(self, trace_file, capsys):
        assert main(["top", str(trace_file), "--once", "--run", "1"]) == 0
        assert main(["top", str(trace_file), "--once", "--run", "9"]) == 2

    def test_trace_slowest(self, trace_file, capsys):
        assert main(["trace", str(trace_file), "--slowest", "3"]) == 0
        out = capsys.readouterr().out
        assert "Slowest 3" in out
        assert "admission" in out

    def test_trace_by_trace_id(self, trace_file, capsys):
        main(["trace", str(trace_file), "--slowest", "1"])
        line = capsys.readouterr().out.splitlines()[-1]
        trace_id = line.split()[0]
        assert main(["trace", str(trace_file), "--trace-id", trace_id]) == 0
        assert trace_id in capsys.readouterr().out
        assert main(["trace", str(trace_file), "--trace-id", "nope"]) == 1

    def test_trace_summary_includes_request_overview(self, trace_file, capsys):
        assert main(["trace", str(trace_file)]) == 0
        assert "Request traces" in capsys.readouterr().out
