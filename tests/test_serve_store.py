"""Tests for the sharded label store."""

import pytest

from repro.baselines.transitive_closure import TransitiveClosure
from repro.core.build import build_index
from repro.errors import OutOfMemoryError, ShardOutOfMemoryError
from repro.graph.generators import social_graph
from repro.graph.partition import (
    HashPartitioner,
    ModuloPartitioner,
    RangePartitioner,
)
from repro.pregel.cost_model import CostModel
from repro.query import FallbackBackend, QueryService
from repro.serve import ShardedIndexBackend, ShardedLabelStore
from repro.workloads.queries import random_pairs

_NO_LIMIT = CostModel(time_limit_seconds=None)


@pytest.fixture(scope="module")
def graph():
    return social_graph(300, seed=5)


@pytest.fixture(scope="module")
def index(graph):
    return build_index(graph, cost_model=_NO_LIMIT).index


def test_answers_match_oracle(graph, index):
    oracle = TransitiveClosure(graph)
    store = ShardedLabelStore(index, num_shards=4, cost_model=_NO_LIMIT)
    for s, t in random_pairs(graph.num_vertices, 200, seed=11):
        answer, seconds = store.fetch(s, t)
        assert answer == oracle.query(s, t)
        assert seconds > 0


def test_shard_routing_follows_partitioner(index):
    partitioner = ModuloPartitioner(4)
    store = ShardedLabelStore(
        index, num_shards=4, partitioner=partitioner, cost_model=_NO_LIMIT
    )
    for v in range(index.num_vertices):
        assert store.shard_of(v) == partitioner.node_of(v)


def test_partitioner_shard_count_mismatch_rejected(index):
    with pytest.raises(ValueError, match="shards"):
        ShardedLabelStore(
            index, num_shards=4, partitioner=HashPartitioner(8),
            cost_model=_NO_LIMIT,
        )


def test_memory_accounting_sums_to_index_size(index):
    store = ShardedLabelStore(index, num_shards=4, cost_model=_NO_LIMIT)
    assert sum(store.memory_bytes()) == index.size_bytes(_NO_LIMIT.entry_bytes)
    assert sum(shard.vertices for shard in store.shards) == index.num_vertices


def test_per_shard_memory_budget_enforced(index):
    tiny = CostModel(node_memory_bytes=8, time_limit_seconds=None)
    with pytest.raises(OutOfMemoryError):
        ShardedLabelStore(index, num_shards=2, cost_model=tiny)


def test_shard_oom_names_the_shard_and_the_numbers(index):
    tiny = CostModel(node_memory_bytes=8, time_limit_seconds=None)
    with pytest.raises(ShardOutOfMemoryError) as excinfo:
        ShardedLabelStore(index, num_shards=2, cost_model=tiny)
    err = excinfo.value
    # Still catchable as the generic budget error.
    assert isinstance(err, OutOfMemoryError)
    assert err.shard_id in (0, 1)
    assert err.budget_bytes == 8
    assert err.attempted_bytes > err.budget_bytes
    message = str(err)
    assert f"label shard {err.shard_id}" in message
    assert f"{err.attempted_bytes:,}" in message
    assert "the per-shard budget is 8 bytes" in message
    assert "rebalance the partitioner or add shards" in message


def test_cross_shard_fetch_costs_more_than_local(index):
    # Range partitioning puts low ids on shard 0, high ids on shard 1:
    # co-located pairs pay merge cost only, split pairs add the hop.
    n = index.num_vertices
    store = ShardedLabelStore(
        index,
        num_shards=2,
        partitioner=RangePartitioner(2, n),
        cost_model=_NO_LIMIT,
    )
    s, local_t, remote_t = 0, 1, n - 1
    assert store.shard_of(s) == store.shard_of(local_t)
    assert store.shard_of(s) != store.shard_of(remote_t)
    _, local_cost = store.fetch(s, local_t)
    _, remote_cost = store.fetch(s, remote_t)
    extra = remote_cost - local_cost
    merge_delta = (
        abs(len(index.in_labels(remote_t)) - len(index.in_labels(local_t)))
        * _NO_LIMIT.t_op
    )
    assert extra >= _NO_LIMIT.t_hop - merge_delta


def test_load_accounting_and_skew(index):
    store = ShardedLabelStore(index, num_shards=4, cost_model=_NO_LIMIT)
    assert store.load_skew() == 1.0  # no requests yet
    for s, t in random_pairs(index.num_vertices, 500, seed=3):
        store.fetch(s, t)
    loads = store.shard_loads()
    assert sum(loads) >= 500  # every query touches at least the home shard
    assert store.load_skew() >= 1.0


def test_backend_protocol_and_service_integration(graph, index):
    backend = ShardedIndexBackend(
        ShardedLabelStore(index, num_shards=4, cost_model=_NO_LIMIT)
    )
    report = QueryService(backend).evaluate(
        random_pairs(graph.num_vertices, 100, seed=1)
    )
    assert report.count == 100
    assert report.total_seconds > 0
    assert backend.store.shard_loads() != [0, 0, 0, 0]


def test_store_as_fallback_primary(graph, index):
    # The store plugs into the degradation ladder like any backend.
    primary = ShardedIndexBackend(
        ShardedLabelStore(index, num_shards=4, cost_model=_NO_LIMIT)
    )
    fallback = FallbackBackend(primary, graph, _NO_LIMIT)
    assert not fallback.degraded
    oracle = TransitiveClosure(graph)
    for s, t in random_pairs(graph.num_vertices, 50, seed=9):
        answer, _ = fallback.query_with_cost(s, t)
        assert answer == oracle.query(s, t)
