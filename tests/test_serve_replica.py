"""Tests for the replicated label store: routing, failover, staleness."""

import pytest

from repro.baselines.transitive_closure import TransitiveClosure
from repro.core.build import build_index
from repro.core.dynamic import DynamicReachabilityIndex
from repro.errors import ShardOutOfMemoryError, ShardUnavailableError
from repro.graph.generators import random_dag, social_graph
from repro.pregel.cost_model import CostModel
from repro.serve import (
    BoundedStalenessReplicator,
    HealthPolicy,
    ReplicatedLabelStore,
    READ_POLICIES,
)
from repro.workloads.queries import random_pairs
from repro.workloads.updates import update_stream

_NO_LIMIT = CostModel(time_limit_seconds=None)


@pytest.fixture(scope="module")
def graph():
    return social_graph(200, seed=7)


@pytest.fixture(scope="module")
def index(graph):
    return build_index(graph, cost_model=_NO_LIMIT).index


@pytest.mark.parametrize("policy", READ_POLICIES)
def test_every_policy_matches_oracle(graph, index, policy):
    oracle = TransitiveClosure(graph)
    store = ReplicatedLabelStore(
        index, num_shards=4, cost_model=_NO_LIMIT, replicas=3, policy=policy
    )
    for s, t in random_pairs(graph.num_vertices, 200, seed=13):
        answer, seconds = store.fetch(s, t)
        assert answer == oracle.query(s, t)
        assert seconds > 0


def test_unknown_policy_and_replica_count_rejected(index):
    with pytest.raises(ValueError, match="policy"):
        ReplicatedLabelStore(index, num_shards=2, cost_model=_NO_LIMIT, policy="nope")
    with pytest.raises(ValueError, match="replica"):
        ReplicatedLabelStore(index, num_shards=2, cost_model=_NO_LIMIT, replicas=0)


def test_memory_accounts_for_every_copy(index):
    store = ReplicatedLabelStore(
        index, num_shards=4, cost_model=_NO_LIMIT, replicas=3
    )
    assert store.total_memory_bytes() == sum(store.memory_bytes()) * 3
    assert sum(store.memory_bytes()) == index.size_bytes(_NO_LIMIT.entry_bytes)


def test_per_shard_budget_applies_to_one_copy(index):
    tiny = CostModel(node_memory_bytes=8, time_limit_seconds=None)
    with pytest.raises(ShardOutOfMemoryError) as excinfo:
        ReplicatedLabelStore(index, num_shards=2, cost_model=tiny, replicas=2)
    assert excinfo.value.budget_bytes == 8


def test_round_robin_spreads_load_across_replicas(graph, index):
    store = ReplicatedLabelStore(
        index, num_shards=2, cost_model=_NO_LIMIT, replicas=2, policy="round-robin"
    )
    for s, t in random_pairs(graph.num_vertices, 400, seed=3):
        store.fetch(s, t)
    for rs in store.replica_sets:
        counts = [r.requests for r in rs.replicas]
        assert min(counts) > 0
        # Rotation keeps the split near even.
        assert max(counts) <= 2 * min(counts)


def test_primary_policy_concentrates_on_replica_zero(graph, index):
    store = ReplicatedLabelStore(
        index, num_shards=2, cost_model=_NO_LIMIT, replicas=2, policy="primary"
    )
    for s, t in random_pairs(graph.num_vertices, 100, seed=4):
        store.fetch(s, t)
    for rs in store.replica_sets:
        assert rs.replicas[1].requests == 0


def test_crash_timeouts_then_failover_then_recovery(graph, index):
    health = HealthPolicy(failure_threshold=2)
    store = ReplicatedLabelStore(
        index, num_shards=2, cost_model=_NO_LIMIT, replicas=2,
        policy="primary", health=health,
    )
    oracle = TransitiveClosure(graph)
    victims = [v for v in range(graph.num_vertices) if store.shard_of(v) == 0]
    s = victims[0]

    store.crash_replica(0, 0, at=0.001)
    # First read on the dead primary: timeout penalty, correct answer
    # via the surviving replica.
    answer, slow_seconds = store.fetch(s, s + 1 if s + 1 < graph.num_vertices else 0)
    assert answer == oracle.query(s, s + 1 if s + 1 < graph.num_vertices else 0)
    assert slow_seconds >= health.timeout_seconds
    assert store.replica_sets[0].replicas[0].timeouts == 1

    # Second timeout reaches the threshold: suspicion plus failover.
    store.fetch(s, victims[-1])
    names = [e["event"] for e in store.events]
    assert "serve.replica_suspected" in names
    assert "serve.failover" in names
    assert store.replica_sets[0].primary == 1
    assert store.replica_stats()["failovers"] == 1

    # Suspected replicas are skipped for free.
    _, fast_seconds = store.fetch(s, victims[-1])
    assert fast_seconds < slow_seconds

    # Recovery: the next probe sweep clears suspicion and logs rejoin.
    store.recover_replica(0, 0, at=0.002)
    store.advance(0.003)
    assert [e["event"] for e in store.events].count("serve.replica_up") == 1
    assert not store.replica_sets[0].replicas[0].suspected


def test_probe_sweep_detects_crash_without_traffic(index):
    store = ReplicatedLabelStore(
        index, num_shards=2, cost_model=_NO_LIMIT, replicas=2,
        health=HealthPolicy(failure_threshold=2),
    )
    store.crash_replica(1, 0, at=0.0)
    store.advance(0.001)
    assert not store.replica_sets[1].replicas[0].suspected
    store.advance(0.002)
    assert store.replica_sets[1].replicas[0].suspected
    assert store.replica_sets[1].primary == 1


def test_all_replicas_down_raises_unavailable(graph, index):
    store = ReplicatedLabelStore(
        index, num_shards=2, cost_model=_NO_LIMIT, replicas=2,
        health=HealthPolicy(failure_threshold=1),
    )
    store.crash_replica(0, 0)
    store.crash_replica(0, 1)
    s = next(v for v in range(graph.num_vertices) if store.shard_of(v) == 0)
    with pytest.raises(ShardUnavailableError) as excinfo:
        store.fetch(s, s)
    assert excinfo.value.shard_id == 0
    # The wasted timeout cost rides on the error for the pipeline.
    assert excinfo.value.seconds > 0


def test_hedged_reads_route_around_a_straggler(graph, index):
    store = ReplicatedLabelStore(
        index, num_shards=2, cost_model=_NO_LIMIT, replicas=2, policy="hedged"
    )
    for shard in range(2):
        store.set_replica_slowdown(shard, 0, 25.0)
    for s, t in random_pairs(graph.num_vertices, 200, seed=9):
        store.fetch(s, t)
    stats = store.replica_stats()
    assert stats["hedges_won"] > 0
    won = [rs.replicas[1].hedges_won for rs in store.replica_sets]
    slow_won = [rs.replicas[0].hedges_won for rs in store.replica_sets]
    assert sum(won) > sum(slow_won)


# ----------------------------------------------------------------------
# Bounded-staleness replication
# ----------------------------------------------------------------------

def _replicated_dynamic(n=120, seed=21, replicas=2, **kwargs):
    graph = random_dag(n, 3 * n, seed=seed)
    leader = DynamicReachabilityIndex(graph)
    replicator = BoundedStalenessReplicator(leader, replicas, **kwargs)
    store = ReplicatedLabelStore(
        leader, num_shards=2, cost_model=_NO_LIMIT,
        replicas=replicas, policy="round-robin", replicator=replicator,
    )
    return graph, leader, replicator, store


def test_replicator_store_mismatches_rejected():
    graph = random_dag(50, 120, seed=1)
    leader = DynamicReachabilityIndex(graph)
    replicator = BoundedStalenessReplicator(leader, 3)
    with pytest.raises(ValueError, match="replica"):
        ReplicatedLabelStore(
            leader, num_shards=2, cost_model=_NO_LIMIT,
            replicas=2, replicator=replicator,
        )
    other = DynamicReachabilityIndex(random_dag(50, 120, seed=2))
    with pytest.raises(ValueError, match="leader"):
        ReplicatedLabelStore(
            other, num_shards=2, cost_model=_NO_LIMIT,
            replicas=3, replicator=replicator,
        )


def test_follower_lag_and_delivery():
    _, leader, replicator, _ = _replicated_dynamic(delay_seconds=1e-3)
    replicator.note_time(0.0)
    stream = update_stream(leader.current_graph(), 5, seed=3)
    for op, u, v in stream:
        (leader.insert_edge if op == "insert" else leader.delete_edge)(u, v)
    assert replicator.version == 5
    assert replicator.lag(1) == 5
    assert replicator.lag(0) == 0  # the leader group is never stale
    replicator.advance(0.5e-3)  # before the delivery horizon
    assert replicator.lag(1) == 5
    replicator.advance(2e-3)
    assert replicator.lag(1) == 0


def test_stale_follower_never_contradicts_leader():
    graph, leader, replicator, store = _replicated_dynamic(
        delay_seconds=1e9,  # followers never hear about updates
    )
    # Insert-only backlog: stale True answers cannot be wrong
    # (monotonicity), stale False answers must be confirmed.
    stream = update_stream(graph, 30, insert_ratio=1.0, seed=5)
    for op, u, v in stream:
        (leader.insert_edge if op == "insert" else leader.delete_edge)(u, v)
    oracle = TransitiveClosure(leader.current_graph())
    for s, t in random_pairs(graph.num_vertices, 300, seed=6):
        answer, _ = store.fetch(s, t)
        assert answer == oracle.query(s, t)
    stats = store.replica_stats()
    # Both guard paths fired: flippable answers were confirmed with the
    # leader, unflippable ones served stale for free.
    assert stats["confirmed_reads"] > 0
    assert stats["stale_reads"] > 0


def test_lag_beyond_bound_forces_catchup():
    graph, leader, replicator, store = _replicated_dynamic(
        delay_seconds=1e9, max_lag=4,
    )
    for op, u, v in update_stream(graph, 10, seed=8):
        (leader.insert_edge if op == "insert" else leader.delete_edge)(u, v)
    assert replicator.lag(1) == 10
    # Drive reads until one lands on the follower group.
    for s, t in random_pairs(graph.num_vertices, 10, seed=9):
        store.fetch(s, t)
    stats = store.replica_stats()
    assert stats["forced_catchups"] >= 1
    assert replicator.lag(1) == 0
    assert replicator.catchup_ops == 10


def test_dead_member_pauses_group_then_catches_up_on_rejoin():
    graph, leader, replicator, store = _replicated_dynamic(
        delay_seconds=0.0,
        replicas=2,
    )
    store.crash_replica(0, 1)
    replicator.note_time(0.0)
    for op, u, v in update_stream(graph, 6, seed=11):
        (leader.insert_edge if op == "insert" else leader.delete_edge)(u, v)
    store.advance(1.0)  # delivery runs, but group 1 is paused
    assert replicator.lag(1) == 6
    store.advance(2.0)  # suspicion lands (threshold 2)
    store.recover_replica(0, 1, at=3.0)
    store.advance(3.0)  # rejoin: suspicion cleared, debt settled
    assert replicator.lag(1) == 0
    oracle = TransitiveClosure(leader.current_graph())
    for s, t in random_pairs(graph.num_vertices, 100, seed=12):
        answer, _ = store.fetch(s, t)
        assert answer == oracle.query(s, t)


def test_replica_stats_keys_are_stable():
    _, _, _, store = _replicated_dynamic()
    stats = store.replica_stats()
    assert set(stats) == {
        "failovers", "replica_timeouts", "hedges_won", "stale_reads",
        "confirmed_reads", "forced_catchups", "replication_lag",
        "replicas_down",
    }


def test_failover_event_carries_timestamp_and_log_version():
    # The incident pipeline orders failovers against replicator
    # deliveries, so the event must say *when* it happened on the
    # simulated clock and *which* update-log version the shard was at.
    graph, leader, replicator, store = _replicated_dynamic(
        delay_seconds=0.0,
    )
    seen = []
    store.subscribe(seen.append)
    replicator.note_time(0.0)
    for op, u, v in update_stream(graph, 4, seed=13):
        (leader.insert_edge if op == "insert" else leader.delete_edge)(u, v)
    assert replicator.version == 4

    store.crash_replica(0, 0, at=0.001)
    store.advance(0.002)  # first probe failure
    store.advance(0.003)  # threshold: suspicion plus failover

    failovers = [e for e in store.events if e["event"] == "serve.failover"]
    assert len(failovers) == 1
    event = failovers[0]
    assert event["at"] == 0.003
    assert event["version"] == 4  # every applied update preceded it
    assert event["shard"] == 0
    assert event["from_replica"] == 0
    # Subscribed listeners saw the same dict the event log keeps.
    assert event in seen


def test_lag_samples_reach_listeners_but_not_the_event_log():
    graph, leader, replicator, store = _replicated_dynamic(
        delay_seconds=1e-3,
    )
    seen = []
    store.subscribe(seen.append)
    replicator.note_time(0.0)
    for op, u, v in update_stream(graph, 5, seed=14):
        (leader.insert_edge if op == "insert" else leader.delete_edge)(u, v)
    store.advance(1e-4)  # before delivery: follower group 1 lags by 5

    samples = [e for e in seen if e["event"] == "replica.lag"]
    assert samples, "no replica.lag sample reached the listener"
    assert samples[-1]["lag"] == 5
    assert samples[-1]["groups"] == {"1": 5}
    assert samples[-1]["version"] == 5
    # The sample stream is telemetry, not lifecycle: the event log the
    # scenario reports aggregate stays failover/crash/recovery only.
    assert all(e["event"] != "replica.lag" for e in store.events)

    store.advance(2e-3)  # delivery horizon passed: lag drains to zero
    assert [e for e in seen if e["event"] == "replica.lag"][-1]["lag"] == 0
