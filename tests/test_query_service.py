"""Tests for the query service layer."""

import pytest

from repro.baselines.bfl import build_bfl
from repro.baselines.grail import build_grail
from repro.baselines.transitive_closure import TransitiveClosure
from repro.core.build import build_index
from repro.graph.generators import social_graph
from repro.pregel.cost_model import CostModel
from repro.query import (
    BflBackend,
    GrailBackend,
    IndexBackend,
    OnlineBackend,
    QueryReport,
    QueryService,
)
from repro.workloads.queries import random_pairs

_NO_LIMIT = CostModel(time_limit_seconds=None)


@pytest.fixture(scope="module")
def graph():
    return social_graph(400, seed=2)


@pytest.fixture(scope="module")
def oracle(graph):
    return TransitiveClosure(graph)


@pytest.fixture(scope="module")
def pairs(graph):
    return random_pairs(graph.num_vertices, 300, seed=3)


def _backends(graph):
    index = build_index(graph, cost_model=_NO_LIMIT).index
    return {
        "index": IndexBackend(index, _NO_LIMIT),
        "bfl": BflBackend(build_bfl(graph), _NO_LIMIT),
        "grail": GrailBackend(build_grail(graph), _NO_LIMIT),
        "online": OnlineBackend(graph, _NO_LIMIT),
    }


def test_all_backends_agree_with_oracle(graph, oracle, pairs):
    for name, backend in _backends(graph).items():
        service = QueryService(backend)
        for s, t in pairs[:150]:
            assert service.query(s, t) == oracle.query(s, t), (name, s, t)


def test_evaluate_statistics(graph, oracle, pairs):
    service = QueryService(_backends(graph)["index"])
    report = service.evaluate(pairs)
    assert report.count == len(pairs)
    assert report.positives == sum(oracle.query(s, t) for s, t in pairs)
    assert 0 < report.mean_seconds
    assert report.p50_seconds <= report.p95_seconds <= report.p99_seconds
    assert report.p99_seconds <= report.max_seconds
    assert report.total_seconds == pytest.approx(
        report.mean_seconds * report.count
    )
    assert 0 <= report.positive_rate <= 1
    assert report.throughput > 0
    assert "queries" in report.summary()


def test_online_backend_is_slowest(graph, pairs):
    backends = _backends(graph)
    means = {
        name: QueryService(backend).evaluate(pairs[:100]).mean_seconds
        for name, backend in backends.items()
    }
    assert means["online"] > means["index"]
    assert means["online"] > means["bfl"]
    assert means["online"] > means["grail"]


def test_empty_workload():
    report = QueryReport(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    assert report.positive_rate == 0.0
    assert report.throughput == 0.0
    # And via the service:
    from repro.graph.digraph import DiGraph

    service = QueryService(OnlineBackend(DiGraph(2, []), _NO_LIMIT))
    assert service.evaluate([]).count == 0


# ----------------------------------------------------------------------
# FallbackBackend: degraded serving after a failed build
# ----------------------------------------------------------------------
def test_fallback_backend_degrades_to_online(graph, oracle, pairs):
    from repro.core.drl import drl_index
    from repro.query import FallbackBackend

    doomed = CostModel(time_limit_seconds=1e-12)
    backend = FallbackBackend.from_build(
        graph,
        lambda: drl_index(graph, num_nodes=4, cost_model=doomed),
        cost_model=_NO_LIMIT,
    )
    assert backend.degraded
    service = QueryService(backend)
    for s, t in pairs[:100]:
        assert service.query(s, t) == oracle.query(s, t), (s, t)
    assert backend.fallback_queries == 100


def test_fallback_backend_prefers_index(graph, oracle, pairs):
    from repro.core.drl import drl_index
    from repro.query import FallbackBackend

    backend = FallbackBackend.from_build(
        graph,
        lambda: drl_index(graph, num_nodes=4, cost_model=_NO_LIMIT),
        cost_model=_NO_LIMIT,
    )
    assert not backend.degraded
    service = QueryService(backend)
    for s, t in pairs[:100]:
        assert service.query(s, t) == oracle.query(s, t), (s, t)
    assert backend.fallback_queries == 0


def test_fallback_backend_counts_metric(graph):
    from repro.query import FallbackBackend
    from repro.telemetry import session
    from repro.telemetry.sinks import InMemorySink

    backend = FallbackBackend(None, graph, _NO_LIMIT)
    sink = InMemorySink()
    with session([sink]):
        QueryService(backend).query(0, 1)
    counters = {
        r["name"]: r["value"]
        for r in sink.metrics
        if r.get("metric") == "counter"
    }
    assert counters.get("query.fallback") == 1
    assert counters.get("query.count") == 1


def test_fallback_backend_propagates_real_bugs(graph):
    from repro.query import FallbackBackend

    def broken():
        raise RuntimeError("not a simulated-resource failure")

    with pytest.raises(RuntimeError):
        FallbackBackend.from_build(graph, broken)
