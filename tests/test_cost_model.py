"""Tests for the cost model, serial meter, and failure gates."""

import pytest

from repro.errors import OutOfMemoryError, TimeLimitExceeded
from repro.pregel.cost_model import (
    GIB,
    SCALED_CUTOFF_SECONDS,
    CostModel,
    mpi_cluster_model,
    paper_scale_model,
    shared_memory_model,
)
from repro.pregel.serial import SerialMeter


def test_defaults_are_sane():
    cm = CostModel()
    assert cm.t_op > 0
    assert cm.t_byte >= 0
    assert cm.node_memory_bytes == 32 * GIB
    assert cm.time_limit_seconds == 7200.0


def test_check_memory():
    cm = CostModel(node_memory_bytes=100)
    cm.check_memory(100)
    with pytest.raises(OutOfMemoryError) as info:
        cm.check_memory(101, what="TOL")
    assert "TOL" in str(info.value)
    assert info.value.required_bytes == 101


def test_check_time():
    cm = CostModel(time_limit_seconds=1.0)
    cm.check_time(1.0)
    with pytest.raises(TimeLimitExceeded) as info:
        cm.check_time(1.5)
    assert info.value.elapsed_seconds == 1.5
    assert info.value.limit_seconds == 1.0


def test_no_time_limit():
    CostModel(time_limit_seconds=None).check_time(1e9)


def test_with_time_limit_copies():
    cm = CostModel(time_limit_seconds=5.0)
    relaxed = cm.with_time_limit(None)
    assert relaxed.time_limit_seconds is None
    assert cm.time_limit_seconds == 5.0
    assert relaxed.t_op == cm.t_op


def test_presets():
    assert mpi_cluster_model().t_byte > 0
    shared = shared_memory_model()
    assert shared.t_byte == 0.0
    assert shared.t_barrier < mpi_cluster_model().t_barrier
    scaled = paper_scale_model()
    assert scaled.time_limit_seconds == SCALED_CUTOFF_SECONDS
    assert scaled.t_barrier < mpi_cluster_model().t_barrier
    assert scaled.t_hop < CostModel().t_hop


def test_preset_overrides():
    cm = paper_scale_model(time_limit_seconds=None, t_op=1.0)
    assert cm.time_limit_seconds is None
    assert cm.t_op == 1.0


def test_serial_meter_accumulates():
    meter = SerialMeter(CostModel(t_op=0.5, time_limit_seconds=None))
    meter.charge(4)
    meter.charge()
    assert meter.units == 5
    assert meter.simulated_seconds == 2.5
    stats = meter.stats()
    assert stats.compute_units == 5
    assert stats.computation_seconds == 2.5
    assert stats.num_nodes == 1
    assert stats.per_node_units == [5]
    assert stats.simulated_seconds == 2.5


def test_serial_meter_time_limit_fires_during_charging():
    meter = SerialMeter(CostModel(t_op=1.0, time_limit_seconds=2.0))
    with pytest.raises(TimeLimitExceeded):
        for _ in range(100):
            meter.charge(1)


def test_serial_meter_time_limit_fires_at_stats():
    cm = CostModel(t_op=1.0, time_limit_seconds=2.0)
    meter = SerialMeter(cm)
    meter._units = 3  # below the periodic check threshold
    with pytest.raises(TimeLimitExceeded):
        meter.stats()


def test_serial_meter_memory_gate():
    meter = SerialMeter(CostModel(node_memory_bytes=10))
    with pytest.raises(OutOfMemoryError):
        meter.check_memory(11)


def test_frozen_dataclass():
    cm = CostModel()
    with pytest.raises(AttributeError):
        cm.t_op = 1.0
